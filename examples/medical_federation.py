"""Medical federation scenario: policies, constraints, sessions, drift.

Walks the MIDAS architecture (paper Figure 1) through a clinic's day,
entirely through the federation gateway's typed envelope API:

1. three different medical queries run across the two-cloud federation;
2. a time-critical emergency query (all weight on response time, with a
   hard money cap expressed as a constraint — Algorithm 2's B vector);
3. a nightly batch analysis (all weight on money);
4. a *pinned session* planning sweep — one model snapshot and one QEP
   enumeration answer three what-if policies consistently, no matter
   what executes concurrently;
5. the same query re-submitted later under drifted load, showing DREAM's
   window adapting while predictions stay calibrated.

Run:  python examples/medical_federation.py
"""

from repro.federation import SubmitRequest
from repro.ires.policy import UserPolicy
from repro.midas import MEDICAL_QUERIES, MidasSystem


def show(title: str, report) -> None:
    print(f"\n== {title}")
    print(f"   chosen QEP : {report.chosen.describe()}")
    print(
        f"   predicted  : {report.predicted_costs['time']:6.2f} s, "
        f"${report.predicted_costs['money']:.4f}"
    )
    print(
        f"   measured   : {report.measured_costs['time']:6.2f} s, "
        f"${report.measured_costs['money']:.4f}"
    )
    print(
        f"   DREAM      : window={report.cost_model.training_size}, "
        + ", ".join(f"R^2({m})={v:.2f}" for m, v in report.cost_model.r_squared.items())
    )


def main() -> None:
    print("MIDAS: medical data management across Amazon (Hive) and Azure (PostgreSQL)")
    midas = MidasSystem(patient_count=2000, seed=11)
    gateway = midas.gateway

    for key, template in MEDICAL_QUERIES.items():
        print(f"\nProfiling {key} ({template.title}) ...")
        midas.warm_up(key, runs=10)

    # 1. Routine demographics review: balanced preferences.
    report = gateway.submit(
        SubmitRequest(
            "medical-demographics", {"min_age": 30}, UserPolicy(weights=(0.5, 0.5))
        )
    )
    show("Routine review (balanced time/money)", report)

    # 2. Emergency: fastest plan whose money stays under a cap.
    emergency = gateway.submit(
        SubmitRequest(
            "medical-severe-cases",
            {"severity": 4, "min_age": 60},
            UserPolicy(weights=(1.0, 0.0), constraints=(None, 0.05)),
        )
    )
    show("Emergency severe-case lookup (time-first, money <= $0.05)", emergency)
    assert (
        emergency.predicted_costs["money"] <= 0.05 or len(emergency.pareto_set) == 1
    )

    # 3. Nightly batch: cheapest plan wins.
    nightly = gateway.submit(
        SubmitRequest(
            "medical-lab-followup",
            {"testname": "glucose"},
            UserPolicy(weights=(0.0, 1.0)),
        )
    )
    show("Nightly lab follow-up (money-first)", nightly)

    # 4. What-if planning on a pinned snapshot: every policy is costed by
    #    the SAME model over the SAME enumerated QEP space — a consistent
    #    answer sheet for the morning planning meeting.
    print("\nPinned-session what-if sweep for tomorrow's demographics review:")
    weights = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
    with gateway.session("medical-demographics") as session:
        batch = session.submit_many(
            [
                SubmitRequest(
                    "medical-demographics", {"min_age": 30}, UserPolicy(weights=w)
                )
                for w in weights
            ],
            execute=False,  # plan-only: nothing runs, the history stays put
        )
    for w, item in zip(weights, batch):
        print(f"   weights={w}: {item.describe()}")
    print(
        f"   (model pinned at history v{batch.pinned_version}; "
        f"{batch.enumerations} enumeration for {len(batch)} policies)"
    )

    # 5. The environment drifts; DREAM keeps tracking it.
    print("\nSimulating a busier afternoon (40 more executions of Example 2.1)...")
    midas.warm_up("medical-demographics", runs=40)
    afternoon = gateway.submit(
        SubmitRequest(
            "medical-demographics", {"min_age": 30}, UserPolicy(weights=(0.5, 0.5))
        )
    )
    show("Same review query under drifted load", afternoon)
    print(
        "   post-drift prediction error: "
        + ", ".join(f"{metric}={value:.1%}" for metric, value in afternoon.errors.items())
    )

    # Pareto front of the last submission, for the curious.
    print("\nPareto plan set of the last submission (predicted time s, $):")
    for candidate in sorted(afternoon.pareto_set, key=lambda c: c.objectives[0]):
        time_s, money = candidate.objectives
        print(f"   {time_s:7.2f} s  ${money:.4f}   {candidate.payload.describe()}")


if __name__ == "__main__":
    main()
