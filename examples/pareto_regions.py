"""Pareto plan regions (paper §2.3, Eq. 2-4) on real QEPs.

The paper defines ``Dom(p1, p2)``, ``StriDom(p1, p2)`` and the Pareto
region ``PaReg(p)`` over a *parameter space* X: which plan is best
depends on parameters unknown at optimisation time.  Here X is the
selectivity of the query's filter (how much lineitem data survives),
and the plans are three concrete QEPs for TPC-H Q12 — execute at Hive
with a big cluster, at Hive with a small cluster, or at PostgreSQL.

For each sampled selectivity the plans are costed by the engine
simulators; the printed regions show where each plan is unbeaten —
small inputs favour PostgreSQL, large inputs the big Hive cluster,
and the small Hive cluster is dominated almost everywhere.

(This example deliberately works *below* the federation gateway — it
probes raw QEPs against the simulators to map dominance regions; see
``examples/quickstart.py`` for the gateway API itself.)

Run:  python examples/pareto_regions.py
"""

from repro.moqp.dominance import pareto_region, strict_dominance_region
from repro.plans.binder import plan_sql
from repro.plans.optimizer import optimize
from repro.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload


def main() -> None:
    workload = TpchFederationWorkload(
        TpchFederationConfig(scale_mib=300, queries=("q12",), fixed_execution=None)
    )
    template = TPCH_QUERIES["q12"]
    sql = template.render({"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994})
    plan = optimize(plan_sql(sql, workload.dataset.catalog))

    candidates = workload.enumerator.enumerate(
        "q12", plan, workload.dataset.logical_stats, template.tables
    )
    by_key = {
        (c.execution.engine, c.clusters["cloud-a"].node_count,
         c.clusters["cloud-b"].node_count): c
        for c in candidates
    }
    plans = {
        "hive-big": by_key[("hive", 8, 4)],
        "hive-small": by_key[("hive", 2, 2)],
        "postgres": by_key[("postgresql", 2, 2)],
    }

    def cost(named_plan, fraction: float):
        """(time, money) of a QEP at one sampled parameter point."""
        stats = {
            name: table_stats.sampled(fraction)
            for name, table_stats in workload.dataset.logical_stats.items()
        }
        metrics = workload.simulator.base_metrics(
            __import__("repro.plans.physical", fromlist=["profile_plan"]).profile_plan(
                plan, stats, named_plan.placement
            ),
            named_plan.clusters,
        )
        return (metrics.execution_time_s, metrics.monetary_cost_usd)

    samples = [round(0.1 * i, 1) for i in range(1, 11)]
    print("Parameter space X: dataset fraction in", samples)
    print()
    print("fraction | " + " | ".join(f"{name:>22}" for name in plans))
    for x in samples:
        row = []
        for name, candidate in plans.items():
            t, m = cost(candidate, x)
            row.append(f"{t:7.1f} s  ${m:8.5f}")
        print(f"   {x:4.1f}  | " + " | ".join(f"{cell:>22}" for cell in row))

    plan_list = list(plans.values())
    print()
    for name, candidate in plans.items():
        region = pareto_region(candidate, plan_list, samples, cost)
        print(f"PaReg({name:10s}) = {region}")

    stridom = strict_dominance_region(
        plans["postgres"], plans["hive-small"], samples, cost
    )
    print(f"\nStriDom(postgres, hive-small) = {stridom}")
    print("(the paper's Eq. 3: where PostgreSQL strictly beats the small Hive plan)")


if __name__ == "__main__":
    main()
