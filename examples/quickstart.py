"""Quickstart: the paper's Example 2.1 through the federation gateway.

Builds MIDAS on the two-cloud federation (Patient in Hive on an Amazon
cloud, GeneralInfo in PostgreSQL on an Azure cloud), profiles a few
executions through the gateway's ``observe`` envelopes, then submits the
Example 2.1 query with a typed ``SubmitRequest`` under a balanced
time/money policy.  DREAM estimates the cost vector of every candidate
QEP, the multi-objective optimizer builds a Pareto plan set, Algorithm 2
picks the final plan, and the gateway returns a typed
``SubmissionReport``.

Run:  python examples/quickstart.py       (or: repro demo)
"""

from repro.federation import SubmitRequest
from repro.ires.policy import UserPolicy
from repro.midas import MidasSystem


def main() -> None:
    print("Building MIDAS (federation + engines + gateway + DREAM)...")
    midas = MidasSystem(patient_count=1500, seed=7)
    gateway = midas.gateway

    print("Profiling 30 exploratory executions of Example 2.1...")
    midas.warm_up("medical-demographics", runs=30)

    policy = UserPolicy(metrics=("time", "money"), weights=(0.6, 0.4))
    report = gateway.submit(
        SubmitRequest("medical-demographics", {"min_age": 40}, policy)
    )

    print()
    print("Query (Example 2.1):")
    print("  SELECT p.patientsex, i.generalnames")
    print("  FROM patient p, generalinfo i")
    print("  WHERE p.uid = i.uid AND p.patientage >= 40")
    print()
    print(f"QEP space: {report.candidate_count} candidate plans")
    print(f"Pareto set: {len(report.pareto_set)} non-dominated plans")
    print(f"Chosen QEP: {report.chosen.describe()}")
    print(
        f"Predicted:  {report.predicted_costs['time']:6.2f} s   "
        f"${report.predicted_costs['money']:.4f}"
    )
    print(
        f"Measured:   {report.measured_costs['time']:6.2f} s   "
        f"${report.measured_costs['money']:.4f}"
    )
    print(
        "Relative prediction error: "
        + ", ".join(f"{metric}={value:.1%}" for metric, value in report.errors.items())
    )
    print()
    print(
        f"DREAM trained on {report.cost_model.training_size} recent "
        f"observations (R^2: "
        + ", ".join(f"{m}={v:.2f}" for m, v in report.cost_model.r_squared.items())
        + ")"
    )

    print()
    print("Ground-truth result sample (local executor):")
    table = midas.execute_locally("medical-demographics", {"min_age": 40})
    for row in table.head(5).rows():
        print("  ", row)
    print(f"  ... {table.num_rows} rows total")


if __name__ == "__main__":
    main()
