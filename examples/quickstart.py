"""Quickstart: the paper's Example 2.1 end to end.

Builds MIDAS on the two-cloud federation (Patient in Hive on an Amazon
cloud, GeneralInfo in PostgreSQL on an Azure cloud), lets IReS profile a
few executions, then submits the Example 2.1 query under a balanced
time/money policy.  DREAM estimates the cost vector of every candidate
QEP, the multi-objective optimizer builds a Pareto plan set, and
Algorithm 2 picks the final plan.

Run:  python examples/quickstart.py
"""

from repro.ires.policy import UserPolicy
from repro.midas import MidasSystem


def main() -> None:
    print("Building MIDAS (federation + engines + IReS + DREAM)...")
    midas = MidasSystem(patient_count=1500, seed=7)

    print("Profiling 30 exploratory executions of Example 2.1...")
    midas.warm_up("medical-demographics", runs=30)

    policy = UserPolicy(metrics=("time", "money"), weights=(0.6, 0.4))
    result = midas.query("medical-demographics", {"min_age": 40}, policy)

    print()
    print("Query (Example 2.1):")
    print("  SELECT p.patientsex, i.generalnames")
    print("  FROM patient p, generalinfo i")
    print("  WHERE p.uid = i.uid AND p.patientage >= 40")
    print()
    print(f"QEP space: {result.candidate_count} candidate plans")
    print(f"Pareto set: {len(result.pareto_set)} non-dominated plans")
    print(f"Chosen QEP: {result.chosen_candidate.describe()}")
    predicted_time, predicted_money = result.predicted
    measured = result.execution.metrics
    print(f"Predicted:  {predicted_time:6.2f} s   ${predicted_money:.4f}")
    print(
        f"Measured:   {measured.execution_time_s:6.2f} s   "
        f"${measured.monetary_cost_usd:.4f}"
    )
    errors = result.prediction_error(("time", "money"))
    print(
        "Relative prediction error: "
        + ", ".join(f"{metric}={value:.1%}" for metric, value in errors.items())
    )
    print()
    print(
        f"DREAM trained on {result.cost_model.training_size} recent "
        f"observations (R^2: "
        + ", ".join(f"{m}={v:.2f}" for m, v in result.cost_model.r_squared.items())
        + ")"
    )

    print()
    print("Ground-truth result sample (local executor):")
    table = midas.execute_locally("medical-demographics", {"min_age": 40})
    for row in table.head(5).rows():
        print("  ", row)
    print(f"  ... {table.num_rows} rows total")


if __name__ == "__main__":
    main()
