"""DREAM's dynamic window on a synthetic regime shift.

Strips away the query engines and shows Algorithm 1's core behaviour on
a controlled stream: linear cost data whose coefficients jump at t=120
(a co-tenant arrives).  Right after the shift DREAM's stopping rule
refuses to grow the window past the regime boundary, so its predictions
recover within a handful of observations while the full-history model
stays biased for the remaining stream.

(This example deliberately works *below* the federation gateway — it
drives the raw estimator on a synthetic stream; inside the gateway the
same algorithm runs behind ``FederationConfig(strategy=...)``.)

Run:  python examples/dream_window_adaptation.py
"""

import numpy as np

from repro.common.rng import RngStream
from repro.core.dream import DreamEstimator
from repro.ml.dataset import Dataset
from repro.ml.linear import MultipleLinearRegression


def make_stream(n: int = 200, shift_at: int = 120, seed: int = 3) -> Dataset:
    rng = RngStream(seed, "stream")
    features = rng.uniform(1.0, 10.0, size=(n, 2))
    targets = np.empty(n)
    for i in range(n):
        # Before the shift the system runs at nominal speed; afterwards a
        # co-tenant doubles the per-unit cost and adds overhead.
        slope = 2.0 if i < shift_at else 4.0
        intercept = 5.0 if i < shift_at else 12.0
        targets[i] = intercept + slope * features[i].sum() + float(rng.normal(0, 1.0))
    return Dataset(features, targets, ("size_a", "size_b"))


def main() -> None:
    shift_at = 120
    data = make_stream(shift_at=shift_at)
    dream = DreamEstimator(r2_required=0.8, max_window=60)

    print("t    | actual | DREAM  (window) | full-history MLR")
    print("-----+--------+-----------------+-----------------")
    dream_errors, full_errors = [], []
    for t in range(110, 150):
        past = data.head(t)
        x = data.features[t]
        actual = float(data.targets[t])

        result = dream.fit({"cost": past})
        dream_prediction = result.predict_metric("cost", x)

        full = MultipleLinearRegression().fit(past.features, past.targets)
        full_prediction = full.predict_one(x)

        dream_errors.append(abs(dream_prediction - actual) / actual)
        full_errors.append(abs(full_prediction - actual) / actual)
        marker = "  <-- regime shift" if t == shift_at else ""
        print(
            f"{t:4d} | {actual:6.1f} | {dream_prediction:6.1f}  ({result.window_size:2d})     "
            f"| {full_prediction:6.1f}{marker}"
        )

    print()
    print(f"MRE over the window shown: DREAM {np.mean(dream_errors):.3f}, "
          f"full-history MLR {np.mean(full_errors):.3f}")
    post = slice(shift_at - 110 + 5, None)
    print(f"MRE five+ steps after the shift: DREAM {np.mean(dream_errors[post]):.3f}, "
          f"full-history MLR {np.mean(full_errors[post]):.3f}")


if __name__ == "__main__":
    main()
