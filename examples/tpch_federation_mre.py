"""Mini Tables 3 & 4: DREAM vs BML on the TPC-H federation.

A scaled-down version of the paper's evaluation (fewer runs and seeds
than the benchmark harness, so it finishes in ~20 s): builds drifting
execution histories for the two-table TPC-H queries — profiled through
the federation gateway's ``observe`` envelopes, exactly the surface a
real deployment logs through — and reports the Mean Relative Error of
DREAM against the stock-IReS Best-ML baselines.

Run:  python examples/tpch_federation_mre.py
"""

from repro.experiments import PAPER_TABLE3, format_mre_table, run_mre_experiment
from repro.experiments.mre import MreExperimentConfig


def main() -> None:
    config = MreExperimentConfig(
        scale_mib=100.0,
        train_runs=80,
        test_runs=15,
        seeds=(7,),
        queries=("q12", "q17"),
    )
    print(
        "Running a reduced Table 3: TPC-H "
        f"{config.scale_mib:.0f} MiB, queries {', '.join(config.queries)}, "
        f"{config.train_runs}+{config.test_runs} runs ..."
    )
    result = run_mre_experiment(config)
    print()
    print(
        format_mre_table(
            result,
            {q: PAPER_TABLE3[q] for q in config.queries},
            "Reduced Table 3 (paper values in parentheses)",
        )
    )
    print()
    print(
        "DREAM beats the full-history baseline by "
        + ", ".join(
            f"{query}: {row['BML'] / row['DREAM']:.1f}x"
            for query, row in result.mre.items()
        )
    )


if __name__ == "__main__":
    main()
