"""EstimationService: multi-tenant serving semantics.

Three layers of guarantees:

1. Functional — registration, per-template histories, version-keyed
   snapshot reuse, stale detection, burst refresh (parallel and
   sequential produce the same models), stats counters.
2. Equivalence — the service's models match the batch DREAM oracle fit
   on the same histories (window choice and predictions).
3. Concurrency stress (``slow`` marker) — many threads interleaving
   register/tick/estimate must produce results identical to a
   sequential replay: no torn windows, no cross-template leakage.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.common.errors import EstimationError, ValidationError
from repro.common.rng import RngStream
from repro.core import ExecutionHistory, ModelCache
from repro.ires.modelling import DreamStrategy
from repro.serving import EstimationService

from tests.helpers import FEATURES, METRICS, observation_stream


def make_service(**kwargs) -> EstimationService:
    strategy = kwargs.pop(
        "strategy", DreamStrategy(r2_required=0.8, max_window=20)
    )
    return EstimationService(strategy=strategy, **kwargs)


def feed(service: EstimationService, key: str, ticks: int, seed: int = 17) -> None:
    for tick, features, costs in observation_stream(key, ticks, seed):
        service.record(key, tick, features, costs)


class TestServiceFunctional:
    def test_register_and_duplicate_rejected(self):
        service = make_service()
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            service.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            service.register("q2")  # neither history nor feature_names
        with pytest.raises(EstimationError, match="no template"):
            service.model("missing")

    def test_snapshot_reused_until_history_moves(self):
        service = make_service()
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(service, "q1", 12)
        first = service.model("q1")
        assert service.model("q1") is first  # same version -> same snapshot
        tick, features, costs = observation_stream("q1", 13)[-1]
        service.record("q1", tick + 1, features, costs)
        assert service.is_stale("q1")
        second = service.model("q1")
        assert second is not first
        stats = service.stats
        assert stats.fits == 2 and stats.snapshot_hits == 1
        assert stats.observations == 13

    def test_refresh_fits_only_stale_templates(self):
        service = make_service()
        for i in range(4):
            service.register(f"q{i}", feature_names=FEATURES, metrics=METRICS)
            feed(service, f"q{i}", 10, seed=i)
        service.model("q0")  # q0 fresh, q1..q3 stale
        assert service.stale_keys() == ["q1", "q2", "q3"]
        models = service.refresh()
        assert set(models) == {"q0", "q1", "q2", "q3"}
        assert service.stale_keys() == []
        stats = service.stats
        assert stats.bursts == 1 and stats.burst_fits == 3
        assert stats.fits == 4  # q0 once + three burst fits

    def test_parallel_and_sequential_refresh_agree(self):
        streams = {f"q{i}": 14 + i for i in range(6)}
        results = {}
        for parallel in (False, True):
            service = make_service()
            for key, ticks in streams.items():
                service.register(key, feature_names=FEATURES, metrics=METRICS)
                feed(service, key, ticks, seed=len(key))
            models = service.refresh(parallel=parallel)
            probe = np.array([55.0, 4.0])
            results[parallel] = {
                key: (model.training_size, model.predict(probe))
                for key, model in models.items()
            }
        assert results[False].keys() == results[True].keys()
        for key in results[False]:
            size_seq, pred_seq = results[False][key]
            size_par, pred_par = results[True][key]
            assert size_seq == size_par
            for metric in pred_seq:
                assert pred_par[metric] == pytest.approx(pred_seq[metric], rel=1e-12)

    def test_unfittable_template_does_not_poison_the_burst(self):
        """A tenant with too little history is skipped by refresh();
        healthy tenants still get their models."""
        service = make_service()
        service.register("healthy", feature_names=FEATURES, metrics=METRICS)
        service.register("empty", feature_names=FEATURES, metrics=METRICS)
        service.register("short", feature_names=FEATURES, metrics=METRICS)
        feed(service, "healthy", 12)
        feed(service, "short", 2)  # below the minimum window L + 2
        for parallel in (True, False):
            models = service.refresh(parallel=parallel)
            assert set(models) == {"healthy"}
        # The unfittable tenants still raise loudly when asked directly.
        with pytest.raises(EstimationError):
            service.model("empty")

    def test_estimate_batch_matches_per_row(self):
        service = make_service()
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(service, "q1", 20)
        matrix = RngStream(3, "probe").uniform(5.0, 120.0, size=(16, 2))
        batched = service.estimate_batch("q1", matrix)
        for i, row in enumerate(matrix):
            per_row = service.estimate("q1", row)
            for metric, value in per_row.items():
                assert batched[metric][i] == pytest.approx(value, rel=1e-12)

    def test_engine_cache_stats_surface_through_service(self):
        service = make_service()
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(service, "q1", 10)
        service.model("q1")
        stats = service.stats
        assert stats.engine_cache is not None
        assert stats.engine_cache.misses == 1

    def test_max_workers_validation(self):
        with pytest.raises(ValidationError):
            make_service(max_workers=0)


class TestServiceOracleEquivalence:
    def test_service_models_match_batch_oracle(self):
        """Acceptance: the serving path (incremental engines, snapshot
        cache, burst pool) chooses the same windows and predicts within
        1e-6 of the batch DREAM oracle on the paper drift scenario."""
        from repro.core import DreamEstimator

        service = make_service()
        oracle = DreamEstimator(r2_required=0.8, max_window=20)
        keys = [f"q{i}" for i in range(5)]
        for i, key in enumerate(keys):
            service.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(service, key, 30 + i, seed=100 + i)
        models = service.refresh(parallel=True)
        probe = np.array([55.0, 4.0])
        for key in keys:
            reference = oracle.fit(service.history(key).datasets())
            assert models[key].training_size == reference.window_size
            expected = reference.predict(probe)
            actual = models[key].predict(probe)
            for metric in expected:
                assert actual[metric] == pytest.approx(
                    expected[metric], rel=1e-6, abs=1e-9
                )


@pytest.mark.slow
class TestServiceConcurrencyStress:
    """Hammer the service from many threads; compare to sequential replay."""

    TEMPLATES = 8
    TICKS = 40
    ESTIMATE_EVERY = 3  # estimate after every 3rd tick
    WARMUP = 6  # minimum window before the first estimate

    def _script(self, key: str):
        """The deterministic op sequence one tenant thread executes."""
        stream = observation_stream(key, self.TICKS, seed=31)
        probe_rng = RngStream(41, "probe", key)
        ops = []
        for i, (tick, features, costs) in enumerate(stream):
            ops.append(("tick", (tick, features, costs)))
            if i >= self.WARMUP and i % self.ESTIMATE_EVERY == 0:
                probe = probe_rng.uniform(10.0, 100.0, size=2)
                ops.append(("estimate", probe))
        return ops

    def _run_script(self, service, key, ops, barrier=None):
        if barrier is not None:
            barrier.wait()
        outputs = []
        for op, payload in ops:
            if op == "tick":
                tick, features, costs = payload
                service.record(key, tick, features, costs)
            else:
                outputs.append(service.estimate(key, payload))
        return outputs

    def _sequential_reference(self, keys):
        reference = {}
        for key in keys:
            service = make_service()
            service.register(key, feature_names=FEATURES, metrics=METRICS)
            reference[key] = self._run_script(service, key, self._script(key))
        return reference

    def test_interleaved_tenants_match_sequential_replay(self):
        """One thread per tenant, all interleaving on one shared service
        (shared strategy, shared engine cache): every tenant's estimate
        trace must be bitwise-identical to replaying that tenant alone
        on a private service — any cross-template state leakage or torn
        window would perturb some trace."""
        keys = [f"q{i}" for i in range(self.TEMPLATES)]
        reference = self._sequential_reference(keys)

        for round_index in range(3):  # repeat: interleavings vary
            service = make_service()
            barrier = threading.Barrier(len(keys))
            with ThreadPoolExecutor(max_workers=len(keys)) as pool:
                futures = {}
                for key in keys:
                    service.register(key, feature_names=FEATURES, metrics=METRICS)
                    futures[key] = pool.submit(
                        self._run_script, service, key, self._script(key), barrier
                    )
                outputs = {key: future.result() for key, future in futures.items()}
            for key in keys:
                assert len(outputs[key]) == len(reference[key])
                for got, want in zip(outputs[key], reference[key]):
                    assert got == want, f"{key} diverged in round {round_index}"

    def test_concurrent_registration_and_bursts(self):
        """register/tick/refresh interleaved from many threads: exactly
        one registration per key wins, bursts never crash, and the final
        models equal a sequential replay of the surviving histories."""
        service = make_service(
            strategy=DreamStrategy(
                r2_required=0.8, max_window=20, engine_cache=ModelCache(capacity=4)
            )
        )
        keys = [f"q{i}" for i in range(self.TEMPLATES)]
        registered_twice = []

        def tenant(key):
            try:
                service.register(key, feature_names=FEATURES, metrics=METRICS)
            except ValidationError:
                registered_twice.append(key)
            for index, (_, features, costs) in enumerate(
                observation_stream(key, self.TICKS, seed=7)
            ):
                # Both racing tenants log at tick 0 (equal ticks are
                # legal): a per-thread increasing tick would violate the
                # history's monotonic-tick invariant once the threads
                # interleave, which is not what this test is probing.
                service.record(key, 0, features, costs)
                if index % 5 == 0 and index >= self.WARMUP:
                    service.model(key)

        def refresher():
            for _ in range(10):
                service.refresh(parallel=True)

        threads = [
            threading.Thread(target=tenant, args=(key,))
            for key in keys
            for _ in range(2)  # two racing registrations per key
        ] + [threading.Thread(target=refresher) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sorted(registered_twice) == sorted(keys)  # one loser per key
        assert service.keys() == sorted(keys)
        probe = np.array([55.0, 4.0])
        final = service.refresh(parallel=False)
        for key in keys:
            history = service.history(key)
            # Both racing tenants appended the same deterministic stream,
            # so the history holds it twice, interleaved; a sequential
            # replay of the *same observations* must give the same model.
            replay = ExecutionHistory(FEATURES, METRICS)
            for obs in history.observations:
                replay.append(obs.tick, obs.features, obs.costs)
            solo = make_service()
            solo.register(key, history=replay)
            expected = solo.estimate(key, probe)
            actual = final[key].predict(probe)
            for metric in expected:
                assert actual[metric] == pytest.approx(expected[metric], rel=1e-12)

    def test_estimates_never_observe_torn_windows(self):
        """Readers hammer estimate() while a writer ticks the same
        template: every returned prediction must be finite and every
        internal fit must see a consistent window (no exceptions)."""
        service = make_service()
        service.register("hot", feature_names=FEATURES, metrics=METRICS)
        feed(service, "hot", self.WARMUP + 1)
        stop = threading.Event()
        failures = []

        def reader():
            probe_rng = RngStream(53, "hot-probe")
            while not stop.is_set():
                try:
                    values = service.estimate(
                        "hot", probe_rng.uniform(10.0, 100.0, size=2)
                    )
                    if not all(np.isfinite(v) for v in values.values()):
                        failures.append(values)
                except Exception as error:  # pragma: no cover - failure path
                    failures.append(error)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for tick, features, costs in observation_stream("hot", 200, seed=67):
                service.record("hot", tick + self.WARMUP + 1, features, costs)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not failures
