"""Tests for the physical plan profiler (sizes, transfers, placement)."""

import pytest

from repro.common.errors import PlanError
from repro.plans.binder import plan_sql
from repro.plans.catalog import Catalog
from repro.plans.optimizer import optimize
from repro.plans.physical import (
    EnginePlacement,
    Placement,
    profile_plan,
)
from repro.plans.statistics import compute_table_stats
from repro.tpch import TpchDataset, TPCH_QUERIES

from tests.helpers import make_lineitem, make_orders, make_part


@pytest.fixture(scope="module")
def dataset():
    return TpchDataset(scale_mib=100, physical_scale_factor=0.0005)


@pytest.fixture(scope="module")
def placement():
    return Placement(
        tables={
            "orders": EnginePlacement("hive", "cloud-a"),
            "part": EnginePlacement("hive", "cloud-a"),
            "lineitem": EnginePlacement("postgresql", "cloud-b"),
            "customer": EnginePlacement("postgresql", "cloud-b"),
        },
        execution=EnginePlacement("hive", "cloud-a"),
    )


def q12_plan(dataset):
    sql = TPCH_QUERIES["q12"].render(
        {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
    )
    return optimize(plan_sql(sql, dataset.catalog))


class TestProfileStructure:
    def test_scans_at_table_sites(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        scans = {op.detail: op for op in profile.operators if op.kind == "scan"}
        assert scans["orders"].site == "cloud-a"
        assert scans["lineitem"].site == "cloud-b"
        assert scans["lineitem"].engine == "postgresql"

    def test_join_at_execution_site(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        joins = [op for op in profile.operators if op.kind == "join"]
        assert joins and all(op.site == "cloud-a" for op in joins)

    def test_transfer_recorded_for_remote_input(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        assert len(profile.transfers) == 1
        transfer = profile.transfers[0]
        assert (transfer.from_site, transfer.to_site) == ("cloud-b", "cloud-a")
        # The moved payload is the *filtered* lineitem, much smaller than
        # the table itself.
        lineitem_bytes = dataset.logical_stats["lineitem"].size_bytes
        assert 0 < transfer.payload_bytes < 0.25 * lineitem_bytes

    def test_no_transfer_when_colocated(self, dataset, placement):
        colocated = Placement(
            tables=placement.tables,
            execution=EnginePlacement("postgresql", "cloud-b"),
        )
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, colocated)
        froms = {t.from_site for t in profile.transfers}
        assert froms == {"cloud-a"}  # only orders moves now

    def test_filter_shrinks_rows(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        filters = [op for op in profile.operators if op.kind == "filter"]
        assert filters
        for op in filters:
            assert op.output_rows <= op.input_rows

    def test_effective_table_bytes_tracks_filters(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        effective = profile.effective_table_bytes
        # orders is unfiltered in Q12; lineitem is heavily filtered.
        assert effective["orders"] == pytest.approx(
            dataset.logical_stats["orders"].size_bytes
        )
        assert effective["lineitem"] < 0.25 * dataset.logical_stats["lineitem"].size_bytes

    def test_aggregate_groups_bounded(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        aggregates = [op for op in profile.operators if op.kind == "aggregate"]
        assert aggregates
        # Q12 groups by l_shipmode: at most 7 ship modes exist.
        assert aggregates[0].output_rows <= 7

    def test_intermediate_bytes_positive(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        assert profile.intermediate_bytes() > 0
        assert profile.transferred_bytes() > 0

    def test_participating_engines(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        participants = {(p.engine, p.site) for p in profile.participating()}
        assert participants == {("hive", "cloud-a"), ("postgresql", "cloud-b")}

    def test_scanned_bytes_by_site(self, dataset, placement):
        profile = profile_plan(q12_plan(dataset), dataset.logical_stats, placement)
        total = profile.scanned_bytes()
        at_a = profile.scanned_bytes("cloud-a")
        at_b = profile.scanned_bytes("cloud-b")
        assert total == pytest.approx(at_a + at_b)


class TestSubqueryProfiling:
    def test_q17_subquery_operators_profiled(self, dataset, placement):
        sql = TPCH_QUERIES["q17"].render({"brand": "Brand#11", "container": "SM BOX"})
        plan = optimize(plan_sql(sql, dataset.catalog))
        profile = profile_plan(plan, dataset.logical_stats, placement)
        lineitem_scans = [
            op for op in profile.operators if op.kind == "scan" and op.detail == "lineitem"
        ]
        # Main scan + the correlated subquery's rewritten aggregate scan.
        assert len(lineitem_scans) == 2


class TestErrors:
    def test_missing_stats(self, placement):
        catalog = Catalog([make_orders(), make_lineitem(), make_part()])
        plan = plan_sql("select o_orderkey from orders", catalog)
        with pytest.raises(PlanError, match="no statistics"):
            profile_plan(plan, {}, placement)

    def test_missing_placement(self, dataset):
        plan = q12_plan(dataset)
        incomplete = Placement(
            tables={"orders": EnginePlacement("hive", "cloud-a")},
            execution=EnginePlacement("hive", "cloud-a"),
        )
        with pytest.raises(PlanError, match="no placement"):
            profile_plan(plan, dataset.logical_stats, incomplete)


class TestSampledStats:
    def test_sampled_scales_rows_and_bytes(self):
        stats = compute_table_stats(make_orders())
        half = stats.sampled(0.5)
        assert half.row_count == 2
        assert half.size_bytes == pytest.approx(stats.size_bytes / 2, rel=0.3)

    def test_sampled_keeps_categorical_distincts(self, dataset):
        stats = dataset.logical_stats["orders"]
        sampled = stats.sampled(0.5)
        original = stats.column("o_orderpriority").distinct_count
        assert sampled.column("o_orderpriority").distinct_count == min(
            original, sampled.row_count
        )

    def test_sampled_scales_key_distincts(self, dataset):
        stats = dataset.logical_stats["orders"]
        sampled = stats.sampled(0.5)
        assert sampled.column("o_orderkey").distinct_count < stats.column(
            "o_orderkey"
        ).distinct_count

    def test_invalid_fraction(self, dataset):
        with pytest.raises(PlanError):
            dataset.logical_stats["orders"].sampled(0.0)
        with pytest.raises(PlanError):
            dataset.logical_stats["orders"].sampled(1.5)
