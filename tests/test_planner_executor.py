"""Tests for binder + executor: end-to-end SQL semantics on tiny tables."""

import datetime

import pytest

from repro.common.errors import ExecutionError, PlanError, SchemaError
from repro.plans import Catalog, execute_sql
from repro.plans.binder import plan_sql
from repro.plans.logical import Aggregate, Filter, Join, Project, Sort
from repro.relational import Column, DataType, Schema, Table

from tests.helpers import date, make_lineitem, make_orders, make_part, tiny_catalog


def run(sql: str) -> list[tuple]:
    return execute_sql(sql, tiny_catalog()).to_rows()


class TestProjectionAndFilter:
    def test_select_columns(self):
        rows = run("select o_orderkey, o_custkey from orders")
        assert rows == [(1, 10), (2, 11), (3, 10), (4, 12)]

    def test_star(self):
        rows = run("select * from part")
        assert len(rows) == 3 and len(rows[0]) == 4

    def test_qualified_star(self):
        rows = run("select o.* from orders o where o.o_orderkey = 1")
        assert len(rows) == 1 and rows[0][0] == 1

    def test_computed_expression(self):
        rows = run("select l_quantity * 2 from lineitem where l_orderkey = 1")
        assert rows == [(20.0,), (10.0,)]

    def test_filter_excludes_null_predicate_rows(self):
        # o_comment of order 4 is NULL: LIKE yields NULL -> row dropped in
        # both the positive and negated filter.
        liked = run("select o_orderkey from orders where o_comment like '%special%'")
        not_liked = run(
            "select o_orderkey from orders where o_comment not like '%special%'"
        )
        keys = {r[0] for r in liked} | {r[0] for r in not_liked}
        assert 4 not in keys

    def test_where_with_dates(self):
        rows = run(
            "select o_orderkey from orders "
            "where o_orderdate >= date '1994-01-01' "
            "and o_orderdate < date '1994-01-01' + interval '1' year"
        )
        assert [r[0] for r in rows] == [1, 2]

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="unknown column"):
            run("select nope from orders")

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError, match="unknown table"):
            run("select a from missing_table")

    def test_ambiguous_column_raises(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            run("select o_orderkey from orders o1, orders o2")


class TestJoins:
    def test_inner_join_via_where(self):
        rows = run(
            "select o_orderkey, l_shipmode from orders, lineitem "
            "where o_orderkey = l_orderkey and o_orderpriority = '1-URGENT'"
        )
        assert sorted(rows) == [(1, "AIR"), (1, "MAIL")]

    def test_explicit_inner_join(self):
        rows = run(
            "select o_orderkey, l_partkey from orders "
            "join lineitem on o_orderkey = l_orderkey where l_partkey = 102"
        )
        assert rows == [(3, 102)]

    def test_left_join_preserves_unmatched(self):
        rows = run(
            "select o_orderkey, l_orderkey from orders "
            "left join lineitem on o_orderkey = l_orderkey"
        )
        unmatched = [r for r in rows if r[1] is None]
        assert [r[0] for r in unmatched] == [4]

    def test_left_join_with_residual_condition(self):
        rows = run(
            "select o_orderkey, l_shipmode from orders "
            "left join lineitem on o_orderkey = l_orderkey and l_shipmode = 'MAIL'"
        )
        by_key = {}
        for key, mode in rows:
            by_key.setdefault(key, []).append(mode)
        assert by_key[1] == ["MAIL"]
        assert by_key[2] == [None]  # order 2's only line is SHIP
        assert by_key[4] == [None]

    def test_cross_join_cardinality(self):
        rows = run("select o_orderkey, p_partkey from orders, part")
        assert len(rows) == 4 * 3

    def test_non_equi_join(self):
        rows = run(
            "select o_orderkey, l_orderkey from orders join lineitem "
            "on l_orderkey < o_orderkey where o_orderkey = 2"
        )
        assert sorted(rows) == [(2, 1), (2, 1)]

    def test_join_null_keys_never_match(self):
        schema = Schema([Column("k", DataType.INTEGER)])
        left = Table.from_rows("l", schema, [[1], [None]])
        right = Table.from_rows("r", Schema([Column("k2", DataType.INTEGER)]), [[1], [None]])
        catalog = Catalog([left, right])
        rows = execute_sql("select k, k2 from l join r on k = k2", catalog).to_rows()
        assert rows == [(1, 1)]


class TestAggregation:
    def test_group_by_counts(self):
        rows = run(
            "select o_custkey, count(*) as c from orders group by o_custkey "
            "order by o_custkey"
        )
        assert rows == [(10, 2), (11, 1), (12, 1)]

    def test_global_aggregate_on_empty_input(self):
        rows = run("select count(*), sum(l_quantity) from lineitem where l_orderkey = 99")
        assert rows == [(0, None)]

    def test_sum_avg_min_max(self):
        rows = run(
            "select sum(l_quantity), avg(l_quantity), min(l_quantity), max(l_quantity) "
            "from lineitem where l_orderkey = 1"
        )
        assert rows == [(15.0, 7.5, 5.0, 10.0)]

    def test_count_column_ignores_nulls(self):
        rows = run("select count(o_comment) from orders")
        assert rows == [(3,)]

    def test_count_distinct(self):
        rows = run("select count(distinct l_partkey) from lineitem")
        assert rows == [(3,)]

    def test_expression_over_aggregates(self):
        rows = run(
            "select 100.0 * sum(case when l_shipmode = 'MAIL' then l_extendedprice "
            "else 0 end) / sum(l_extendedprice) as pct from lineitem"
        )
        assert rows[0][0] == pytest.approx(100.0 * 400.0 / 1050.0)

    def test_having(self):
        rows = run(
            "select o_custkey, count(*) as c from orders group by o_custkey "
            "having count(*) > 1"
        )
        assert rows == [(10, 2)]

    def test_group_by_expression(self):
        rows = run(
            "select l_quantity / 10 as bucket, count(*) from lineitem "
            "group by l_quantity / 10 order by bucket"
        )
        assert [r[0] for r in rows] == [0.5, 1.0, 2.0, 3.0, 4.0]

    def test_bare_column_not_in_group_by_rejected(self):
        with pytest.raises(PlanError, match="GROUP BY"):
            run("select o_custkey, o_orderkey from orders group by o_custkey")

    def test_aggregate_in_where_rejected(self):
        with pytest.raises(PlanError, match="WHERE"):
            run("select o_orderkey from orders where count(*) > 1")


class TestOrderLimitDistinct:
    def test_order_by_alias_desc(self):
        rows = run(
            "select o_custkey, count(*) as c from orders group by o_custkey "
            "order by c desc, o_custkey"
        )
        assert rows[0] == (10, 2)

    def test_order_by_position(self):
        rows = run("select o_orderkey, o_custkey from orders order by 2, 1")
        assert [r[1] for r in rows] == [10, 10, 11, 12]

    def test_order_by_nulls_last_both_directions(self):
        asc = run("select o_comment from orders order by o_comment")
        desc = run("select o_comment from orders order by o_comment desc")
        assert asc[-1][0] is None
        assert desc[-1][0] is None

    def test_limit(self):
        rows = run("select o_orderkey from orders order by o_orderkey limit 2")
        assert rows == [(1,), (2,)]

    def test_distinct(self):
        rows = run("select distinct o_custkey from orders order by o_custkey")
        assert rows == [(10,), (11,), (12,)]

    def test_unbindable_order_key_rejected(self):
        with pytest.raises(PlanError, match="ORDER BY"):
            run("select o_orderkey from orders order by o_missing")


class TestSubqueries:
    def test_uncorrelated_scalar(self):
        rows = run(
            "select o_orderkey from orders "
            "where o_orderkey > (select avg(l_orderkey) from lineitem)"
        )
        assert [r[0] for r in rows] == [3, 4]

    def test_correlated_scalar(self):
        rows = run(
            "select l_orderkey, l_quantity from lineitem "
            "where l_quantity > (select avg(l2.l_quantity) from lineitem l2 "
            "where l2.l_orderkey = lineitem.l_orderkey) order by l_orderkey"
        )
        assert rows == [(1, 10.0), (3, 40.0)]

    def test_scalar_subquery_empty_is_null(self):
        rows = run(
            "select o_orderkey from orders "
            "where o_orderkey > (select avg(l_orderkey) from lineitem where l_orderkey = 99)"
        )
        assert rows == []

    def test_scalar_subquery_multi_row_raises(self):
        with pytest.raises(ExecutionError, match="more than one row"):
            run(
                "select o_orderkey from orders "
                "where o_orderkey = (select l_orderkey from lineitem)"
            )

    def test_in_subquery(self):
        rows = run(
            "select o_orderkey from orders "
            "where o_orderkey in (select l_orderkey from lineitem where l_shipmode = 'MAIL')"
        )
        assert [r[0] for r in rows] == [1, 3]

    def test_not_in_subquery(self):
        rows = run(
            "select o_orderkey from orders "
            "where o_orderkey not in (select l_orderkey from lineitem)"
        )
        assert [r[0] for r in rows] == [4]

    def test_exists_correlated(self):
        rows = run(
            "select o_orderkey from orders where exists "
            "(select l_orderkey from lineitem where l_orderkey = o_orderkey "
            "and l_shipmode = 'RAIL')"
        )
        assert [r[0] for r in rows] == [3]

    def test_derived_table(self):
        rows = run(
            "select big.k from (select o_orderkey as k from orders "
            "where o_orderkey > 2) as big order by big.k"
        )
        assert rows == [(3,), (4,)]

    def test_derived_table_alias_arity_mismatch(self):
        with pytest.raises(PlanError, match="aliases"):
            run("select x from (select o_orderkey from orders) as d (x, y)")


class TestPlanShapes:
    def test_plan_pretty_prints(self):
        plan = plan_sql(
            "select o_custkey, count(*) as c from orders group by o_custkey "
            "order by c desc limit 1",
            tiny_catalog(),
        )
        text = plan.pretty()
        assert "Aggregate" in text
        assert "Scan(orders" in text

    def test_output_fields_named(self):
        plan = plan_sql("select o_orderkey as k, o_custkey from orders", tiny_catalog())
        names = [f.name for f in plan.output_fields()]
        assert names == ["k", "o_custkey"]

    def test_duplicate_output_names_deduplicated_in_result(self):
        result = execute_sql(
            "select o_orderkey, o_orderkey from orders limit 1", tiny_catalog()
        )
        assert len(set(result.schema.names)) == 2
