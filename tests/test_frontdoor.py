"""The batched front door: admission, backpressure, coalesced flushes.

Four layers of guarantees:

1. Envelopes — ``BatchObserveRequest`` validates its rows eagerly;
   ``IngestBatch``/``IngestStats`` carry the aligned per-item outcome.
2. Backpressure — a full queue raises the typed
   ``IngestOverflowError`` (template + phase + bound) in reject mode,
   blocks without ever deadlocking in block mode (slow-marked stall
   test with a hard timeout), and ``drain()`` stays idempotent after
   ``close()``.
3. Coalescing — flushes fire at the size and staleness watermarks; a
   flush over the sharded backend issues at most one ``fit_many`` RPC
   per shard per fit round (asserted via the RPC counters, never via
   timing), and the wire protocol refuses version-mismatched messages.
4. Oracle equivalence — ``ingest()`` + ``drain()`` produces the same
   reports as the sequential single-call replay (the full property
   suite lives in ``tests/test_sharded_properties.py``; here the
   deterministic mixed-traffic case runs on both backends).
"""

import threading
import time

import pytest

import repro.federation.frontdoor as frontdoor_module
from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.federation import (
    BatchObserveRequest,
    DurabilityConfig,
    EnvelopeError,
    FederationConfig,
    FederationError,
    IngestAbortedError,
    IngestOverflowError,
    IngestStats,
    ObserveRequest,
    SessionStateError,
    SubmitRequest,
    UnknownTemplateError,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

from tests.helpers import assert_report_pair_equal

KEY = "medical-demographics"
KEY2 = "medical-severe-cases"


def make_midas(
    seed: int = 5, runs: int = 10, config: FederationConfig | None = None
) -> MidasSystem:
    midas = MidasSystem(patient_count=300, seed=seed, config=config)
    if runs:
        midas.warm_up(KEY, runs=runs)
    return midas


def observe_request(rng: RngStream, key: str = KEY) -> ObserveRequest:
    return ObserveRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


def submit_request(rng: RngStream, key: str = KEY) -> SubmitRequest:
    return SubmitRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


@pytest.fixture(scope="module")
def midas() -> MidasSystem:
    system = make_midas()
    yield system
    system.gateway.close()


class TestBatchObserveEnvelope:
    def test_valid_batch(self):
        rows = (ObserveRequest(KEY), ObserveRequest(KEY))
        batch = BatchObserveRequest(KEY, rows)
        assert len(batch) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(EnvelopeError, match="at least one row"):
            BatchObserveRequest(KEY, ())

    def test_mixed_templates_rejected(self):
        with pytest.raises(EnvelopeError, match="contains a row for"):
            BatchObserveRequest(KEY, (ObserveRequest(KEY), ObserveRequest(KEY2)))

    def test_non_observe_rows_rejected(self):
        with pytest.raises(EnvelopeError, match="must be ObserveRequest"):
            BatchObserveRequest(KEY, (SubmitRequest(KEY),))


class TestAdmission:
    def test_ticket_pending_then_resolved(self):
        midas = make_midas(seed=21)
        gateway = midas.gateway
        rng = RngStream(3, "admission")
        ticket = gateway.ingest(observe_request(rng))
        assert not ticket.done
        assert ticket.kind == "observe" and ticket.template == KEY
        with pytest.raises(SessionStateError, match="not flushed"):
            ticket.result()
        batch = gateway.drain()
        assert ticket.done and ticket.batch_seq == batch.seq
        assert ticket.result() is batch.reports[0]
        assert batch.trigger == "drain" and batch.observes == 1
        gateway.close()

    def test_batch_observe_expands_to_row_tickets(self):
        midas = make_midas(seed=22)
        gateway = midas.gateway
        rng = RngStream(4, "batch-observe")
        rows = tuple(observe_request(rng) for _ in range(3))
        tickets = gateway.ingest(BatchObserveRequest(KEY, rows))
        assert [t.kind for t in tickets] == ["observe"] * 3
        batch = gateway.drain()
        assert len(batch) == 3 and batch.failed == 0
        # Row order is admission order is execution order.
        assert [t.tick for t in tickets] == sorted(t.tick for t in tickets)
        gateway.close()

    def test_unknown_template_rejected_at_admission(self, midas):
        with pytest.raises(UnknownTemplateError):
            midas.gateway.ingest(ObserveRequest("no-such-template"))

    def test_non_envelope_rejected(self, midas):
        with pytest.raises(EnvelopeError, match="ingest\\(\\) takes"):
            midas.gateway.ingest({"template": KEY})

    def test_empty_batch_admission_raises_typed_error(self, midas):
        # Defence in depth: construction already rejects zero rows, but
        # a hollow batch smuggled past __post_init__ must still surface
        # as the typed envelope error at admission, never an IndexError.
        hollow = object.__new__(BatchObserveRequest)
        object.__setattr__(hollow, "template", KEY)
        object.__setattr__(hollow, "requests", ())
        with pytest.raises(EnvelopeError, match="empty batch"):
            midas.gateway.ingest(hollow)

    def test_per_item_error_isolation(self):
        # A submission on an empty history fails with the same typed
        # error the sequential path raises — and its batch-mates all
        # still execute.
        midas = make_midas(seed=23, runs=8)
        gateway = midas.gateway
        rng = RngStream(5, "isolation")
        gateway.ingest(observe_request(rng))
        gateway.ingest(submit_request(rng, key=KEY2))  # never warmed up
        gateway.ingest(observe_request(rng))
        batch = gateway.drain()
        assert batch.failed == 1
        assert batch.reports[0] is not None and batch.reports[2] is not None
        error = batch.errors[1]
        assert isinstance(error, FederationError)
        assert error.template == KEY2
        gateway.close()


class TestBackpressure:
    def config(self, **kw):
        base = dict(
            max_window=24, ingest_queue_depth=4, ingest_batch_max=4
        )
        base.update(kw)
        return FederationConfig(**base)

    def test_reject_mode_raises_typed_overflow(self):
        midas = make_midas(seed=31, config=self.config(ingest_batch_max=4))
        gateway = midas.gateway
        rng = RngStream(6, "overflow")
        # batch_max == queue_depth would auto-flush at 4, so stop at 3
        # and shrink the watermark window by filling to the bound with
        # the flush suppressed.
        door = gateway._door()
        door.batch_max = 100  # suppress the size watermark for the test
        for _ in range(4):
            gateway.ingest(observe_request(rng))
        with pytest.raises(IngestOverflowError) as info:
            gateway.ingest(observe_request(rng))
        assert info.value.phase == "ingest"
        assert info.value.template == KEY
        assert info.value.queue_depth == 4
        stats = gateway.ingest_stats()
        assert stats.rejected == 1 and stats.pending == 4
        gateway.close()

    def test_oversized_batch_rejected_in_both_modes(self):
        for mode in ("reject", "block"):
            midas = make_midas(
                seed=32, runs=0, config=self.config(ingest_overflow=mode)
            )
            rows = tuple(ObserveRequest(KEY) for _ in range(5))
            with pytest.raises(IngestOverflowError, match="whole ingest queue"):
                midas.gateway.ingest(BatchObserveRequest(KEY, rows))
            midas.gateway.close()

    def test_block_mode_self_flushes_instead_of_deadlocking(self):
        # A single-threaded blocked admission must make its own room.
        midas = make_midas(
            seed=33, config=self.config(ingest_overflow="block")
        )
        gateway = midas.gateway
        door = gateway._door()
        door.batch_max = 100  # only backpressure may trigger the flush
        rng = RngStream(7, "block")
        for _ in range(6):  # two more than the queue holds
            gateway.ingest(observe_request(rng))
        stats = gateway.ingest_stats()
        assert stats.blocked >= 1
        assert stats.flushes >= 1 and stats.pending < 4
        # Overflow self-help is its own trigger, never conflated with
        # the size watermark (suppressed above, so it must stay zero).
        assert stats.backpressure_flushes >= 1
        assert stats.size_flushes == 0
        gateway.close()

    def test_drain_idempotent_after_close(self):
        midas = make_midas(seed=34, runs=4)
        gateway = midas.gateway
        rng = RngStream(8, "close")
        gateway.ingest(observe_request(rng))
        gateway.close()
        first = gateway.drain()
        second = gateway.drain()
        assert len(first) == 0 and len(second) == 0
        assert first.seq == second.seq  # no phantom flushes
        with pytest.raises(SessionStateError, match="closed"):
            gateway.ingest(observe_request(rng))

    def test_close_flushes_pending_items(self):
        midas = make_midas(seed=35)
        gateway = midas.gateway
        rng = RngStream(9, "close-flush")
        ticket = gateway.ingest(observe_request(rng))
        gateway.close()
        assert ticket.done and ticket.error is None
        assert gateway.ingest_stats().drain_flushes == 1


class TestCloseWhileDraining:
    """ISSUE 7 satellite: ``close()`` during an in-flight ``drain()``
    must wait the flush out (tearing the serving layer down under a
    running flush would kill workers mid-fit), resolve every ticket,
    refuse post-close admissions with the typed session error, and stay
    idempotent — on both serving backends."""

    @pytest.mark.parametrize("backend", ["threaded", "sharded"])
    def test_close_during_inflight_drain_is_ordered_and_idempotent(self, backend):
        config = FederationConfig(
            serving_backend=backend, shard_workers=2, max_window=24
        )
        midas = MidasSystem(patient_count=250, seed=81, config=config)
        gateway = midas.gateway
        rng = RngStream(19, "close-race")
        entered = threading.Event()
        release = threading.Event()
        original = gateway.observe

        def stalling_observe(request, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original(request, **kwargs)

        gateway.observe = stalling_observe
        tickets = [gateway.ingest(observe_request(rng)) for _ in range(3)]

        drained = {}

        def drain():
            drained["batch"] = gateway.drain()

        drainer = threading.Thread(target=drain, daemon=True)
        drainer.start()
        assert entered.wait(timeout=10), "flush never started"
        # close() lands mid-flush; it must block until the drain's
        # flush finishes, then shut the serving layer down.
        closer = threading.Thread(target=gateway.close, daemon=True)
        closer.start()
        release.set()
        drainer.join(timeout=30)
        closer.join(timeout=30)
        assert not drainer.is_alive(), "drain() deadlocked against close()"
        assert not closer.is_alive(), "close() deadlocked against drain()"
        batch = drained["batch"]
        assert len(batch) == 3 and batch.failed == 0
        assert all(ticket.done and ticket.error is None for ticket in tickets)
        # The door is gone: admission is refused with the typed error...
        with pytest.raises(SessionStateError, match="closed"):
            gateway.ingest(observe_request(rng))
        # ...while repeat close and drain stay safe no-ops.
        gateway.close()
        assert len(gateway.drain()) == 0


@pytest.mark.slow
class TestBlockingStall:
    def test_blocked_ingest_survives_a_slow_worker_stall(self):
        """Block mode never deadlocks while another thread's flush
        stalls inside the serving layer (hard 30s timeout)."""
        midas = make_midas(
            seed=36,
            config=FederationConfig(
                max_window=24,
                ingest_queue_depth=3,
                ingest_batch_max=3,
                ingest_overflow="block",
            ),
        )
        gateway = midas.gateway
        rng = RngStream(10, "stall")
        stall = threading.Event()
        original = gateway.observe

        def slow_observe(request, **kwargs):
            stall.wait(timeout=2.0)  # a worker answering slowly
            return original(request, **kwargs)

        gateway.observe = slow_observe
        requests = [observe_request(rng) for _ in range(7)]

        done = threading.Event()
        failures = []

        def pump():
            try:
                for request in requests:
                    gateway.ingest(request)
                gateway.drain()
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)
            finally:
                done.set()

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        # Let admissions hit the watermark and block on the stalled
        # flush, then release the stall.
        assert not done.wait(timeout=0.5)
        stall.set()
        assert done.wait(timeout=30), "blocked ingest deadlocked"
        thread.join(timeout=5)
        assert not failures, failures
        stats = gateway.ingest_stats()
        assert stats.admitted == 7 and stats.items_flushed == 7
        gateway.observe = original
        gateway.close()


class TestNotifyDrivenWakeups:
    def test_drain_waiter_wakes_on_flush_end_not_poll(self, monkeypatch):
        """A waiter parked behind an in-flight flush must wake on the
        ``notify_all`` at ``_finalize``, not on the bounded poll — with
        the poll inflated to 5s, returning promptly proves it."""
        monkeypatch.setattr(frontdoor_module, "_BLOCK_POLL_SECONDS", 5.0)
        midas = make_midas(seed=37)
        gateway = midas.gateway
        rng = RngStream(20, "wake")
        release = threading.Event()
        entered = threading.Event()
        original = gateway.observe

        def stalling_observe(request, **kwargs):
            entered.set()
            release.wait(timeout=10)
            return original(request, **kwargs)

        gateway.observe = stalling_observe
        gateway.ingest(observe_request(rng))
        flusher = threading.Thread(target=gateway.drain, daemon=True)
        flusher.start()
        assert entered.wait(timeout=10)

        woke_at = {}

        def waiter():
            gateway.drain()  # waits out the in-flight flush
            woke_at["t"] = time.perf_counter()

        watcher = threading.Thread(target=waiter, daemon=True)
        watcher.start()
        time.sleep(0.2)  # let the waiter park inside wait_for
        released_at = time.perf_counter()
        release.set()
        watcher.join(timeout=10)
        flusher.join(timeout=10)
        gateway.observe = original
        assert "t" in woke_at, "drain waiter never woke"
        latency = woke_at["t"] - released_at
        # Bounded by the released observe's own execution time — far
        # below the patched 5s poll (and the old 50ms quantum).
        assert latency < 2.0, f"waiter woke by poll, not notify ({latency:.3f}s)"
        gateway.close()


class TestWatermarks:
    def test_size_watermark_auto_flushes(self):
        midas = make_midas(
            seed=41,
            config=FederationConfig(
                max_window=24, ingest_queue_depth=16, ingest_batch_max=3
            ),
        )
        gateway = midas.gateway
        rng = RngStream(11, "size")
        tickets = [gateway.ingest(observe_request(rng)) for _ in range(3)]
        # The third admission tripped the watermark on the caller's
        # thread; no drain needed.
        assert all(ticket.done for ticket in tickets)
        stats = gateway.ingest_stats()
        assert stats.size_flushes == 1 and stats.pending == 0
        assert stats.max_batch == 3
        gateway.close()

    def test_interval_watermark_flushes_stale_queue(self, monkeypatch):
        midas = make_midas(
            seed=42,
            config=FederationConfig(
                max_window=24,
                ingest_queue_depth=16,
                ingest_batch_max=8,
                ingest_flush_ms=50.0,
            ),
        )
        gateway = midas.gateway
        rng = RngStream(12, "interval")
        clock = {"now": 1000.0}
        monkeypatch.setattr(frontdoor_module, "time_fn", lambda: clock["now"])
        first = gateway.ingest(observe_request(rng))
        clock["now"] += 0.2  # 200ms later, past the 50ms staleness bound
        second = gateway.ingest(observe_request(rng))
        assert first.done and second.done
        assert gateway.ingest_stats().interval_flushes == 1
        gateway.close()

    def test_serving_report_carries_ingest_stats(self):
        midas = make_midas(seed=43, runs=4)
        gateway = midas.gateway
        assert gateway.serving_report().ingest is None  # door unused
        rng = RngStream(13, "report")
        gateway.ingest(observe_request(rng))
        gateway.drain()
        report = gateway.serving_report()
        assert isinstance(report.ingest, IngestStats)
        assert report.ingest.admitted == 1
        assert "admitted=1" in report.ingest.describe()
        gateway.close()


class TestShardedBatching:
    def sharded_midas(self, seed: int = 51) -> MidasSystem:
        config = FederationConfig(
            serving_backend="sharded",
            shard_workers=2,
            max_window=24,
        )
        midas = MidasSystem(patient_count=300, seed=seed, config=config)
        for key in (KEY, KEY2):
            midas.warm_up(key, runs=10)
        return midas

    def test_flush_issues_at_most_one_fit_many_per_shard(self):
        midas = self.sharded_midas()
        gateway = midas.gateway
        serving = gateway.engine.serving
        rng = RngStream(14, "rpc")
        for key in (KEY, KEY2):
            gateway.ingest(submit_request(rng, key=key))
        before = serving.rpc_counts()
        batch = gateway.drain()
        after = serving.rpc_counts()
        assert batch.failed == 0 and batch.fit_rounds == 1
        fit_many = after.get("fit_many", 0) - before.get("fit_many", 0)
        busy_shards = len({serving.shard_of(KEY), serving.shard_of(KEY2)})
        assert 1 <= fit_many <= busy_shards
        # The batched path never falls back to per-template fit RPCs.
        assert after.get("fit", 0) == before.get("fit", 0)
        gateway.close()

    def test_backlog_reported_per_shard(self):
        midas = self.sharded_midas(seed=52)
        gateway = midas.gateway
        serving = gateway.engine.serving
        gateway.refresh()  # sync the replicas
        assert sum(s["backlog"] for s in serving.shard_stats()) == 0
        rng = RngStream(15, "backlog")
        gateway.observe(observe_request(rng))
        stats = serving.shard_stats()
        assert sum(s["backlog"] for s in stats) == 1
        assert stats[serving.shard_of(KEY)]["backlog"] == 1
        gateway.close()

    def test_protocol_version_mismatch_fails_loudly(self):
        from repro.serving.sharded import ShardedServingError

        midas = self.sharded_midas(seed=53)
        serving = midas.gateway.engine.serving
        shard = serving._shards[0]
        with shard.lock:
            with pytest.raises(ShardedServingError, match="protocol mismatch"):
                serving._call_locked(shard, {"op": "ping", "v": 1})
            # The worker survives a refused message and keeps serving.
            assert serving._call_locked(shard, {"op": "ping"}) == "pong"
        midas.gateway.close()


class TestOracleEquivalence:
    """Deterministic mixed-traffic equivalence (the randomized property
    suite extends ``tests/test_sharded_properties.py``)."""

    def traffic(self):
        rng = RngStream(16, "oracle")
        items = []
        for key in (KEY, KEY2):
            for _ in range(8):
                items.append(("observe", observe_request(rng, key=key)))
        items.append(("submit", submit_request(rng)))
        items.append(("submit", submit_request(rng, key=KEY2)))
        items.append(("observe", observe_request(rng)))
        # Back-to-back submits on one template force segment cuts.
        items.append(("submit", submit_request(rng)))
        items.append(("submit", submit_request(rng)))
        return items

    def config(self, backend: str) -> FederationConfig:
        return FederationConfig(
            serving_backend=backend, shard_workers=2, max_window=24
        )

    @pytest.mark.parametrize("backend", ["threaded", "sharded"])
    def test_ingest_drain_matches_sequential_replay(self, backend):
        traffic = self.traffic()

        sequential = MidasSystem(
            patient_count=300, seed=61, config=self.config(backend)
        )
        seq_reports = [
            sequential.gateway.submit(request)
            if kind == "submit"
            else sequential.gateway.observe(request)
            for kind, request in traffic
        ]
        seq_stats = sequential.gateway.serving_stats
        sequential.gateway.close()

        batched = MidasSystem(
            patient_count=300, seed=61, config=self.config(backend)
        )
        for _kind, request in traffic:
            batched.gateway.ingest(request)
        batch = batched.gateway.drain()
        bat_stats = batched.gateway.serving_stats
        batched.gateway.close()

        assert batch.failed == 0
        assert len(seq_reports) == len(batch.reports)
        for position, (left, right) in enumerate(zip(seq_reports, batch.reports)):
            assert_report_pair_equal(left, right, position)
        # Fit counts are part of the oracle contract.
        assert seq_stats.fits == bat_stats.fits
        assert seq_stats.observations == bat_stats.observations
        assert batch.fit_rounds >= 1


class TestInfrastructureFailure:
    def test_flush_abort_resolves_all_tickets(self):
        midas = make_midas(seed=71)
        gateway = midas.gateway
        rng = RngStream(17, "abort")
        tickets = [gateway.ingest(observe_request(rng)) for _ in range(3)]

        def exploding_observe(request, **kwargs):
            raise RuntimeError("engine room on fire")

        original = gateway.observe
        gateway.observe = exploding_observe
        with pytest.raises(RuntimeError, match="on fire"):
            gateway.drain()
        gateway.observe = original
        # No waiter hangs: every ticket resolved with the typed wrapper.
        for ticket in tickets:
            assert ticket.done
            assert isinstance(ticket.error, IngestAbortedError)
            assert ticket.error.phase == "ingest"
            assert isinstance(ticket.error.__cause__, RuntimeError)
        # The door recovered: the next cycle works.
        ticket = gateway.ingest(observe_request(rng))
        batch = gateway.drain()
        assert batch.failed == 0 and ticket.done
        gateway.close()

    def test_aborted_flush_still_syncs_durability(self, tmp_path):
        """Kill-mid-flush chaos: records journaled by the partial flush
        must reach stable storage even though the flush aborted — under
        ``fsync="batch"`` only the flush-boundary sync fsyncs, so the
        abort path has to hit it too."""
        def build_config():
            return FederationConfig(
                max_window=24,
                durability=DurabilityConfig(dir=tmp_path, fsync="batch"),
            )

        midas = MidasSystem(patient_count=300, seed=73, config=build_config())
        gateway = midas.gateway
        rng = RngStream(19, "abort-sync")
        for _ in range(3):
            gateway.ingest(observe_request(rng))
        calls = {"n": 0}
        original = gateway.observe

        def kill_second_observe(request, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("shard pool lost power")
            return original(request, **kwargs)

        gateway.observe = kill_second_observe
        synced = {"n": 0}
        manager = gateway._durability
        manager_sync = manager.sync

        def counting_sync():
            synced["n"] += 1
            return manager_sync()

        manager.sync = counting_sync
        with pytest.raises(RuntimeError, match="lost power"):
            gateway.drain()
        manager.sync = manager_sync
        gateway.observe = original
        assert synced["n"] >= 1, "aborted flush skipped the durability sync"
        # Crash simulation: abandon the gateway without close().  The
        # acknowledged pre-abort row must already be recoverable.
        revived = MidasSystem(patient_count=300, seed=73, config=build_config())
        report = revived.gateway.recover()
        assert report.recovered and report.rows == 1
        assert revived.gateway.engine.history(KEY).size == 1
        revived.gateway.close()
        gateway.close()

    def test_estimation_error_wrapped_into_taxonomy(self):
        midas = make_midas(seed=72)
        gateway = midas.gateway
        rng = RngStream(18, "wrap")
        gateway.ingest(observe_request(rng))

        def raising_observe(request, **kwargs):
            raise EstimationError("backend hiccup")

        original = gateway.observe
        gateway.observe = raising_observe
        batch = gateway.drain()
        gateway.observe = original
        assert batch.failed == 1
        error = batch.errors[0]
        assert isinstance(error, FederationError) and error.phase == "ingest"
        assert isinstance(error.__cause__, EstimationError)
        gateway.close()
