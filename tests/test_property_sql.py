"""Property-based tests: SQL round-trips and executor invariants.

Hypothesis generates random (bounded) expressions and predicates; the
properties assert structural round-trips through ``Expr.sql()`` +
re-parsing, and classic relational-algebra equivalences on the executor
(filter decomposition, join commutativity up to column order, distinct
idempotence).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans import Catalog, execute_sql
from repro.relational import Column, DataType, Schema, Table
from repro.relational.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sql import parse_select

# ---------------------------------------------------------------------------
# Expression generators (over columns a, b: integers; s: string)
# ---------------------------------------------------------------------------

int_column = st.sampled_from([ColumnRef("a"), ColumnRef("b")])
int_literal = st.integers(min_value=-50, max_value=50).map(Literal)


def int_expr(depth: int = 2) -> st.SearchStrategy[Expr]:
    base = st.one_of(int_column, int_literal)
    if depth == 0:
        return base
    sub = int_expr(depth - 1)
    return st.one_of(
        base,
        st.builds(BinaryOp, st.sampled_from(["+", "-", "*"]), sub, sub),
    )


def predicate(depth: int = 2) -> st.SearchStrategy[Expr]:
    comparison = st.builds(
        BinaryOp, st.sampled_from(["=", "<>", "<", "<=", ">", ">="]), int_expr(1), int_expr(1)
    )
    like = st.builds(
        Like,
        st.just(ColumnRef("s")),
        st.text(alphabet="xy%_", min_size=1, max_size=4),
        st.booleans(),
    )
    between = st.builds(Between, int_column, int_literal, int_literal, st.booleans())
    in_list = st.builds(
        InList,
        int_column,
        st.lists(int_literal, min_size=1, max_size=3).map(tuple),
        st.booleans(),
    )
    is_null = st.builds(IsNull, int_column, st.booleans())
    base = st.one_of(comparison, like, between, in_list, is_null)
    if depth == 0:
        return base
    sub = predicate(depth - 1)
    return st.one_of(
        base,
        st.builds(BinaryOp, st.sampled_from(["AND", "OR"]), sub, sub),
        st.builds(UnaryOp, st.just("NOT"), sub),
    )


def make_table() -> Table:
    schema = Schema(
        [
            Column("a", DataType.INTEGER),
            Column("b", DataType.INTEGER),
            Column("s", DataType.STRING),
        ]
    )
    rows = []
    values = [-7, -1, 0, 1, 2, 5, 13, None]
    strings = ["", "x", "xy", "yx", "xxy", None]
    for i, a in enumerate(values):
        rows.append([a, values[(i + 3) % len(values)], strings[i % len(strings)]])
    return Table.from_rows("t", schema, rows)


CATALOG = Catalog([make_table()])


class TestSqlRoundTrip:
    @given(predicate())
    @settings(max_examples=120, deadline=None)
    def test_predicate_survives_sql_round_trip(self, expr):
        """parse(expr.sql()) produces a semantically identical WHERE."""
        sql = f"select a from t where {expr.sql()}"
        statement = parse_select(sql)
        # Execute both: original (via its SQL) twice must agree; and the
        # re-rendered SQL of the parsed tree must agree with the first.
        first = execute_sql(sql, CATALOG).sorted_rows()
        re_rendered = f"select a from t where {statement.where.sql()}"
        second = execute_sql(re_rendered, CATALOG).sorted_rows()
        assert first == second

    @given(int_expr())
    @settings(max_examples=80, deadline=None)
    def test_projection_round_trip(self, expr):
        sql = f"select {expr.sql()} as v from t"
        first = execute_sql(sql, CATALOG).sorted_rows()
        statement = parse_select(sql)
        item_sql = statement.items[0].expr.sql()
        second = execute_sql(f"select {item_sql} as v from t", CATALOG).sorted_rows()
        assert first == second


class TestExecutorAlgebraicLaws:
    @given(predicate(1), predicate(1))
    @settings(max_examples=60, deadline=None)
    def test_conjunctive_filter_decomposition(self, p, q):
        """sigma_{p AND q}(t) == sigma_p(sigma_q(t)) — via nested query."""
        combined = execute_sql(
            f"select a, b from t where ({p.sql()}) and ({q.sql()})", CATALOG
        ).sorted_rows()
        nested = execute_sql(
            f"select a, b from (select * from t where {q.sql()}) as u "
            f"where {p.sql()}",
            CATALOG,
        ).sorted_rows()
        assert combined == nested

    @given(predicate(1))
    @settings(max_examples=60, deadline=None)
    def test_filter_partition(self, p):
        """|sigma_p| + |sigma_NOT p| <= |t| (NULL rows satisfy neither)."""
        total = make_table().num_rows
        kept = execute_sql(f"select a from t where {p.sql()}", CATALOG).num_rows
        dropped = execute_sql(
            f"select a from t where not ({p.sql()})", CATALOG
        ).num_rows
        assert kept + dropped <= total

    @given(predicate(1))
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent(self, p):
        once = execute_sql(
            f"select distinct a from t where {p.sql()}", CATALOG
        ).sorted_rows()
        twice = execute_sql(
            f"select distinct a from (select distinct a from t where {p.sql()}) as u",
            CATALOG,
        ).sorted_rows()
        assert once == twice

    def test_join_commutative_up_to_column_order(self):
        left = execute_sql(
            "select t1.a, t2.b from t t1 join t t2 on t1.a = t2.a", CATALOG
        ).sorted_rows()
        right = execute_sql(
            "select t1.a, t2.b from t t2 join t t1 on t2.a = t1.a", CATALOG
        ).sorted_rows()
        assert left == right

    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_limit_bounds_cardinality(self, n):
        result = execute_sql(f"select a from t limit {n}", CATALOG)
        assert result.num_rows == min(n, make_table().num_rows)

    def test_union_of_complement_with_null_bucket_partitions(self):
        """sigma_p + sigma_!p + sigma_{p IS NULL-ish} covers t exactly."""
        p = "a > 0"
        kept = execute_sql(f"select a from t where {p}", CATALOG).num_rows
        dropped = execute_sql(f"select a from t where not ({p})", CATALOG).num_rows
        nulls = execute_sql("select a from t where a is null", CATALOG).num_rows
        assert kept + dropped + nulls == make_table().num_rows
