"""Tests for the from-scratch learners: OLS, trees, bagging, MLP, k-NN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.ml import (
    BaggingRegressor,
    Dataset,
    KNNRegressor,
    MLPRegressor,
    MultipleLinearRegression,
    RegressionTree,
    minimum_observations,
)

#: The paper's Table 2 dataset, digitised verbatim (cost, x1, x2).
PAPER_TABLE2_DATA = [
    (20.640, 0.4916, 0.2977),
    (15.557, 0.6313, 0.0482),
    (20.971, 0.9481, 0.8232),
    (24.878, 0.4855, 2.7056),
    (23.274, 0.0125, 2.7268),
    (30.216, 0.9029, 2.6456),
    (29.978, 0.7233, 3.0640),
    (31.702, 0.8749, 4.2847),
    (20.860, 0.3354, 2.1082),
    (32.836, 0.8521, 4.8217),
]
PAPER_TABLE2_R2 = {4: 0.7571, 5: 0.7705, 6: 0.8371, 7: 0.8788, 8: 0.8876, 9: 0.8751, 10: 0.8945}


def linear_data(n=40, noise=0.0, seed=3):
    rng = RngStream(seed, "lineardata")
    X = rng.uniform(0, 10, size=(n, 2))
    y = 3.0 + 2.0 * X[:, 0] - 1.5 * X[:, 1]
    if noise:
        y = y + rng.normal(0, noise, size=n)
    return X, y


class TestMinimumObservations:
    def test_is_l_plus_2(self):
        assert minimum_observations(4) == 6
        assert minimum_observations(2) == 4


class TestOLS:
    def test_recovers_exact_coefficients(self):
        X, y = linear_data(noise=0.0)
        model = MultipleLinearRegression().fit(X, y)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)
        assert model.slopes_[0] == pytest.approx(2.0, abs=1e-8)
        assert model.slopes_[1] == pytest.approx(-1.5, abs=1e-8)
        assert model.r_squared_ == pytest.approx(1.0)

    def test_reproduces_paper_table2_r2_column(self):
        """The R^2 column of the paper's Table 2, to 3 decimal places."""
        X = np.array([[r[1], r[2]] for r in PAPER_TABLE2_DATA])
        y = np.array([r[0] for r in PAPER_TABLE2_DATA])
        for m, expected in PAPER_TABLE2_R2.items():
            model = MultipleLinearRegression().fit(X[:m], y[:m])
            assert model.r_squared_ == pytest.approx(expected, abs=2e-4), m

    def test_residuals_orthogonal_to_design(self):
        """OLS normal equations: X^T (y - y_hat) = 0."""
        X, y = linear_data(noise=2.0)
        model = MultipleLinearRegression().fit(X, y)
        residuals = y - model.predict(X)
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        assert np.allclose(design.T @ residuals, 0.0, atol=1e-6)

    def test_singular_design_uses_pinv(self):
        X = np.array([[1.0, 2.0], [1.0, 2.0], [1.0, 2.0], [1.0, 2.0]])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        model = MultipleLinearRegression().fit(X, y)  # must not raise
        assert np.isfinite(model.predict(np.array([1.0, 2.0])))

    def test_predict_before_fit(self):
        with pytest.raises(EstimationError):
            MultipleLinearRegression().predict([1.0, 2.0])

    def test_wrong_dimension_rejected(self):
        X, y = linear_data()
        model = MultipleLinearRegression().fit(X, y)
        with pytest.raises(EstimationError):
            model.predict([1.0, 2.0, 3.0])

    def test_summary_contains_r2(self):
        X, y = linear_data()
        model = MultipleLinearRegression().fit(X, y)
        assert "R^2" in model.summary(("size_a", "size_b"))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_training_r2_in_unit_interval(self, seed):
        rng = RngStream(seed, "prop")
        X = rng.uniform(0, 1, size=(8, 2))
        y = rng.uniform(0, 1, size=8)
        model = MultipleLinearRegression().fit(X, y)
        assert -1e-9 <= model.r_squared_ <= 1.0 + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_more_features_never_lower_training_r2(self, seed):
        """Adding a column cannot reduce the OLS training fit."""
        rng = RngStream(seed, "prop2")
        X = rng.uniform(0, 1, size=(12, 3))
        y = rng.uniform(0, 1, size=12)
        small = MultipleLinearRegression().fit(X[:, :2], y)
        large = MultipleLinearRegression().fit(X, y)
        assert large.r_squared_ >= small.r_squared_ - 1e-9


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.array([[i] for i in range(20)], dtype=float)
        y = np.array([0.0] * 10 + [10.0] * 10)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.predict(np.array([3.0])) == pytest.approx(0.0)
        assert tree.predict(np.array([15.0])) == pytest.approx(10.0)

    def test_depth_zero_is_mean(self):
        X, y = linear_data(n=10)
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.predict(X[0]) == pytest.approx(y.mean())

    def test_respects_max_depth(self):
        X, y = linear_data(n=60, noise=1.0)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth() <= 3

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        tree = RegressionTree().fit(X, np.ones(10))
        assert tree.depth() == 0

    def test_deterministic(self):
        X, y = linear_data(n=30, noise=1.0)
        a = RegressionTree().fit(X, y).predict(X)
        b = RegressionTree().fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestBagging:
    def test_reduces_tree_variance_on_noise(self):
        X, y = linear_data(n=60, noise=4.0, seed=5)
        X_test, y_test = linear_data(n=60, noise=0.0, seed=6)
        tree_error = np.mean(
            (RegressionTree(max_depth=6, min_samples_leaf=1).fit(X, y).predict(X_test) - y_test) ** 2
        )
        bag_error = np.mean(
            (BaggingRegressor(n_estimators=25).fit(X, y).predict(X_test) - y_test) ** 2
        )
        assert bag_error < tree_error

    def test_deterministic_under_seed(self):
        X, y = linear_data(n=30, noise=2.0)
        a = BaggingRegressor(seed=9).fit(X, y).predict(X)
        b = BaggingRegressor(seed=9).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_member_count(self):
        X, y = linear_data(n=20)
        bag = BaggingRegressor(n_estimators=7).fit(X, y)
        assert len(bag.members_) == 7


class TestMLP:
    def test_learns_linear_function(self):
        X, y = linear_data(n=80, noise=0.0)
        model = MLPRegressor(hidden=(16,), epochs=400, seed=1).fit(X, y)
        predictions = model.predict(X)
        relative = np.abs(predictions - y) / (np.abs(y) + 1.0)
        assert float(np.mean(relative)) < 0.1

    def test_deterministic_under_seed(self):
        X, y = linear_data(n=30, noise=1.0)
        a = MLPRegressor(epochs=50, seed=2).fit(X, y).predict(X)
        b = MLPRegressor(epochs=50, seed=2).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_handles_constant_feature(self):
        X = np.hstack([np.ones((20, 1)), np.arange(20, dtype=float).reshape(-1, 1)])
        y = X[:, 1] * 2
        model = MLPRegressor(epochs=100).fit(X, y)  # std=0 column must not crash
        assert np.all(np.isfinite(model.predict(X)))

    def test_two_hidden_layers(self):
        X, y = linear_data(n=40)
        model = MLPRegressor(hidden=(8, 8), epochs=100).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))


class TestKNN:
    def test_exact_match_returns_neighbour_value(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 7.0, 9.0])
        model = KNNRegressor(k=2).fit(X, y)
        assert model.predict(np.array([1.0])) == pytest.approx(7.0)

    def test_interpolates_between_neighbours(self):
        X = np.array([[0.0], [2.0]])
        y = np.array([0.0, 10.0])
        model = KNNRegressor(k=2).fit(X, y)
        assert model.predict(np.array([1.0])) == pytest.approx(5.0)

    def test_k_larger_than_data(self):
        X = np.array([[0.0], [1.0]])
        model = KNNRegressor(k=10).fit(X, np.array([1.0, 3.0]))
        assert np.isfinite(model.predict(np.array([0.5])))


class TestDataset:
    def test_window_takes_most_recent(self):
        data = Dataset(np.arange(10, dtype=float).reshape(-1, 1), np.arange(10, dtype=float), ("x",))
        window = data.last_window(3)
        assert list(window.targets) == [7.0, 8.0, 9.0]

    def test_window_larger_than_data(self):
        data = Dataset(np.ones((2, 1)), np.ones(2), ("x",))
        assert data.last_window(10).size == 2

    def test_split_at(self):
        data = Dataset(np.arange(6, dtype=float).reshape(-1, 1), np.arange(6, dtype=float), ("x",))
        past, future = data.split_at(4)
        assert past.size == 4 and future.size == 2
        assert list(future.targets) == [4.0, 5.0]

    def test_append_preserves_order(self):
        data = Dataset(np.ones((1, 2)), np.array([1.0]), ("a", "b"))
        grown = data.append(np.array([2.0, 2.0]), 5.0)
        assert grown.size == 2
        assert grown.targets[-1] == 5.0

    def test_shape_validation(self):
        with pytest.raises(EstimationError):
            Dataset(np.ones((3, 2)), np.ones(2), ("a", "b"))
        with pytest.raises(EstimationError):
            Dataset(np.ones((3, 2)), np.ones(3), ("a",))

    def test_from_rows(self):
        data = Dataset.from_rows([((1.0, 2.0), 3.0), ((4.0, 5.0), 6.0)], ("a", "b"))
        assert data.size == 2 and data.dimension == 2
