"""ShardedEstimationService: functional semantics + federation wiring.

Covers the serving contract (registration, snapshots, refresh, stats),
the worker lifecycle (crash detection, respawn replay, graceful
shutdown, hung-worker timeout), the serving-backend registry, and the
gateway integration (``FederationConfig(serving_backend="sharded")``
drives the full Figure 1 pipeline to the same decisions as the
in-process service).  Deep randomized equivalence lives in
``tests/test_sharded_properties.py``.
"""

import numpy as np
import pytest

from repro.common.errors import EstimationError, ValidationError
from repro.serving import EstimationService, ShardedEstimationService, shard_of
from repro.serving.sharded import ShardedServingError
from repro.serving.worker import dream_strategy

from tests.helpers import (
    FEATURES,
    MAX_WINDOW,
    METRICS,
    R2,
    observation_stream,
    sharded_factory as factory,
)


def _exploding_strategy():
    """Picklable factory whose worker-side construction always fails."""
    raise RuntimeError("boom: strategy not constructible in the worker")


@pytest.fixture
def sharded():
    service = ShardedEstimationService(factory, workers=2)
    yield service
    service.close()


def feed(service, key: str, ticks: int, seed: int = 17) -> None:
    for tick, features, costs in observation_stream(key, ticks, seed):
        service.record(key, tick, features, costs)


class TestShardedFunctional:
    def test_register_and_duplicate_rejected(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            sharded.register("q2")  # neither history nor feature_names
        with pytest.raises(EstimationError, match="no template"):
            sharded.model("missing")

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=0)
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=2, max_workers=0)
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=2, rpc_timeout=0.0)

    def test_shard_assignment_is_stable_and_total(self, sharded):
        keys = [f"q{i}" for i in range(16)]
        assigned = {key: sharded.shard_of(key) for key in keys}
        assert assigned == {key: shard_of(key, 2) for key in keys}
        assert set(assigned.values()) <= {0, 1}
        # CRC32 spreads 16 keys over both shards (not all on one).
        assert len(set(assigned.values())) == 2

    def test_snapshot_reused_until_history_moves(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        first = sharded.model("q1")
        assert sharded.model("q1") is first  # same version -> same snapshot
        tick, features, costs = observation_stream("q1", 13)[-1]
        sharded.record("q1", tick + 1, features, costs)
        assert sharded.is_stale("q1")
        assert sharded.model("q1") is not first
        stats = sharded.stats
        assert stats.fits == 2 and stats.snapshot_hits == 1

    def test_preexisting_history_rows_are_replayed_on_first_fit(self, sharded):
        from repro.core import ExecutionHistory

        history = ExecutionHistory(FEATURES, METRICS)
        for tick, features, costs in observation_stream("pre", 14):
            history.append(tick, features, costs)
        sharded.register("pre", history)
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("pre", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "pre", 14)
        assert (
            sharded.model("pre").training_size
            == reference.model("pre").training_size
        )

    def test_estimate_batch_matches_per_row(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 15)
        matrix = np.array([[30.0, 2.0], [75.0, 8.0], [110.0, 4.0]])
        batched = sharded.estimate_batch("q1", matrix)
        for i, row in enumerate(matrix):
            single = sharded.estimate("q1", row)
            for metric in METRICS:
                assert batched[metric][i] == pytest.approx(single[metric], rel=1e-12)

    def test_refresh_parallel_and_sequential_agree(self, sharded):
        keys = [f"q{i}" for i in range(5)]
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(sharded, key, 12, seed=3)
        parallel = sharded.refresh(parallel=True)
        assert sorted(parallel) == keys
        # Re-refresh sequentially: everything fresh -> same snapshots.
        sequential = sharded.refresh(parallel=False)
        for key in keys:
            assert sequential[key] is parallel[key]

    def test_failed_fit_keeps_replica_in_sync(self, sharded):
        """Regression (found by hypothesis): a fit on a too-short
        history fails AFTER the delta rows landed on the replica; the
        parent must not re-send them with the next fit."""
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 3)  # below the minimum window (L + 2 = 4)
        with pytest.raises(EstimationError):
            sharded.model("q1")
        tick, features, costs = observation_stream("q1", 4)[-1]
        sharded.record("q1", tick, features, costs)
        fitted = sharded.model("q1")  # must not double-append rows 0..2
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "q1", 4)
        assert fitted.training_size == reference.model("q1").training_size

    def test_unfittable_template_does_not_poison_the_burst(self, sharded):
        sharded.register("ready", feature_names=FEATURES, metrics=METRICS)
        sharded.register("empty", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "ready", 12)
        models = sharded.refresh()
        assert "ready" in models and "empty" not in models

    def test_stats_aggregate_engine_caches_across_workers(self, sharded):
        keys = [f"q{i}" for i in range(6)]
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(sharded, key, 12, seed=5)
        sharded.refresh()
        sharded.refresh()  # all fresh: no new fits
        stats = sharded.stats
        assert stats.templates == 6
        assert stats.fits == 6
        assert stats.observations == 6 * 12
        assert stats.bursts == 2
        # One engine miss per template, summed across both workers.
        assert stats.engine_cache is not None
        assert stats.engine_cache.misses == 6
        per_shard = sharded.shard_stats()
        assert sum(s["templates"] for s in per_shard) == 6
        assert sum(s["fits"] for s in per_shard) == 6
        assert len({s["pid"] for s in per_shard}) == 2

    def test_template_lock_excludes_fits(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        with sharded.template_lock("q1"):
            # Re-entrant for the owning thread; fits still succeed here.
            assert sharded.model("q1") is not None


class TestWorkerLifecycle:
    def test_crash_is_detected_respawned_and_replayed(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 14)
        before = sharded.model("q1")
        pids_before = sharded.worker_pids()
        victim = sharded.shard_of("q1")
        sharded.inject_worker_crash(victim)
        # Stale the template so the next model() must hit the worker.
        tick, features, costs = observation_stream("q1", 15)[-1]
        sharded.record("q1", tick + 1, features, costs)
        after = sharded.model("q1")
        assert sharded.respawns == 1
        assert sharded.worker_pids()[victim] != pids_before[victim]
        # The respawned replica refit deterministically from the replay.
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "q1", 14)
        reference.record("q1", tick + 1, features, costs)
        expected = reference.model("q1")
        assert after.training_size == expected.training_size
        probe = np.array([[40.0, 3.0], [90.0, 6.0]])
        got, want = after.predict_batch(probe), expected.predict_batch(probe)
        for metric in METRICS:
            assert np.array_equal(got[metric], want[metric])
        assert before is not after

    def test_rpc_timeout_counts_as_crash_and_respawns(self):
        # A 10s timeout must never fire on a healthy fit; this asserts
        # the guard is wired, not that it trips.
        service = ShardedEstimationService(factory, workers=1, rpc_timeout=10.0)
        try:
            service.register("q1", feature_names=FEATURES, metrics=METRICS)
            feed(service, "q1", 12)
            assert service.model("q1") is not None
            assert service.respawns == 0
        finally:
            service.close()

    def test_rpc_timeout_configurable_through_the_gateway(self):
        from repro.federation import FederationConfig, create_serving

        config = FederationConfig(
            serving_backend="sharded", shard_workers=1, shard_rpc_timeout=30.0
        )
        service = create_serving(config, modelling=None)
        try:
            assert service.rpc_timeout == 30.0
        finally:
            service.close()

    def test_stats_are_read_only_and_never_heal_a_crash(self, sharded):
        """Introspection must not respawn workers: a monitoring poll on
        a crashed shard reports the placeholder row; healing happens on
        the next serving RPC."""
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        sharded.model("q1")
        victim = sharded.shard_of("q1")
        sharded.inject_worker_crash(victim)
        per_shard = sharded.shard_stats()
        assert per_shard[victim]["pid"] is None  # placeholder, no respawn
        assert sharded.respawns == 0
        assert sharded.stats.templates == 1  # aggregate stats still work
        tick, features, costs = observation_stream("q1", 13)[-1]
        sharded.record("q1", tick + 1, features, costs)
        assert sharded.model("q1") is not None  # the serving path heals
        assert sharded.respawns == 1

    def test_worker_boot_failure_surfaces_with_root_cause(self):
        """A worker whose strategy factory raises must report WHY at the
        first RPC (an infrastructure ShardedServingError), not die with
        an opaque exit code and a futile crash-respawn loop."""
        service = ShardedEstimationService(_exploding_strategy, workers=1)
        try:
            with pytest.raises(ShardedServingError, match="failed to start"):
                service.register("q1", feature_names=FEATURES, metrics=METRICS)
            assert service.respawns == 0  # a boot failure is not a crash
        finally:
            service.close()

    def test_close_is_graceful_and_idempotent(self):
        service = ShardedEstimationService(factory, workers=2)
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        processes = [shard.process for shard in service._shards]
        service.close()
        service.close()
        assert all(not process.is_alive() for process in processes)
        # Polite shutdown, not terminate: workers exit with code 0.
        assert all(process.exitcode == 0 for process in processes)
        with pytest.raises(ShardedServingError):
            service.register("q2", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(EstimationError):
            service.model("q1")

    def test_context_manager_closes(self):
        with ShardedEstimationService(factory, workers=1) as service:
            service.register("q1", feature_names=FEATURES, metrics=METRICS)
            processes = [shard.process for shard in service._shards]
        assert all(not process.is_alive() for process in processes)


class TestServingBackendRegistry:
    def test_builtins_registered(self):
        from repro.federation import available_serving_backends

        names = available_serving_backends()
        assert "threaded" in names and "sharded" in names

    def test_unknown_backend_rejected_eagerly_with_listing(self):
        from repro.federation import FederationConfig, UnknownServingBackendError

        with pytest.raises(UnknownServingBackendError) as excinfo:
            FederationConfig(serving_backend="no-such-backend")
        assert "threaded" in str(excinfo.value)
        assert excinfo.value.phase == "configure"

    def test_custom_backend_selected_by_config(self):
        from repro.federation import (
            FederationConfig,
            create_serving,
            register_serving_backend,
            unregister_serving_backend,
        )
        from repro.ires.modelling import DreamStrategy, Modelling

        seen = {}

        def backend(config, modelling):
            seen["config"] = config
            service = EstimationService(modelling=modelling)
            seen["service"] = service
            return service

        register_serving_backend("test-recording", backend)
        try:
            config = FederationConfig(serving_backend="test-recording")
            modelling = Modelling(DreamStrategy())
            service = create_serving(config, modelling)
            assert service is seen["service"]
            assert seen["config"] is config
        finally:
            unregister_serving_backend("test-recording")

    def test_duplicate_backend_registration_refused(self):
        from repro.federation import GatewayConfigError, register_serving_backend

        with pytest.raises(GatewayConfigError, match="already registered"):
            register_serving_backend("threaded", lambda config, modelling: None)


class TestGatewayIntegration:
    @staticmethod
    def _midas(serving_backend: str):
        from dataclasses import replace

        from repro.midas import MidasSystem
        from repro.midas.system import DEFAULT_CONFIG

        config = replace(
            DEFAULT_CONFIG, serving_backend=serving_backend, shard_workers=2
        )
        return MidasSystem(patient_count=240, seed=11, config=config)

    def test_sharded_gateway_matches_threaded_decisions(self):
        from repro.federation import SubmitRequest
        from repro.ires.policy import UserPolicy

        key = "medical-demographics"
        reports = {}
        for backend in ("threaded", "sharded"):
            midas = self._midas(backend)
            try:
                midas.warm_up(key, runs=8)
                report = midas.gateway.submit(
                    SubmitRequest(key, {"min_age": 40}, UserPolicy(weights=(0.6, 0.4)))
                )
                reports[backend] = report
            finally:
                midas.gateway.close()
        threaded, sharded = reports["threaded"], reports["sharded"]
        assert sharded.chosen.describe() == threaded.chosen.describe()
        assert sharded.predicted_costs == threaded.predicted_costs
        assert sharded.measured_costs == threaded.measured_costs
        assert sharded.cost_model.training_size == threaded.cost_model.training_size

    def test_serving_report_envelope(self):
        midas = self._midas("sharded")
        try:
            report = midas.gateway.serving_report()
            assert report.backend == "sharded"
            assert report.workers == 2
            assert report.respawns == 0
            assert report.stats.templates == len(midas.gateway.templates())
            assert "sharded (2 worker processes)" in report.describe()
        finally:
            midas.gateway.close()

    def test_gateway_close_drains_workers_and_context_manager(self):
        midas = self._midas("sharded")
        serving = midas.gateway.engine.serving
        with midas.gateway as gateway:
            assert gateway.serving_report().workers == 2
        assert all(not shard.process.is_alive() for shard in serving._shards)

    def test_strategy_instance_rejected_with_sharded_backend(self):
        from dataclasses import replace

        from repro.federation import GatewayConfigError
        from repro.ires.modelling import DreamStrategy
        from repro.midas import MidasSystem
        from repro.midas.system import DEFAULT_CONFIG

        config = replace(DEFAULT_CONFIG, serving_backend="sharded")
        with pytest.raises(GatewayConfigError, match="threaded"):
            MidasSystem(patient_count=240, config=config, strategy=DreamStrategy())


class TestLoadAccounting:
    """ISSUE 7 satellite: ``shard_stats()`` backlog and ``rpc_counts()``
    under partial-failure ``fit_many`` rounds — counters, never timing."""

    def test_backlog_and_rpc_counters_through_a_partial_failure_batch(self):
        with ShardedEstimationService(factory, workers=1) as sharded:
            sharded.register("warm", feature_names=FEATURES, metrics=METRICS)
            sharded.register("short", feature_names=FEATURES, metrics=METRICS)
            feed(sharded, "warm", 12)
            # One row: stale, but below the minimum window (L + 2 = 4).
            tick, features, costs = observation_stream("short", 1)[0]
            sharded.record("short", tick, features, costs)
            row = sharded.shard_stats()[0]
            assert row["backlog"] == 13  # 12 + 1 rows not yet shipped
            assert row["routed"] == 2
            assert row["queue_depth"] == 0  # nothing mid-RPC right now
            before = sharded.rpc_counts()
            result = sharded.refresh_batch()
            after = sharded.rpc_counts()
            # One coalesced fit_many for the whole round, zero fallback
            # per-template fit RPCs.
            assert after.get("fit_many", 0) - before.get("fit_many", 0) == 1
            assert after.get("fit", 0) == before.get("fit", 0)
            assert "warm" in result.models and "short" in result.errors
            # The failed fit still shipped its rows (the replica stays
            # in sync), so the backlog fully drains.
            row = sharded.shard_stats()[0]
            assert row["backlog"] == 0
            assert row["fit_ewma_ms"] is not None and row["fit_ewma_ms"] > 0.0
            # One more observation -> backlog is exactly that one row.
            tick, features, costs = observation_stream("short", 2)[-1]
            sharded.record("short", tick + 1, features, costs)
            assert sharded.shard_stats()[0]["backlog"] == 1

    def test_load_rows_mirror_shard_stats(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        sharded.model("q1")
        home = sharded.shard_of("q1")
        loads = sharded.shard_loads()
        assert [load.index for load in loads] == [0, 1]
        assert loads[home].routed == ("q1",)
        assert loads[home].backlog == 0
        (template,) = sharded.template_loads()
        assert template.key == "q1" and template.shard == home
        assert template.fits == 1
        assert template.fit_seconds_ewma is not None


class TestElasticTopology:
    """ISSUE 7 tentpole: routed placement, live migration, pool resize
    and the rebalance control loop (unit level; equivalence-under-chaos
    lives in ``tests/test_chaos_equivalence.py``)."""

    def test_migrate_flips_route_and_is_invisible_to_the_model(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 14)
        before = sharded.model("q1")
        src = sharded.shard_of("q1")
        dst = 1 - src
        assert sharded.migrate("q1", dst) is True
        assert sharded.shard_of("q1") == dst
        assert sharded.migrations == 1 and sharded.route_version == 1
        # The snapshot survives the move (placement is not staleness)...
        assert sharded.model("q1") is before
        # ...and the next refit on the destination walks the identical
        # window schedule.
        tick, features, costs = observation_stream("q1", 15)[-1]
        sharded.record("q1", tick + 1, features, costs)
        after = sharded.model("q1")
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "q1", 14)
        reference.record("q1", tick + 1, features, costs)
        expected = reference.model("q1")
        assert after.training_size == expected.training_size
        probe = np.array([[40.0, 3.0], [90.0, 6.0]])
        got, want = after.predict_batch(probe), expected.predict_batch(probe)
        for metric in METRICS:
            assert np.array_equal(got[metric], want[metric])

    def test_migrate_to_home_shard_is_a_noop(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        assert sharded.migrate("q1", sharded.shard_of("q1")) is False
        assert sharded.migrations == 0 and sharded.route_version == 0

    def test_shard_of_uses_routes_then_falls_back_to_crc32(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        sharded.migrate("q1", 1 - sharded.shard_of("q1"))
        assert sharded.shard_of("q1") != shard_of("q1", 2)
        # Unregistered keys still resolve to their static placement.
        assert sharded.shard_of("never-registered") == shard_of(
            "never-registered", 2
        )

    def test_resize_grow_keeps_routes_and_adds_cold_shards(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        home = sharded.shard_of("q1")
        assert sharded.resize(4) == 4
        assert sharded.workers == 4 and len(sharded.worker_pids()) == 4
        assert sharded.shard_of("q1") == home  # nothing refits on grow
        assert sharded.route_version == 1
        loads = sharded.shard_loads()
        assert [load.routed for load in loads[2:]] == [(), ()]
        assert sharded.model("q1") is not None

    def test_resize_shrink_migrates_doomed_replicas_and_preserves_models(self):
        keys = [f"q{i}" for i in range(6)]
        with ShardedEstimationService(factory, workers=4) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                feed(sharded, key, 12, seed=7)
            before = sharded.refresh(parallel=False)
            assert sharded.resize(2) == 2
            assert sharded.workers == 2
            # Every tenant landed on its CRC32 placement in the smaller
            # pool — a later restart at width 2 agrees with the live
            # shrink.
            for key in keys:
                assert sharded.shard_of(key) == shard_of(key, 2)
            # Models survive: nothing was stale, so nothing refits.
            after = sharded.refresh(parallel=False)
            for key in keys:
                assert after[key] is before[key]

    def test_rebalance_moves_the_hot_template_off_the_hot_shard(self):
        from repro.serving import RebalanceConfig, RebalancePolicy

        with ShardedEstimationService(factory, workers=2) as sharded:
            # Colocate three tenants on one shard by their CRC32 homes.
            colocated = [
                key for key in (f"q{i}" for i in range(64))
                if shard_of(key, 2) == 0
            ][:3]
            for key in colocated:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                feed(sharded, key, 12, seed=9)
                sharded.model(key)  # fits + wall-time EWMAs = heat
            policy = RebalancePolicy(RebalanceConfig(max_moves=2))
            outcome = sharded.rebalance(policy)
            assert outcome.moves, outcome.describe()
            assert all(move.src == 0 and move.dst == 1 for move in outcome.moves)
            assert sharded.migrations == len(outcome.moves)
            moved = {move.key for move in outcome.moves}
            for key in moved:
                assert sharded.shard_of(key) == 1
            # The move is bitwise invisible: fresh models still agree.
            reference = EstimationService(
                strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
            )
            for key in colocated:
                reference.register(key, feature_names=FEATURES, metrics=METRICS)
                feed(reference, key, 12, seed=9)
                assert (
                    sharded.model(key).training_size
                    == reference.model(key).training_size
                )

    def test_rebalance_grows_the_pool_under_backlog_pressure(self):
        from repro.serving import RebalanceConfig, RebalancePolicy

        with ShardedEstimationService(factory, workers=1) as sharded:
            sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
            feed(sharded, "q1", 12)  # 12 pending rows, never fitted
            policy = RebalancePolicy(
                RebalanceConfig(grow_backlog=8, max_workers=2)
            )
            outcome = sharded.rebalance(policy)
            assert outcome.grew_to == 2
            assert sharded.workers == 2
            assert "backlog" in outcome.reason

    def test_rebalance_shrinks_idle_trailing_shards(self):
        from repro.serving import RebalanceConfig, RebalancePolicy

        with ShardedEstimationService(factory, workers=3) as sharded:
            key = next(
                key for key in (f"q{i}" for i in range(64))
                if shard_of(key, 3) == 0
            )
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(sharded, key, 12)
            sharded.model(key)
            policy = RebalancePolicy(RebalanceConfig(min_workers=1))
            outcome = sharded.rebalance(policy)
            assert outcome.shrank_to == 1
            assert sharded.workers == 1
            assert sharded.model(key) is not None


class TestRebalancePolicyUnit:
    """``RebalancePolicy.plan`` is pure — every decision rule is
    checkable on hand-built load snapshots, no processes involved."""

    @staticmethod
    def shard_row(index, routed, backlog=0):
        from repro.serving import ShardLoad

        return ShardLoad(
            index=index,
            routed=tuple(routed),
            backlog=backlog,
            queue_depth=0,
            fit_seconds_ewma=None,
        )

    @staticmethod
    def template_row(key, shard, fits=1, ewma=1e-3, backlog=0):
        from repro.serving import TemplateLoad

        return TemplateLoad(
            key=key, shard=shard, fits=fits, fit_seconds_ewma=ewma, backlog=backlog
        )

    def test_balanced_pool_is_a_noop(self):
        from repro.serving import RebalancePolicy

        policy = RebalancePolicy()
        plan = policy.plan(
            [self.shard_row(0, ["a"]), self.shard_row(1, ["b"])],
            [self.template_row("a", 0), self.template_row("b", 1)],
        )
        assert plan.is_noop and plan.reason == "balanced"

    def test_hot_shard_sheds_its_hottest_template(self):
        from repro.serving import RebalancePolicy

        policy = RebalancePolicy()
        plan = policy.plan(
            [self.shard_row(0, ["a", "b"]), self.shard_row(1, [])],
            [
                self.template_row("a", 0, fits=10, ewma=2e-3),
                self.template_row("b", 0, fits=10, ewma=1e-3),
            ],
        )
        assert [move.describe() for move in plan.moves] == ["a: shard 0 -> 1"]

    def test_a_lone_template_is_never_moved(self):
        from repro.serving import RebalancePolicy

        policy = RebalancePolicy()
        plan = policy.plan(
            [self.shard_row(0, ["a"]), self.shard_row(1, [])],
            [self.template_row("a", 0, fits=100, ewma=5e-2)],
        )
        # Moving the only template just relocates the hotspot, and the
        # empty trailing shard is dropped instead.
        assert not plan.moves
        assert plan.shrink_to == 1

    def test_stateful_heat_cools_templates_that_stop_fitting(self):
        from repro.serving import RebalancePolicy

        policy = RebalancePolicy()
        shards = [self.shard_row(0, ["a", "b"]), self.shard_row(1, ["c"])]
        hot_then_idle = [
            self.template_row("a", 0, fits=50, ewma=1e-2),
            self.template_row("b", 0, fits=1, ewma=1e-3),
            self.template_row("c", 1, fits=1, ewma=1e-3),
        ]
        policy.plan(shards, hot_then_idle)
        # Same snapshot again: zero fit deltas everywhere, heat halves
        # each cycle (smoothing=0.5) until the plan goes quiet.
        for _ in range(8):
            plan = policy.plan(shards, hot_then_idle)
        assert not plan.moves
        assert policy.cycles == 9

    def test_config_validation_is_eager(self):
        from repro.serving import RebalanceConfig

        with pytest.raises(ValidationError, match="hot_factor"):
            RebalanceConfig(hot_factor=0.5)
        with pytest.raises(ValidationError, match="cold_factor"):
            RebalanceConfig(cold_factor=1.5)
        with pytest.raises(ValidationError, match="max_workers"):
            RebalanceConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValidationError, match="smoothing"):
            RebalanceConfig(smoothing=0.0)
        with pytest.raises(ValidationError, match="cadence"):
            RebalanceConfig(cadence_flushes=0)


class TestTopologyReportEnvelope:
    def _midas(self, **overrides):
        from repro.federation import FederationConfig
        from repro.midas import MidasSystem

        base = dict(serving_backend="sharded", shard_workers=2, max_window=24)
        base.update(overrides)
        return MidasSystem(
            patient_count=240, seed=13, config=FederationConfig(**base)
        )

    def test_topology_report_carries_routes_and_loads(self):
        midas = self._midas()
        try:
            report = midas.gateway.topology_report()
            assert report.backend == "sharded" and report.workers == 2
            assert report.route_version == 0 and report.migrations == 0
            assert len(report.shards) == 2
            routed = sum(len(shard.routed) for shard in report.shards)
            assert routed == len(midas.gateway.templates())
            assert "shard 0" in report.describe()
        finally:
            midas.gateway.close()

    def test_threaded_backend_reports_an_empty_topology(self):
        midas = self._midas(serving_backend="threaded", shard_workers=None)
        try:
            report = midas.gateway.topology_report()
            assert report.workers == 0 and report.shards == ()
            assert "in-process" in report.describe()
        finally:
            midas.gateway.close()

    def test_gateway_rebalance_requires_the_sharded_backend(self):
        from repro.federation import GatewayConfigError

        midas = self._midas(serving_backend="threaded", shard_workers=None)
        try:
            with pytest.raises(GatewayConfigError, match="sharded"):
                midas.gateway.rebalance()
        finally:
            midas.gateway.close()

    def test_rebalance_config_rejected_without_sharded_backend(self):
        from repro.federation import FederationConfig, GatewayConfigError
        from repro.serving import RebalanceConfig

        with pytest.raises(GatewayConfigError, match="sharded"):
            FederationConfig(rebalance=RebalanceConfig())
        with pytest.raises(GatewayConfigError, match="RebalanceConfig"):
            FederationConfig(serving_backend="sharded", rebalance={"max_moves": 1})

    def test_auto_rebalance_runs_on_the_flush_cadence(self):
        from repro.common.rng import RngStream
        from repro.federation import ObserveRequest
        from repro.midas import MEDICAL_QUERIES
        from repro.serving import RebalanceConfig

        midas = self._midas(rebalance=RebalanceConfig(cadence_flushes=2))
        gateway = midas.gateway
        try:
            rng = RngStream(27, "cadence")
            key = "medical-demographics"

            def observe():
                gateway.ingest(
                    ObserveRequest(key, MEDICAL_QUERIES[key].sample_params(rng))
                )
                gateway.drain()

            observe()  # flush 1 of 2: below the cadence, no cycle yet
            assert gateway.topology_report().last_cycle is None
            observe()  # flush 2 of 2: one control cycle runs
            report = gateway.topology_report()
            assert report.last_cycle is not None
            assert report.last_cycle.route_version == report.route_version
        finally:
            gateway.close()
