"""ShardedEstimationService: functional semantics + federation wiring.

Covers the serving contract (registration, snapshots, refresh, stats),
the worker lifecycle (crash detection, respawn replay, graceful
shutdown, hung-worker timeout), the serving-backend registry, and the
gateway integration (``FederationConfig(serving_backend="sharded")``
drives the full Figure 1 pipeline to the same decisions as the
in-process service).  Deep randomized equivalence lives in
``tests/test_sharded_properties.py``.
"""

from functools import partial

import numpy as np
import pytest

from repro.common.errors import EstimationError, ValidationError
from repro.serving import EstimationService, ShardedEstimationService, shard_of
from repro.serving.sharded import ShardedServingError
from repro.serving.worker import dream_strategy

from tests.test_serving import FEATURES, METRICS, observation_stream

R2 = 0.8
MAX_WINDOW = 20

#: Picklable worker strategy matching the threaded suite's DreamStrategy.
factory = partial(
    dream_strategy, r2_required=R2, max_window=MAX_WINDOW, cache_capacity=64
)


def _exploding_strategy():
    """Picklable factory whose worker-side construction always fails."""
    raise RuntimeError("boom: strategy not constructible in the worker")


@pytest.fixture
def sharded():
    service = ShardedEstimationService(factory, workers=2)
    yield service
    service.close()


def feed(service, key: str, ticks: int, seed: int = 17) -> None:
    for tick, features, costs in observation_stream(key, ticks, seed):
        service.record(key, tick, features, costs)


class TestShardedFunctional:
    def test_register_and_duplicate_rejected(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(ValidationError):
            sharded.register("q2")  # neither history nor feature_names
        with pytest.raises(EstimationError, match="no template"):
            sharded.model("missing")

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=0)
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=2, max_workers=0)
        with pytest.raises(ValidationError):
            ShardedEstimationService(factory, workers=2, rpc_timeout=0.0)

    def test_shard_assignment_is_stable_and_total(self, sharded):
        keys = [f"q{i}" for i in range(16)]
        assigned = {key: sharded.shard_of(key) for key in keys}
        assert assigned == {key: shard_of(key, 2) for key in keys}
        assert set(assigned.values()) <= {0, 1}
        # CRC32 spreads 16 keys over both shards (not all on one).
        assert len(set(assigned.values())) == 2

    def test_snapshot_reused_until_history_moves(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        first = sharded.model("q1")
        assert sharded.model("q1") is first  # same version -> same snapshot
        tick, features, costs = observation_stream("q1", 13)[-1]
        sharded.record("q1", tick + 1, features, costs)
        assert sharded.is_stale("q1")
        assert sharded.model("q1") is not first
        stats = sharded.stats
        assert stats.fits == 2 and stats.snapshot_hits == 1

    def test_preexisting_history_rows_are_replayed_on_first_fit(self, sharded):
        from repro.core import ExecutionHistory

        history = ExecutionHistory(FEATURES, METRICS)
        for tick, features, costs in observation_stream("pre", 14):
            history.append(tick, features, costs)
        sharded.register("pre", history)
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("pre", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "pre", 14)
        assert (
            sharded.model("pre").training_size
            == reference.model("pre").training_size
        )

    def test_estimate_batch_matches_per_row(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 15)
        matrix = np.array([[30.0, 2.0], [75.0, 8.0], [110.0, 4.0]])
        batched = sharded.estimate_batch("q1", matrix)
        for i, row in enumerate(matrix):
            single = sharded.estimate("q1", row)
            for metric in METRICS:
                assert batched[metric][i] == pytest.approx(single[metric], rel=1e-12)

    def test_refresh_parallel_and_sequential_agree(self, sharded):
        keys = [f"q{i}" for i in range(5)]
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(sharded, key, 12, seed=3)
        parallel = sharded.refresh(parallel=True)
        assert sorted(parallel) == keys
        # Re-refresh sequentially: everything fresh -> same snapshots.
        sequential = sharded.refresh(parallel=False)
        for key in keys:
            assert sequential[key] is parallel[key]

    def test_failed_fit_keeps_replica_in_sync(self, sharded):
        """Regression (found by hypothesis): a fit on a too-short
        history fails AFTER the delta rows landed on the replica; the
        parent must not re-send them with the next fit."""
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 3)  # below the minimum window (L + 2 = 4)
        with pytest.raises(EstimationError):
            sharded.model("q1")
        tick, features, costs = observation_stream("q1", 4)[-1]
        sharded.record("q1", tick, features, costs)
        fitted = sharded.model("q1")  # must not double-append rows 0..2
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "q1", 4)
        assert fitted.training_size == reference.model("q1").training_size

    def test_unfittable_template_does_not_poison_the_burst(self, sharded):
        sharded.register("ready", feature_names=FEATURES, metrics=METRICS)
        sharded.register("empty", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "ready", 12)
        models = sharded.refresh()
        assert "ready" in models and "empty" not in models

    def test_stats_aggregate_engine_caches_across_workers(self, sharded):
        keys = [f"q{i}" for i in range(6)]
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            feed(sharded, key, 12, seed=5)
        sharded.refresh()
        sharded.refresh()  # all fresh: no new fits
        stats = sharded.stats
        assert stats.templates == 6
        assert stats.fits == 6
        assert stats.observations == 6 * 12
        assert stats.bursts == 2
        # One engine miss per template, summed across both workers.
        assert stats.engine_cache is not None
        assert stats.engine_cache.misses == 6
        per_shard = sharded.shard_stats()
        assert sum(s["templates"] for s in per_shard) == 6
        assert sum(s["fits"] for s in per_shard) == 6
        assert len({s["pid"] for s in per_shard}) == 2

    def test_template_lock_excludes_fits(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        with sharded.template_lock("q1"):
            # Re-entrant for the owning thread; fits still succeed here.
            assert sharded.model("q1") is not None


class TestWorkerLifecycle:
    def test_crash_is_detected_respawned_and_replayed(self, sharded):
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 14)
        before = sharded.model("q1")
        pids_before = sharded.worker_pids()
        victim = sharded.shard_of("q1")
        sharded.inject_worker_crash(victim)
        # Stale the template so the next model() must hit the worker.
        tick, features, costs = observation_stream("q1", 15)[-1]
        sharded.record("q1", tick + 1, features, costs)
        after = sharded.model("q1")
        assert sharded.respawns == 1
        assert sharded.worker_pids()[victim] != pids_before[victim]
        # The respawned replica refit deterministically from the replay.
        reference = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        reference.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(reference, "q1", 14)
        reference.record("q1", tick + 1, features, costs)
        expected = reference.model("q1")
        assert after.training_size == expected.training_size
        probe = np.array([[40.0, 3.0], [90.0, 6.0]])
        got, want = after.predict_batch(probe), expected.predict_batch(probe)
        for metric in METRICS:
            assert np.array_equal(got[metric], want[metric])
        assert before is not after

    def test_rpc_timeout_counts_as_crash_and_respawns(self):
        # A 10s timeout must never fire on a healthy fit; this asserts
        # the guard is wired, not that it trips.
        service = ShardedEstimationService(factory, workers=1, rpc_timeout=10.0)
        try:
            service.register("q1", feature_names=FEATURES, metrics=METRICS)
            feed(service, "q1", 12)
            assert service.model("q1") is not None
            assert service.respawns == 0
        finally:
            service.close()

    def test_rpc_timeout_configurable_through_the_gateway(self):
        from repro.federation import FederationConfig, create_serving

        config = FederationConfig(
            serving_backend="sharded", shard_workers=1, shard_rpc_timeout=30.0
        )
        service = create_serving(config, modelling=None)
        try:
            assert service.rpc_timeout == 30.0
        finally:
            service.close()

    def test_stats_are_read_only_and_never_heal_a_crash(self, sharded):
        """Introspection must not respawn workers: a monitoring poll on
        a crashed shard reports the placeholder row; healing happens on
        the next serving RPC."""
        sharded.register("q1", feature_names=FEATURES, metrics=METRICS)
        feed(sharded, "q1", 12)
        sharded.model("q1")
        victim = sharded.shard_of("q1")
        sharded.inject_worker_crash(victim)
        per_shard = sharded.shard_stats()
        assert per_shard[victim]["pid"] is None  # placeholder, no respawn
        assert sharded.respawns == 0
        assert sharded.stats.templates == 1  # aggregate stats still work
        tick, features, costs = observation_stream("q1", 13)[-1]
        sharded.record("q1", tick + 1, features, costs)
        assert sharded.model("q1") is not None  # the serving path heals
        assert sharded.respawns == 1

    def test_worker_boot_failure_surfaces_with_root_cause(self):
        """A worker whose strategy factory raises must report WHY at the
        first RPC (an infrastructure ShardedServingError), not die with
        an opaque exit code and a futile crash-respawn loop."""
        service = ShardedEstimationService(_exploding_strategy, workers=1)
        try:
            with pytest.raises(ShardedServingError, match="failed to start"):
                service.register("q1", feature_names=FEATURES, metrics=METRICS)
            assert service.respawns == 0  # a boot failure is not a crash
        finally:
            service.close()

    def test_close_is_graceful_and_idempotent(self):
        service = ShardedEstimationService(factory, workers=2)
        service.register("q1", feature_names=FEATURES, metrics=METRICS)
        processes = [shard.process for shard in service._shards]
        service.close()
        service.close()
        assert all(not process.is_alive() for process in processes)
        # Polite shutdown, not terminate: workers exit with code 0.
        assert all(process.exitcode == 0 for process in processes)
        with pytest.raises(ShardedServingError):
            service.register("q2", feature_names=FEATURES, metrics=METRICS)
        with pytest.raises(EstimationError):
            service.model("q1")

    def test_context_manager_closes(self):
        with ShardedEstimationService(factory, workers=1) as service:
            service.register("q1", feature_names=FEATURES, metrics=METRICS)
            processes = [shard.process for shard in service._shards]
        assert all(not process.is_alive() for process in processes)


class TestServingBackendRegistry:
    def test_builtins_registered(self):
        from repro.federation import available_serving_backends

        names = available_serving_backends()
        assert "threaded" in names and "sharded" in names

    def test_unknown_backend_rejected_eagerly_with_listing(self):
        from repro.federation import FederationConfig, UnknownServingBackendError

        with pytest.raises(UnknownServingBackendError) as excinfo:
            FederationConfig(serving_backend="no-such-backend")
        assert "threaded" in str(excinfo.value)
        assert excinfo.value.phase == "configure"

    def test_custom_backend_selected_by_config(self):
        from repro.federation import (
            FederationConfig,
            create_serving,
            register_serving_backend,
            unregister_serving_backend,
        )
        from repro.ires.modelling import DreamStrategy, Modelling

        seen = {}

        def backend(config, modelling):
            seen["config"] = config
            service = EstimationService(modelling=modelling)
            seen["service"] = service
            return service

        register_serving_backend("test-recording", backend)
        try:
            config = FederationConfig(serving_backend="test-recording")
            modelling = Modelling(DreamStrategy())
            service = create_serving(config, modelling)
            assert service is seen["service"]
            assert seen["config"] is config
        finally:
            unregister_serving_backend("test-recording")

    def test_duplicate_backend_registration_refused(self):
        from repro.federation import GatewayConfigError, register_serving_backend

        with pytest.raises(GatewayConfigError, match="already registered"):
            register_serving_backend("threaded", lambda config, modelling: None)


class TestGatewayIntegration:
    @staticmethod
    def _midas(serving_backend: str):
        from dataclasses import replace

        from repro.midas import MidasSystem
        from repro.midas.system import DEFAULT_CONFIG

        config = replace(
            DEFAULT_CONFIG, serving_backend=serving_backend, shard_workers=2
        )
        return MidasSystem(patient_count=240, seed=11, config=config)

    def test_sharded_gateway_matches_threaded_decisions(self):
        from repro.federation import SubmitRequest
        from repro.ires.policy import UserPolicy

        key = "medical-demographics"
        reports = {}
        for backend in ("threaded", "sharded"):
            midas = self._midas(backend)
            try:
                midas.warm_up(key, runs=8)
                report = midas.gateway.submit(
                    SubmitRequest(key, {"min_age": 40}, UserPolicy(weights=(0.6, 0.4)))
                )
                reports[backend] = report
            finally:
                midas.gateway.close()
        threaded, sharded = reports["threaded"], reports["sharded"]
        assert sharded.chosen.describe() == threaded.chosen.describe()
        assert sharded.predicted_costs == threaded.predicted_costs
        assert sharded.measured_costs == threaded.measured_costs
        assert sharded.cost_model.training_size == threaded.cost_model.training_size

    def test_serving_report_envelope(self):
        midas = self._midas("sharded")
        try:
            report = midas.gateway.serving_report()
            assert report.backend == "sharded"
            assert report.workers == 2
            assert report.respawns == 0
            assert report.stats.templates == len(midas.gateway.templates())
            assert "sharded (2 worker processes)" in report.describe()
        finally:
            midas.gateway.close()

    def test_gateway_close_drains_workers_and_context_manager(self):
        midas = self._midas("sharded")
        serving = midas.gateway.engine.serving
        with midas.gateway as gateway:
            assert gateway.serving_report().workers == 2
        assert all(not shard.process.is_alive() for shard in serving._shards)

    def test_strategy_instance_rejected_with_sharded_backend(self):
        from dataclasses import replace

        from repro.federation import GatewayConfigError
        from repro.ires.modelling import DreamStrategy
        from repro.midas import MidasSystem
        from repro.midas.system import DEFAULT_CONFIG

        config = replace(DEFAULT_CONFIG, serving_backend="sharded")
        with pytest.raises(GatewayConfigError, match="threaded"):
            MidasSystem(patient_count=240, config=config, strategy=DreamStrategy())
