"""Shared pytest wiring: one pinned hypothesis settings profile.

Every property suite used to restate ``deadline=None`` and the
``too_slow`` suppression per test; the profiles below make that the
suite-wide default so individual ``@settings`` decorators only say what
is genuinely test-specific (``max_examples``).

* ``dev`` (default) — no deadline (fork-heavy sharded examples are
  legitimately slow), randomization ON (``derandomize=False``: every
  run explores new interleavings), and ``print_blob=True`` so a failure
  prints the ``@reproduce_failure`` seed blob needed to replay it.
* ``ci`` — identical guarantees, selected explicitly in CI via
  ``HYPOTHESIS_PROFILE=ci`` so the workflow states which contract it
  runs under (and the two can diverge later without touching tests).
"""

import os

from hypothesis import HealthCheck, settings

_BASE = dict(
    deadline=None,
    derandomize=False,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.register_profile("dev", **_BASE)
settings.register_profile("ci", **_BASE)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
