"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import datetime

from repro.plans import Catalog
from repro.relational import Column, DataType, Schema, Table


def date(text: str) -> datetime.date:
    return datetime.date.fromisoformat(text)


def make_orders() -> Table:
    schema = Schema(
        [
            Column("o_orderkey", DataType.INTEGER, nullable=False),
            Column("o_custkey", DataType.INTEGER, nullable=False),
            Column("o_orderdate", DataType.DATE, nullable=False),
            Column("o_orderpriority", DataType.STRING, nullable=False),
            Column("o_comment", DataType.STRING),
        ]
    )
    return Table.from_rows(
        "orders",
        schema,
        [
            [1, 10, date("1994-01-05"), "1-URGENT", "quiet packages"],
            [2, 11, date("1994-03-05"), "3-MEDIUM", "special late requests"],
            [3, 10, date("1995-01-05"), "2-HIGH", "furious special sly requests"],
            [4, 12, date("1996-07-01"), "5-LOW", None],
        ],
    )


def make_lineitem() -> Table:
    schema = Schema(
        [
            Column("l_orderkey", DataType.INTEGER, nullable=False),
            Column("l_partkey", DataType.INTEGER, nullable=False),
            Column("l_shipmode", DataType.STRING, nullable=False),
            Column("l_commitdate", DataType.DATE, nullable=False),
            Column("l_receiptdate", DataType.DATE, nullable=False),
            Column("l_shipdate", DataType.DATE, nullable=False),
            Column("l_quantity", DataType.FLOAT, nullable=False),
            Column("l_extendedprice", DataType.FLOAT, nullable=False),
        ]
    )
    return Table.from_rows(
        "lineitem",
        schema,
        [
            [1, 100, "MAIL", date("1994-02-01"), date("1994-02-10"), date("1994-01-20"), 10.0, 100.0],
            [1, 101, "AIR", date("1994-02-05"), date("1994-02-20"), date("1994-01-25"), 5.0, 50.0],
            [2, 100, "SHIP", date("1994-04-01"), date("1994-03-20"), date("1994-03-10"), 20.0, 200.0],
            [3, 102, "MAIL", date("1995-02-01"), date("1995-02-10"), date("1995-01-20"), 30.0, 300.0],
            [3, 100, "RAIL", date("1995-03-01"), date("1995-03-15"), date("1995-02-20"), 40.0, 400.0],
        ],
    )


def make_part() -> Table:
    schema = Schema(
        [
            Column("p_partkey", DataType.INTEGER, nullable=False),
            Column("p_brand", DataType.STRING, nullable=False),
            Column("p_container", DataType.STRING, nullable=False),
            Column("p_type", DataType.STRING, nullable=False),
        ]
    )
    return Table.from_rows(
        "part",
        schema,
        [
            [100, "Brand#12", "SM BOX", "PROMO PLATED TIN"],
            [101, "Brand#23", "LG CASE", "STANDARD BRUSHED STEEL"],
            [102, "Brand#12", "SM BOX", "PROMO ANODIZED BRASS"],
        ],
    )


def tiny_catalog() -> Catalog:
    return Catalog([make_orders(), make_lineitem(), make_part()])
