"""Shared fixtures and builders for the test suite.

Two sections:

* Relational scaffolding — the tiny TPC-H-shaped catalog the planner,
  SQL and MOQP suites share.
* Serving scaffolding — the oracle-equivalence machinery the serving,
  sharded-property, front-door and chaos suites share: deterministic
  observation streams, the picklable worker strategy, bitwise model
  comparison against a shared probe matrix, and the gateway
  sequential-vs-batched replay harness.
"""

from __future__ import annotations

import asyncio
import datetime
from functools import partial

import numpy as np

from repro.cloud.variability import default_federation_load
from repro.common.rng import RngStream
from repro.federation import (
    FederationConfig,
    FederationError,
    ObserveRequest,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem
from repro.plans import Catalog
from repro.relational import Column, DataType, Schema, Table
from repro.serving.worker import dream_strategy


def date(text: str) -> datetime.date:
    return datetime.date.fromisoformat(text)


def make_orders() -> Table:
    schema = Schema(
        [
            Column("o_orderkey", DataType.INTEGER, nullable=False),
            Column("o_custkey", DataType.INTEGER, nullable=False),
            Column("o_orderdate", DataType.DATE, nullable=False),
            Column("o_orderpriority", DataType.STRING, nullable=False),
            Column("o_comment", DataType.STRING),
        ]
    )
    return Table.from_rows(
        "orders",
        schema,
        [
            [1, 10, date("1994-01-05"), "1-URGENT", "quiet packages"],
            [2, 11, date("1994-03-05"), "3-MEDIUM", "special late requests"],
            [3, 10, date("1995-01-05"), "2-HIGH", "furious special sly requests"],
            [4, 12, date("1996-07-01"), "5-LOW", None],
        ],
    )


def make_lineitem() -> Table:
    schema = Schema(
        [
            Column("l_orderkey", DataType.INTEGER, nullable=False),
            Column("l_partkey", DataType.INTEGER, nullable=False),
            Column("l_shipmode", DataType.STRING, nullable=False),
            Column("l_commitdate", DataType.DATE, nullable=False),
            Column("l_receiptdate", DataType.DATE, nullable=False),
            Column("l_shipdate", DataType.DATE, nullable=False),
            Column("l_quantity", DataType.FLOAT, nullable=False),
            Column("l_extendedprice", DataType.FLOAT, nullable=False),
        ]
    )
    return Table.from_rows(
        "lineitem",
        schema,
        [
            [1, 100, "MAIL", date("1994-02-01"), date("1994-02-10"), date("1994-01-20"), 10.0, 100.0],
            [1, 101, "AIR", date("1994-02-05"), date("1994-02-20"), date("1994-01-25"), 5.0, 50.0],
            [2, 100, "SHIP", date("1994-04-01"), date("1994-03-20"), date("1994-03-10"), 20.0, 200.0],
            [3, 102, "MAIL", date("1995-02-01"), date("1995-02-10"), date("1995-01-20"), 30.0, 300.0],
            [3, 100, "RAIL", date("1995-03-01"), date("1995-03-15"), date("1995-02-20"), 40.0, 400.0],
        ],
    )


def make_part() -> Table:
    schema = Schema(
        [
            Column("p_partkey", DataType.INTEGER, nullable=False),
            Column("p_brand", DataType.STRING, nullable=False),
            Column("p_container", DataType.STRING, nullable=False),
            Column("p_type", DataType.STRING, nullable=False),
        ]
    )
    return Table.from_rows(
        "part",
        schema,
        [
            [100, "Brand#12", "SM BOX", "PROMO PLATED TIN"],
            [101, "Brand#23", "LG CASE", "STANDARD BRUSHED STEEL"],
            [102, "Brand#12", "SM BOX", "PROMO ANODIZED BRASS"],
        ],
    )


def tiny_catalog() -> Catalog:
    return Catalog([make_orders(), make_lineitem(), make_part()])


# ---------------------------------------------------------------------------
# Serving scaffolding

FEATURES = ("size", "nodes")
METRICS = ("time", "money")

#: Thresholds every serving-equivalence suite fits with (paper §3's
#: R^2_require recommendation and a window small enough to cycle).
R2 = 0.8
MAX_WINDOW = 20

#: Picklable worker-side strategy factory matching the threaded suites'
#: ``DreamStrategy(r2_required=R2, max_window=MAX_WINDOW)``.
sharded_factory = partial(
    dream_strategy, r2_required=R2, max_window=MAX_WINDOW, cache_capacity=64
)

#: Shared probe matrix: bitwise prediction equality is asserted on these
#: feature rows (``np.array_equal``, no tolerance).
PROBE = np.array([[25.0, 2.0], [55.0, 4.0], [95.0, 8.0], [110.0, 3.0]])


def observation_stream(key: str, ticks: int, seed: int = 17):
    """A deterministic per-template stream of (tick, features, costs)."""
    rng = RngStream(seed, "serving", key)
    load = default_federation_load(rng.child("load"))
    out = []
    for tick in range(ticks):
        size = float(rng.uniform(10, 100))
        nodes = float(rng.integers(2, 9))
        factor = load.factor(tick)
        time = factor * (5 + 0.4 * size / nodes) * (1 + float(rng.normal(0, 0.03)))
        money = factor * (0.01 * size + 0.002 * nodes * time)
        out.append(
            (tick, {"size": size, "nodes": nodes}, {"time": time, "money": money})
        )
    return out


def assert_models_bitwise_equal(key, sharded_model, threaded_model):
    __tracebackhide__ = True
    assert sharded_model.training_size == threaded_model.training_size, key
    sharded_columns = sharded_model.predict_batch(PROBE)
    threaded_columns = threaded_model.predict_batch(PROBE)
    for metric in METRICS:
        assert np.array_equal(
            sharded_columns[metric], threaded_columns[metric]
        ), (key, metric)


def assert_report_pair_equal(left, right, position=None):
    """One gateway report (submission or observation) against its twin
    from the other execution path: type, tick, costs, chosen plan."""
    __tracebackhide__ = True
    assert type(left) is type(right), position
    assert left.tick == right.tick, position
    if hasattr(left, "predicted_costs"):
        assert left.predicted_costs == right.predicted_costs, position
        assert left.measured_costs == right.measured_costs, position
        assert left.chosen.describe() == right.chosen.describe(), position
    else:
        assert left.measured == right.measured, position
        assert left.candidate.describe() == right.candidate.describe(), position


# --- Gateway sequential-vs-batched replay harness --------------------------

GATEWAY_KEYS = ("medical-demographics", "medical-severe-cases")


def build_gateway_traffic(script, seed):
    """Materialise one request object per script entry (shared between
    both systems, so parameter sampling cannot diverge)."""
    rng = RngStream(seed, "gateway-property")
    traffic = []
    for index, op in script:
        key = GATEWAY_KEYS[index]
        params = MEDICAL_QUERIES[key].sample_params(rng)
        if op == "submit":
            traffic.append(("submit", SubmitRequest(key, params)))
        else:
            traffic.append(("observe", ObserveRequest(key, params)))
    return traffic


def gateway_config(backend, **overrides):
    base = dict(serving_backend=backend, shard_workers=2, max_window=24)
    base.update(overrides)
    return FederationConfig(**base)


def run_sequential(traffic, backend, seed, config=None):
    """Single-call replay: one outcome per item, plus the fit counter."""
    midas = MidasSystem(
        patient_count=250, seed=seed, config=config or gateway_config(backend)
    )
    outcomes = []
    try:
        for op, request in traffic:
            call = midas.gateway.submit if op == "submit" else midas.gateway.observe
            try:
                outcomes.append(("ok", call(request)))
            except FederationError as error:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def run_batched(traffic, backend, seed, config=None):
    """The same traffic through ingest() + drain()."""
    midas = MidasSystem(
        patient_count=250, seed=seed, config=config or gateway_config(backend)
    )
    outcomes = []
    try:
        for _op, request in traffic:
            midas.gateway.ingest(request)
        batch = midas.gateway.drain()
        for report, error in zip(batch.reports, batch.errors):
            if error is None:
                outcomes.append(("ok", report))
            else:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def run_streamed(traffic, backend, seed, config=None, before_drain=None):
    """The same traffic consumed through streaming tickets: outcomes are
    read per-ticket (in admission order) rather than from the drained
    batch, and done-callback firing order is checked against admission
    order.  ``before_drain`` (if given) runs after every admission and
    before the flush — chaos hooks inject worker crashes there."""
    midas = MidasSystem(
        patient_count=250, seed=seed, config=config or gateway_config(backend)
    )
    outcomes = []
    resolved_order = []
    try:
        tickets = []
        for _op, request in traffic:
            admitted = midas.gateway.ingest(request)
            for ticket in admitted if isinstance(admitted, list) else [admitted]:
                ticket.add_done_callback(lambda t: resolved_order.append(t.seq))
                tickets.append(ticket)
        if before_drain is not None:
            before_drain(midas.gateway)
        midas.gateway.drain()
        for ticket in tickets:
            assert ticket.done
            if ticket.error is None:
                outcomes.append(("ok", ticket.report))
            else:
                outcomes.append(("error", type(ticket.error).__name__))
        assert resolved_order == sorted(resolved_order)
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def run_async(traffic, backend, seed, config=None, before_drain=None):
    """The same traffic through the asyncio surface: one task per
    request via ``ingest_async``, flushed with ``drain_async``, then
    each awaited in admission order."""
    midas = MidasSystem(
        patient_count=250, seed=seed, config=config or gateway_config(backend)
    )

    async def drive():
        gateway = midas.gateway
        tasks = [
            asyncio.ensure_future(gateway.ingest_async(request))
            for _op, request in traffic
        ]
        # Step every task once so the admissions reach the admission
        # thread (in task-creation order) before any chaos hook runs.
        await asyncio.sleep(0)
        if before_drain is not None:
            before_drain(gateway)
        await gateway.drain_async()
        collected = []
        for task in tasks:
            try:
                collected.append(("ok", await task))
            except FederationError as error:
                collected.append(("error", type(error).__name__))
        return collected

    try:
        outcomes = asyncio.run(drive())
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def assert_gateway_outcomes_equal(sequential, batched):
    __tracebackhide__ = True
    seq_outcomes, seq_fits, seq_observations = sequential
    bat_outcomes, bat_fits, bat_observations = batched
    assert len(seq_outcomes) == len(bat_outcomes)
    for position, (left, right) in enumerate(zip(seq_outcomes, bat_outcomes)):
        assert left[0] == right[0], (position, left[0], right[0])
        if left[0] == "error":
            assert left[1] == right[1], position
            continue
        assert_report_pair_equal(left[1], right[1], position)
    assert seq_fits == bat_fits
    assert seq_observations == bat_observations
