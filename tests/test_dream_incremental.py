"""Tests for the incremental DREAM engine.

Three layers of guarantees:

1. :class:`RecursiveLeastSquares` reproduces batch OLS — coefficients,
   training R^2 and PRESS R^2 — to 1e-8 across random windows, through
   both updates and downdates (property test).
2. :class:`OnlineDreamEstimator` chooses the *same window* as the batch
   :class:`DreamEstimator` and predicts within 1e-6 on the
   ``default_federation_load`` drift scenario (equivalence test).
3. The batched prediction path (``DreamResult.predict_batch``,
   ``MultiCostModel.predict_batch``) matches the per-row path exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.variability import default_federation_load
from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.core import DreamEstimator, ExecutionHistory, OnlineDreamEstimator
from repro.ires.modelling import DreamStrategy
from repro.ml import MultipleLinearRegression, RecursiveLeastSquares


def random_regression(seed: int, n: int, dimension: int):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-5.0, 5.0, size=(n, dimension))
    slopes = rng.uniform(-2.0, 2.0, size=dimension)
    targets = 1.5 + features @ slopes + rng.normal(0.0, 0.5, size=n)
    return features, targets


def drift_history(
    ticks: int, seed: int = 5, metrics: tuple[str, ...] = ("time", "money")
) -> ExecutionHistory:
    """A federation-shaped stream under the paper's drift scenario."""
    rng = RngStream(seed, "equivalence")
    load = default_federation_load(rng.child("load"))
    history = ExecutionHistory(("size", "nodes"), metrics)
    for tick in range(ticks):
        size = float(rng.uniform(10, 100))
        nodes = float(rng.integers(2, 9))
        factor = load.factor(tick)
        time = factor * (5 + 0.4 * size / nodes) * (1 + float(rng.normal(0, 0.03)))
        money = factor * (0.01 * size + 0.002 * nodes * time)
        history.append(tick, {"size": size, "nodes": nodes}, {"time": time, "money": money})
    return history


class TestRecursiveLeastSquares:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        dimension=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_batch_across_growing_windows(self, seed, dimension, extra):
        n = dimension + 2 + extra
        features, targets = random_regression(seed, n, dimension)
        rls = RecursiveLeastSquares(dimension)
        for i in range(n):
            rls.update(features[i], targets[i])
            if i + 1 < dimension + 2:
                continue
            window_x, window_y = features[: i + 1], targets[: i + 1]
            batch = MultipleLinearRegression().fit(window_x, window_y)
            assert np.allclose(
                rls.coefficients, batch.coefficients_, rtol=1e-8, atol=1e-8
            )
            assert rls.r_squared == pytest.approx(batch.r_squared_, abs=1e-8)
            assert rls.press_r_squared(window_x, window_y) == pytest.approx(
                batch.press_r_squared_, abs=1e-8
            )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        dimension=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_downdate_slides_the_window(self, seed, dimension):
        n = dimension + 12
        drop = 4
        features, targets = random_regression(seed, n, dimension)
        rls = RecursiveLeastSquares(dimension)
        for i in range(n):
            rls.update(features[i], targets[i])
        for i in range(drop):
            rls.downdate(features[i], targets[i])
        batch = MultipleLinearRegression().fit(features[drop:], targets[drop:])
        assert rls.count == n - drop
        assert np.allclose(rls.coefficients, batch.coefficients_, rtol=1e-7, atol=1e-7)
        assert rls.r_squared == pytest.approx(batch.r_squared_, abs=1e-7)

    def test_copy_is_independent(self):
        features, targets = random_regression(1, 8, 2)
        rls = RecursiveLeastSquares(2)
        for i in range(6):
            rls.update(features[i], targets[i])
        clone = rls.copy()
        clone.update(features[6], targets[6])
        assert clone.count == rls.count + 1
        assert not np.allclose(clone.coefficients, rls.coefficients)

    def test_dimension_and_empty_guards(self):
        with pytest.raises(EstimationError):
            RecursiveLeastSquares(0)
        rls = RecursiveLeastSquares(2)
        with pytest.raises(EstimationError):
            rls.update([1.0], 2.0)
        with pytest.raises(EstimationError):
            rls.downdate([1.0, 2.0], 3.0)
        with pytest.raises(EstimationError):
            _ = rls.coefficients

    def test_singular_window_matches_batch_pinv(self):
        """A constant feature keeps the normal matrix singular; both
        implementations fall back to the same pseudo-inverse solution."""
        features = np.column_stack([np.ones(6), np.arange(6, dtype=float)])
        targets = 2.0 * np.arange(6, dtype=float) + 1.0
        rls = RecursiveLeastSquares(2)
        for i in range(6):
            rls.update(features[i], targets[i])
        batch = MultipleLinearRegression().fit(features, targets)
        assert np.allclose(
            rls.coefficients @ [1.0, 1.0, 3.0],
            batch.coefficients_ @ [1.0, 1.0, 3.0],
            rtol=1e-8,
        )


class TestOnlineDreamEquivalence:
    def test_same_windows_and_predictions_under_drift(self):
        """Batch and incremental Algorithm 1 agree on every tick of the
        default_federation_load scenario (windows exactly, predictions
        to 1e-6)."""
        history = drift_history(90)
        full = history.observations
        replay = ExecutionHistory(history.feature_names, history.metric_names)
        batch = DreamEstimator(r2_required=0.8, max_window=30)
        online = OnlineDreamEstimator(r2_required=0.8, max_window=30)
        probe = np.array([55.0, 4.0])
        checked = 0
        for obs in full:
            replay.append(obs.tick, obs.features, obs.costs)
            if replay.size < 6:
                continue
            reference = batch.fit(replay.datasets())
            incremental = online.fit(replay)
            assert incremental.window_size == reference.window_size
            assert incremental.window_sizes == reference.window_sizes
            assert incremental.converged == reference.converged
            for metric in reference.models:
                expected = reference.predict_metric(metric, probe)
                actual = incremental.predict_metric(metric, probe)
                assert actual == pytest.approx(expected, rel=1e-6, abs=1e-9)
            checked += 1
        assert checked > 50

    def test_rank_deficient_windows_match_batch(self):
        """Regression: near-constant indicator features make early
        windows rank-deficient; the incremental engine must fall back to
        the oracle's exact path there rather than diverge (this bit the
        MIDAS medical workload: money R^2 read -1.0 instead of 0.99)."""
        rng = RngStream(11, "rankdef")
        metrics = ("time", "money")
        history = ExecutionHistory(("size", "nodes", "indicator"), metrics)
        for tick in range(40):
            size = float(rng.uniform(10, 100))
            nodes = float(rng.integers(1, 4))
            indicator = 1.0 if rng.random() < 0.1 else 0.0  # mostly constant
            time = 3.0 + 0.5 * size / nodes + 10.0 * indicator
            money = 0.01 * size + 0.001 * nodes  # exactly linear
            history.append(
                tick,
                {"size": size, "nodes": nodes, "indicator": indicator},
                {"time": time, "money": money},
            )
        replay = ExecutionHistory(history.feature_names, metrics)
        batch = DreamEstimator(r2_required=0.8, max_window=20)
        online = OnlineDreamEstimator(r2_required=0.8, max_window=20)
        probe = np.array([50.0, 2.0, 0.0])
        for obs in history.observations:
            replay.append(obs.tick, obs.features, obs.costs)
            if replay.size < 5:
                continue
            reference = batch.fit(replay.datasets())
            incremental = online.fit(replay)
            assert incremental.window_size == reference.window_size
            assert incremental.window_sizes == reference.window_sizes
            for metric in metrics:
                assert incremental.predict_metric(metric, probe) == pytest.approx(
                    reference.predict_metric(metric, probe), rel=1e-6, abs=1e-9
                )

    def test_version_cache_and_incremental_fold(self):
        history = drift_history(30)
        online = OnlineDreamEstimator(r2_required=0.8)
        first = online.fit(history)
        assert online.fit(history) is first  # version unchanged -> cache hit
        last = history.observations[-1]
        history.append(last.tick + 1, last.features, last.costs)
        second = online.fit(history)
        assert second is not first

    def test_rebinding_to_another_history_resets(self):
        online = OnlineDreamEstimator(r2_required=0.8)
        online.fit(drift_history(20, seed=1))
        other = drift_history(25, seed=2)
        result = online.fit(other)
        reference = DreamEstimator(r2_required=0.8).fit(other.datasets())
        assert result.window_size == reference.window_size

    def test_estimate_cost_values_signature(self):
        history = drift_history(20)
        values = OnlineDreamEstimator().estimate_cost_values(history, [50.0, 4.0])
        assert set(values) == {"time", "money"}


class TestBatchedPrediction:
    def test_predict_batch_matches_per_row(self):
        history = drift_history(40)
        result = DreamEstimator(r2_required=0.8).fit(history.datasets())
        rng = np.random.default_rng(9)
        matrix = rng.uniform(0.0, 200.0, size=(64, 2))  # beyond the hull: clamps
        batched = result.predict_batch(matrix)
        assert set(batched) == set(result.models)
        for metric, vector in batched.items():
            assert vector.shape == (64,)
            expected = [result.predict_metric(metric, row) for row in matrix]
            assert np.allclose(vector, expected, rtol=1e-12, atol=1e-12)

    def test_predict_batch_validates_shape(self):
        history = drift_history(20)
        result = DreamEstimator().fit(history.datasets())
        with pytest.raises(EstimationError, match="expected"):
            result.predict_batch(np.zeros((4, 5)))

    def test_fitted_cost_model_batch_matches_per_row(self):
        history = drift_history(40)
        fitted = DreamStrategy(r2_required=0.8).fit(history)
        rng = np.random.default_rng(3)
        matrix = rng.uniform(5.0, 120.0, size=(32, 2))
        batched = fitted.predict_batch(matrix)
        for i, row in enumerate(matrix):
            per_row = fitted.predict(row)
            for metric, value in per_row.items():
                assert batched[metric][i] == pytest.approx(value, rel=1e-12)

    def test_strategy_incremental_matches_batch_reference(self):
        history = drift_history(50)
        incremental = DreamStrategy(r2_required=0.8, incremental=True).fit(history)
        reference = DreamStrategy(r2_required=0.8, incremental=False).fit(history)
        assert incremental.training_size == reference.training_size
        x = np.array([60.0, 3.0])
        a, b = incremental.predict(x), reference.predict(x)
        for metric in b:
            assert a[metric] == pytest.approx(b[metric], rel=1e-6)
