"""Tests for extensions beyond the paper: Q3 (3-way join), the CLI."""

import pytest

from repro.common.rng import RngStream
from repro.plans import execute_sql
from repro.plans.binder import plan_sql
from repro.plans.logical import Join
from repro.plans.optimizer import optimize
from repro.plans.physical import EnginePlacement, profile_plan
from repro.tpch import TpchDataset
from repro.tpch.queries import EXTENDED_QUERIES, query_3
from repro.workloads.tpch_runner import TPCH_DEPLOYMENT
from repro.ires.deployment import Deployment


@pytest.fixture(scope="module")
def dataset():
    return TpchDataset(scale_mib=100, physical_scale_factor=0.0008, seed=7)


class TestQ3ThreeWayJoin:
    def test_executes(self, dataset):
        sql = query_3.render({"segment": "BUILDING", "date": "1995-03-15"})
        result = execute_sql(sql, dataset.catalog)
        assert result.num_rows <= 10
        assert result.schema.names == [
            "l_orderkey",
            "revenue",
            "o_orderdate",
            "o_shippriority",
        ]

    def test_revenue_sorted_descending(self, dataset):
        sql = query_3.render({"segment": "MACHINERY", "date": "1995-03-15"})
        result = execute_sql(sql, dataset.catalog)
        revenues = result.column("revenue")
        assert revenues == sorted(revenues, reverse=True)

    def test_optimizer_builds_two_inner_joins(self, dataset):
        sql = query_3.render({"segment": "BUILDING", "date": "1995-03-15"})
        plan = optimize(plan_sql(sql, dataset.catalog))
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert len(joins) == 2
        assert all(j.kind == "inner" for j in joins)

    def test_profile_spans_both_sites(self, dataset):
        sql = query_3.render({"segment": "BUILDING", "date": "1995-03-15"})
        plan = optimize(plan_sql(sql, dataset.catalog))
        deployment = Deployment(dict(TPCH_DEPLOYMENT))
        placement = deployment.placement_for(EnginePlacement("hive", "cloud-a"))
        profile = profile_plan(plan, dataset.logical_stats, placement)
        sites = {op.site for op in profile.operators}
        assert sites == {"cloud-a", "cloud-b"}
        assert profile.transfers  # customer/lineitem side must move

    def test_results_match_manual_semi_computation(self, dataset):
        """Cross-check one aggregate against hand-computed rows."""
        sql = query_3.render({"segment": "BUILDING", "date": "1995-03-15"})
        result = execute_sql(sql, dataset.catalog)
        if result.num_rows == 0:
            pytest.skip("tiny physical sample produced no qualifying rows")
        orderkey = result.row(0)[0]
        lineitem = dataset.tables["lineitem"]
        expected = sum(
            price * (1 - disc)
            for key, price, disc, ship in zip(
                lineitem.column("l_orderkey"),
                lineitem.column("l_extendedprice"),
                lineitem.column("l_discount"),
                lineitem.column("l_shipdate"),
            )
            if key == orderkey and ship.isoformat() > "1995-03-15"
        )
        assert result.row(0)[1] == pytest.approx(expected)

    def test_extended_registry(self):
        assert set(EXTENDED_QUERIES) == {"q12", "q13", "q14", "q17", "q3"}
        assert EXTENDED_QUERIES["q3"].tables == ("customer", "orders", "lineitem")

    def test_param_generator(self):
        params = query_3.sample_params(RngStream(3, "q3"))
        assert params["segment"] in (
            "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"
        )
        assert params["date"].startswith("1995-03-")


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "figure3" in out

    def test_table1(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        assert "$0.0049" in capsys.readouterr().out

    def test_table2(self, capsys):
        from repro.__main__ import main

        assert main(["table2"]) == 0
        assert "0.8371" in capsys.readouterr().out

    def test_unknown_artifact(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["table99"])


class TestPackageApi:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__ == "1.1.0"
        for name in repro.__all__:
            assert getattr(repro, name) is not None
