"""Durable federation state (ISSUE 9): WAL framing, crash recovery,
fault injection, audit persistence, and the topology-control satellites.

Layered like the subsystem itself:

* WAL primitives — record framing round-trips, the torn-tail /
  corruption dichotomy, atomic checkpoints;
* config validation — every durability and topology knob fails eagerly;
* recovery — kill-at-offset restart equivalence on both serving
  backends (via the :mod:`tests.chaos` driver), torn tails truncated,
  bit rot refused with a typed :class:`DurabilityError`, traffic
  refused until ``recover()``;
* audit persistence — export / offline verification / tamper detection
  (ROADMAP 4c), chain survival across recovery;
* satellites — the background rebalance ticker (ROADMAP 2a) and the
  apply-time migration throttle (ROADMAP 2b).
"""

import threading
import time

import pytest

from repro.common.errors import ValidationError
from repro.core import wal
from repro.core.wal import WalCorruptionError
from repro.federation import (
    DurabilityConfig,
    DurabilityError,
    FederationConfig,
    GatewayConfigError,
    ObserveRequest,
    RebalanceConfig,
)
from repro.governance import GovernanceConfig, verify_chain, verify_chain_file
from repro.midas import MidasSystem
from repro.serving import ShardedEstimationService
from repro.serving.topology import Migration, RebalancePlan
from tests.chaos import (
    inject_bit_flip,
    inject_torn_tail,
    run_recovery_chaos,
    shear_final_record,
)
from tests.helpers import (
    FEATURES,
    METRICS,
    gateway_config,
    observation_stream,
    sharded_factory,
)

#: Enough observes to fit, a submit, cross-tenant traffic, another
#: submit — exercises rows, ticks, rotations and refits in one script.
SCRIPT = (
    [(0, "observe")] * 9
    + [(0, "submit"), (1, "observe"), (1, "observe"), (0, "observe"), (0, "submit")]
)

KEY = "medical-demographics"


def durable_config(backend, directory, **durability_overrides):
    durability = DurabilityConfig(dir=directory, **durability_overrides)
    return gateway_config(backend, durability=durability)


def drive_observes(gateway, count, seed=41):
    for tick in range(count):
        gateway.observe(ObserveRequest(KEY, {"min_age": 35 + (seed + tick) % 40}))


# ---------------------------------------------------------------------------
# WAL primitives


class TestWalPrimitives:
    def test_record_roundtrip(self, tmp_path):
        path = tmp_path / wal.segment_name(1)
        payloads = [
            {"t": "row", "x": 1.5, "lsn": 1},
            {"t": "tick", "nested": {"a": [1, 2.25]}, "lsn": 2},
        ]
        writer = wal.WalWriter(path, fsync="off")
        for payload in payloads:
            writer.append(payload)
        writer.close()
        scan = wal.scan_segment(path)
        assert list(scan.records) == payloads
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == path.stat().st_size

    def test_floats_roundtrip_bitwise(self, tmp_path):
        path = tmp_path / wal.segment_name(1)
        value = 0.1 + 0.2  # not representable exactly; repr-shortest form
        writer = wal.WalWriter(path, fsync="off")
        writer.append({"v": value, "lsn": 1})
        writer.close()
        assert wal.scan_segment(path).records[0]["v"] == value

    @pytest.mark.parametrize("keep", [1, 5, wal.HEADER.size + 3])
    def test_torn_tail_reported_not_raised(self, tmp_path, keep):
        path = tmp_path / wal.segment_name(1)
        writer = wal.WalWriter(path, fsync="off")
        writer.append({"t": "row", "lsn": 1})
        writer.close()
        valid = path.stat().st_size
        partial = wal.encode_record({"t": "row", "lsn": 2})
        with open(path, "ab") as handle:
            handle.write(partial[:keep])
        scan = wal.scan_segment(path)
        assert len(scan.records) == 1
        assert scan.valid_bytes == valid
        assert scan.torn_bytes == keep
        wal.truncate_segment(path, scan.valid_bytes)
        healed = wal.scan_segment(path)
        assert healed.torn_bytes == 0 and len(healed.records) == 1

    def test_fully_present_corruption_raises(self, tmp_path):
        path = tmp_path / wal.segment_name(1)
        writer = wal.WalWriter(path, fsync="off")
        writer.append({"t": "row", "lsn": 1})
        writer.close()
        data = bytearray(path.read_bytes())
        data[wal.HEADER.size] ^= 0x01  # first payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            wal.scan_segment(path)

    def test_valid_crc_over_non_json_raises(self, tmp_path):
        import zlib

        body = b"definitely not json"
        path = tmp_path / wal.segment_name(1)
        path.write_bytes(wal.HEADER.pack(len(body), zlib.crc32(body)) + body)
        with pytest.raises(WalCorruptionError):
            wal.scan_segment(path)

    def test_checkpoint_atomic_replace(self, tmp_path):
        wal.write_checkpoint(tmp_path, {"lsn": 1, "state": "old"})
        wal.write_checkpoint(tmp_path, {"lsn": 2, "state": "new"})
        assert wal.read_checkpoint(tmp_path) == {"lsn": 2, "state": "new"}
        # A leftover temp file (crash between write and rename) is
        # invisible to readers.
        (tmp_path / "checkpoint.tmp").write_bytes(b"\x00garbage")
        assert wal.read_checkpoint(tmp_path)["lsn"] == 2

    def test_damaged_checkpoint_raises(self, tmp_path):
        wal.write_checkpoint(tmp_path, {"lsn": 7})
        path = tmp_path / wal.CHECKPOINT_NAME
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            wal.read_checkpoint(tmp_path)

    def test_segment_listing_orders_numerically(self, tmp_path):
        for number in (3, 1, 12):
            (tmp_path / wal.segment_name(number)).write_bytes(b"")
        (tmp_path / "not-a-segment.log").write_bytes(b"")
        assert [wal.segment_number(p) for p in wal.list_segments(tmp_path)] == [
            1,
            3,
            12,
        ]

    def test_has_state(self, tmp_path):
        assert not wal.has_state(tmp_path)
        empty = tmp_path / wal.segment_name(1)
        empty.write_bytes(b"")
        assert not wal.has_state(tmp_path)  # an empty segment is no state
        empty.write_bytes(wal.encode_record({"lsn": 1}))
        assert wal.has_state(tmp_path)


# ---------------------------------------------------------------------------
# Configuration validation


class TestDurabilityConfigValidation:
    def test_empty_dir_rejected(self):
        with pytest.raises(GatewayConfigError):
            DurabilityConfig(dir="")

    def test_bad_fsync_rejected(self):
        with pytest.raises(GatewayConfigError, match="fsync"):
            DurabilityConfig(dir="/tmp/x", fsync="sometimes")

    def test_bad_checkpoint_every_rejected(self):
        with pytest.raises(GatewayConfigError, match="checkpoint_every"):
            DurabilityConfig(dir="/tmp/x", checkpoint_every=0)

    def test_federation_config_type_checks_durability(self):
        with pytest.raises(GatewayConfigError, match="DurabilityConfig"):
            FederationConfig(durability={"dir": "/tmp/x"})

    def test_rebalance_cadence_seconds_validated(self):
        with pytest.raises(ValidationError, match="cadence_seconds"):
            RebalanceConfig(cadence_seconds=0.0)

    def test_migration_throttle_validated(self):
        with pytest.raises(ValidationError, match="max_migrations_per_cycle"):
            RebalanceConfig(max_migrations_per_cycle=-1)
        assert RebalanceConfig(max_migrations_per_cycle=0).max_migrations_per_cycle == 0


# ---------------------------------------------------------------------------
# Crash recovery (restart equivalence via the chaos driver)


class TestCrashRecovery:
    def test_threaded_recovery_matches_oracle_with_audit(self, tmp_path):
        log = run_recovery_chaos(
            SCRIPT,
            10,
            backend="threaded",
            seed=29,
            durability_dir=tmp_path,
            fsync="batch",
            governance=GovernanceConfig(),
        )
        assert log.report.recovered
        assert log.report.rows == 10
        assert log.audit_head == log.oracle_audit_head is not None

    def test_sharded_recovery_matches_oracle_through_checkpoints(self, tmp_path):
        log = run_recovery_chaos(
            SCRIPT,
            11,
            backend="sharded",
            seed=31,
            durability_dir=tmp_path,
            fsync="off",
            checkpoint_every=4,
        )
        assert log.report.recovered
        # checkpoint_every=4 forces several compactions before the kill:
        # recovery stitched checkpoint rows and WAL rows together.
        assert log.report.checkpoint_lsn > 0

    def test_torn_tail_truncated_cleanly(self, tmp_path):
        log = run_recovery_chaos(
            SCRIPT,
            12,
            backend="threaded",
            seed=37,
            durability_dir=tmp_path,
            fsync="batch",
            mutate_wal=inject_torn_tail,
        )
        assert log.report.torn_bytes > 0

    def test_sheared_record_recovers_to_prefix(self, tmp_path):
        config = durable_config("threaded", tmp_path, fsync="off")
        midas = MidasSystem(patient_count=250, seed=43, config=config)
        try:
            drive_observes(midas.gateway, 6)
        finally:
            midas.gateway.close()
        dropped = shear_final_record(tmp_path)
        assert dropped > 0
        revived = MidasSystem(patient_count=250, seed=43, config=config)
        try:
            report = revived.gateway.recover()
            assert report.torn_bytes == dropped
            # The sheared append is gone; everything before it survives.
            assert revived.gateway.engine.history(KEY).size == 5
            assert report.tick == 5
        finally:
            revived.gateway.close()

    def test_bit_flip_raises_typed_durability_error(self, tmp_path):
        config = durable_config("threaded", tmp_path, fsync="off")
        midas = MidasSystem(patient_count=250, seed=47, config=config)
        try:
            drive_observes(midas.gateway, 5)
        finally:
            midas.gateway.close()
        inject_bit_flip(tmp_path, record_index=2)
        revived = MidasSystem(patient_count=250, seed=47, config=config)
        try:
            with pytest.raises(DurabilityError):
                revived.gateway.recover()
        finally:
            revived.gateway.close()

    def test_traffic_refused_until_recover(self, tmp_path):
        config = durable_config("threaded", tmp_path, fsync="off")
        midas = MidasSystem(patient_count=250, seed=53, config=config)
        try:
            drive_observes(midas.gateway, 3)
        finally:
            midas.gateway.close()
        revived = MidasSystem(patient_count=250, seed=53, config=config)
        try:
            with pytest.raises(DurabilityError, match="recover"):
                revived.gateway.observe(ObserveRequest(KEY, {"min_age": 50}))
            revived.gateway.recover()
            revived.gateway.observe(ObserveRequest(KEY, {"min_age": 50}))
        finally:
            revived.gateway.close()

    def test_recover_on_fresh_directory_is_a_noop(self, tmp_path):
        config = durable_config("threaded", tmp_path)
        midas = MidasSystem(patient_count=250, seed=59, config=config)
        try:
            report = midas.gateway.recover()
            assert not report.recovered
        finally:
            midas.gateway.close()

    def test_recover_without_durability_config_needs_a_path(self, tmp_path):
        donor_config = durable_config("threaded", tmp_path, fsync="off")
        donor = MidasSystem(patient_count=250, seed=61, config=donor_config)
        try:
            drive_observes(donor.gateway, 4)
        finally:
            donor.gateway.close()

        plain = MidasSystem(patient_count=250, seed=61, config=gateway_config("threaded"))
        try:
            with pytest.raises(GatewayConfigError):
                plain.gateway.recover()
            report = plain.gateway.recover(path=tmp_path)
            assert report.recovered and report.rows == 4
            assert plain.gateway.engine.history(KEY).size == 4
        finally:
            plain.gateway.close()

    def test_mismatched_registration_refused(self, tmp_path):
        config = durable_config("threaded", tmp_path, fsync="off")
        midas = MidasSystem(patient_count=250, seed=67, config=config)
        try:
            drive_observes(midas.gateway, 2)
        finally:
            midas.gateway.close()
        # A gateway without the journaled templates cannot host the replay.
        revived = MidasSystem(patient_count=250, seed=67, config=config)
        try:
            revived.gateway._keys.discard(KEY)
            with pytest.raises(DurabilityError, match="re-register"):
                revived.gateway.recover()
        finally:
            revived.gateway._keys.add(KEY)
            revived.gateway.close()

    def test_warm_snapshot_refitted_at_recovery(self, tmp_path):
        config = durable_config("threaded", tmp_path, fsync="off")
        midas = MidasSystem(patient_count=250, seed=71, config=config)
        try:
            drive_observes(midas.gateway, 10)
            midas.gateway.model(KEY)  # snapshot now fresh at the "crash"
            fits_at_crash = midas.gateway.serving_stats.fits
            assert fits_at_crash == 1
        finally:
            midas.gateway.close()
        revived = MidasSystem(patient_count=250, seed=71, config=config)
        try:
            report = revived.gateway.recover()
            assert report.warmed_fits == 1
            fits_after_warm = revived.gateway.serving_stats.fits
            revived.gateway.model(KEY)  # must be a snapshot hit, not a refit
            assert revived.gateway.serving_stats.fits == fits_after_warm
            assert revived.gateway.serving_stats.snapshot_hits >= 1
        finally:
            revived.gateway.close()

    def test_compaction_bounds_segment_count(self, tmp_path):
        config = durable_config(
            "threaded", tmp_path, fsync="off", checkpoint_every=4
        )
        midas = MidasSystem(patient_count=250, seed=73, config=config)
        try:
            drive_observes(midas.gateway, 20)
        finally:
            midas.gateway.close()
        # 20 rows at a 4-record cadence: without compaction 6+ segments
        # would pile up; rotation deletes everything before the live one.
        segments = wal.list_segments(tmp_path)
        assert len(segments) <= 2
        assert (tmp_path / wal.CHECKPOINT_NAME).exists()


# ---------------------------------------------------------------------------
# Audit chain persistence (ROADMAP 4c)


class TestAuditPersistence:
    def _durable_audited(self, tmp_path, seed=79):
        config = gateway_config(
            "threaded",
            governance=GovernanceConfig(),
            durability=DurabilityConfig(dir=tmp_path, fsync="off"),
        )
        return MidasSystem(patient_count=250, seed=seed, config=config)

    def test_export_verify_and_tamper(self, tmp_path):
        midas = self._durable_audited(tmp_path / "walfiles")
        chain_path = tmp_path / "chain.jsonl"
        try:
            drive_observes(midas.gateway, 5)
            head = midas.gateway.audit_log.head_hash
            exported = midas.gateway.audit_log.export(chain_path)
            assert exported == len(midas.gateway.audit_log.records()) == 5
        finally:
            midas.gateway.close()
        assert verify_chain_file(chain_path)
        assert verify_chain_file(chain_path, expected_head=head)
        assert not verify_chain_file(chain_path, expected_head="0" * 64)
        raw = bytearray(chain_path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        chain_path.write_bytes(bytes(raw))
        assert not verify_chain_file(chain_path)

    def test_verify_chain_file_missing_or_empty(self, tmp_path):
        assert not verify_chain_file(tmp_path / "never-written.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert verify_chain_file(empty)  # genesis chain
        assert not verify_chain_file(empty, expected_head="f" * 64)

    def test_chain_survives_recovery_and_still_verifies(self, tmp_path):
        midas = self._durable_audited(tmp_path, seed=83)
        try:
            drive_observes(midas.gateway, 6)
            head_at_crash = midas.gateway.audit_log.head_hash
        finally:
            midas.gateway.close()
        revived = self._durable_audited(tmp_path, seed=83)
        try:
            report = revived.gateway.recover()
            assert report.audit_records == 6
            log = revived.gateway.audit_log
            assert log.head_hash == head_at_crash
            assert verify_chain(log.records())
            # The restored chain keeps appending: new records link onto
            # the recovered head, and the whole thing still verifies.
            drive_observes(revived.gateway, 1, seed=99)
            assert len(log.records()) == 7
            assert verify_chain(log.records())
        finally:
            revived.gateway.close()


# ---------------------------------------------------------------------------
# Satellites: background rebalance ticker + migration throttle


class _ScriptedPolicy:
    """A policy stub returning a fixed plan — isolates apply-time
    behaviour (the throttle) from planning heuristics."""

    def __init__(self, config, plan):
        self.config = config
        self._plan = plan

    def plan(self, shards, templates):
        return self._plan


class TestTopologySatellites:
    def _skewed_service(self):
        service = ShardedEstimationService(sharded_factory, workers=2)
        for key in ("tenant-a", "tenant-b"):
            service.register(key, feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in observation_stream(key, 24):
                service.record(key, tick, features, costs)
        return service

    def test_migration_throttle_zero_applies_no_moves(self):
        plan = RebalancePlan(
            moves=(Migration(key="tenant-a", src=0, dst=1),), reason="scripted"
        )
        with self._skewed_service() as service:
            before = service.route_table()
            outcome = service.rebalance(
                _ScriptedPolicy(RebalanceConfig(max_migrations_per_cycle=0), plan)
            )
            assert outcome.moves == ()
            assert outcome.migration_cap == 0
            assert service.route_table() == before

    def test_migration_throttle_caps_applied_moves(self):
        with self._skewed_service() as service:
            routes = service.route_table()
            moves = tuple(
                Migration(key=key, src=shard, dst=1 - shard)
                for key, shard in sorted(routes.items())
            )
            plan = RebalancePlan(moves=moves, reason="scripted")
            outcome = service.rebalance(
                _ScriptedPolicy(RebalanceConfig(max_migrations_per_cycle=1), plan)
            )
            assert len(outcome.moves) == 1
            assert outcome.migration_cap == 1
            # Unthrottled: the same plan applies every move.
            outcome = service.rebalance(
                _ScriptedPolicy(RebalanceConfig(), plan)
            )
            assert outcome.migration_cap is None

    def test_background_ticker_rebalances_idle_gateway(self, tmp_path):
        config = gateway_config(
            "sharded",
            rebalance=RebalanceConfig(
                cadence_seconds=0.05, cadence_flushes=10_000
            ),
        )
        midas = MidasSystem(patient_count=250, seed=89, config=config)
        gateway = midas.gateway
        try:
            assert gateway._rebalance_thread is not None
            assert gateway._rebalance_thread.daemon
            drive_observes(gateway, 3)
            # No front-door flush ever fires (cadence_flushes is huge):
            # only the wall-clock ticker can run control cycles.
            deadline = time.monotonic() + 5.0
            while gateway._last_rebalance is None and time.monotonic() < deadline:
                time.sleep(0.02)
            assert gateway._last_rebalance is not None
            ticker = gateway._rebalance_thread
        finally:
            gateway.close()
        ticker.join(timeout=5.0)
        assert not ticker.is_alive()
        assert gateway._rebalance_thread is None

    def test_no_ticker_without_cadence_seconds(self):
        config = gateway_config("sharded", rebalance=RebalanceConfig())
        midas = MidasSystem(patient_count=250, seed=97, config=config)
        try:
            assert midas.gateway._rebalance_thread is None
        finally:
            midas.gateway.close()
