"""ModelCache unit tests + DreamStrategy eviction equivalence.

The satellite guarantee: LRU capacity and TTL expiry each force a
re-fit whose chosen window and predictions match the never-evicted
engine, and the hit/miss/eviction/expiration counters are exact.
"""

import numpy as np
import pytest

from repro.cloud.variability import default_federation_load
from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.core import ExecutionHistory, ModelCache
from repro.ires.modelling import DreamStrategy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def drift_history(ticks: int, seed: int = 5) -> ExecutionHistory:
    rng = RngStream(seed, "cache-drift")
    load = default_federation_load(rng.child("load"))
    history = ExecutionHistory(("size", "nodes"), ("time", "money"))
    for tick in range(ticks):
        size = float(rng.uniform(10, 100))
        nodes = float(rng.integers(2, 9))
        factor = load.factor(tick)
        time = factor * (5 + 0.4 * size / nodes) * (1 + float(rng.normal(0, 0.03)))
        money = factor * (0.01 * size + 0.002 * nodes * time)
        history.append(tick, {"size": size, "nodes": nodes}, {"time": time, "money": money})
    return history


class TestModelCacheUnit:
    def test_lru_capacity_evicts_least_recent(self):
        cache = ModelCache(capacity=2)
        cache.get_or_create("a", lambda: "A")
        cache.get_or_create("b", lambda: "B")
        cache.get_or_create("a", lambda: "A2")  # touch a -> b is now LRU
        cache.get_or_create("c", lambda: "C")  # evicts b
        assert "b" not in cache
        assert cache.peek("a") == "A"
        assert cache.peek("c") == "C"
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions, stats.expirations) == (
            1,
            3,
            1,
            0,
        )
        assert stats.size == 2 and len(cache) == 2

    def test_ttl_expires_idle_entries_lazily(self):
        clock = FakeClock()
        cache = ModelCache(capacity=8, ttl_seconds=10.0, clock=clock)
        cache.get_or_create("a", lambda: "A")
        clock.advance(5.0)
        assert cache.get_or_create("a", lambda: "A2") == "A"  # touch resets idle
        clock.advance(9.0)
        assert cache.get_or_create("a", lambda: "A3") == "A"  # 9 < 10: still live
        clock.advance(11.0)
        assert cache.get_or_create("a", lambda: "A4") == "A4"  # expired
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions, stats.expirations) == (
            2,
            2,
            0,
            1,
        )

    def test_purge_expired_counts_exactly(self):
        clock = FakeClock()
        cache = ModelCache(capacity=8, ttl_seconds=1.0, clock=clock)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        clock.advance(0.5)
        cache.get_or_create("b", lambda: 3)  # refresh b only
        clock.advance(0.75)
        assert cache.purge_expired() == 1  # a idle 1.25s, b idle 0.75s
        assert "a" not in cache and "b" in cache
        assert cache.stats.expirations == 1

    def test_anchor_mismatch_is_a_replacing_miss(self):
        cache = ModelCache(capacity=4)
        first_anchor, second_anchor = object(), object()
        cache.get_or_create(1, lambda: "first", anchor=first_anchor)
        value = cache.get_or_create(1, lambda: "second", anchor=second_anchor)
        assert value == "second"
        stats = cache.stats
        # The stale entry's removal is an eviction, the lookup a miss.
        assert (stats.hits, stats.misses, stats.evictions) == (0, 2, 1)

    def test_clear_counts_as_evictions(self):
        cache = ModelCache(capacity=4)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.evictions == 2

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            ModelCache(capacity=0)
        with pytest.raises(ValidationError):
            ModelCache(capacity=4, ttl_seconds=0.0)

    def test_default_clock_is_monkeypatchable_time_fn(self, monkeypatch):
        """Caches built WITHOUT an explicit clock (e.g. deep inside a
        registry factory) read ``repro.core.cache.time_fn`` at every
        lookup, so TTL tests fast-forward instead of sleeping."""
        import repro.core.cache as cache_module

        clock = FakeClock()
        monkeypatch.setattr(cache_module, "time_fn", clock)
        cache = ModelCache(capacity=4, ttl_seconds=10.0)  # no clock argument
        cache.get_or_create("a", lambda: "A")
        clock.advance(9.0)
        assert cache.get_or_create("a", lambda: "A2") == "A"  # still live
        clock.advance(11.0)
        assert cache.get_or_create("a", lambda: "A3") == "A3"  # expired
        assert cache.stats.expirations == 1

    def test_time_fn_reaches_registry_built_caches(self, monkeypatch):
        """The gateway's registry factories construct engine caches
        without exposing the clock; the module hook still governs them."""
        import repro.core.cache as cache_module
        from repro.federation import FederationConfig, create_strategy

        clock = FakeClock()
        monkeypatch.setattr(cache_module, "time_fn", clock)
        strategy = create_strategy(
            FederationConfig(cache_capacity=4, cache_ttl_seconds=30.0)
        )
        history = drift_history(20)
        strategy.fit(history)
        clock.advance(60.0)  # idle past the TTL: instant, no sleeping
        strategy.fit(history)
        stats = strategy.engine_cache.stats
        assert (stats.hits, stats.misses, stats.expirations) == (0, 2, 1)


class TestDreamStrategyEviction:
    """Evicted engines must refit to the *identical* model."""

    @staticmethod
    def _probe_predictions(strategy, history):
        fitted = strategy.fit(history)
        probe = np.array([55.0, 4.0])
        return fitted.training_size, fitted.predict(probe)

    def test_lru_eviction_refits_identical_window_and_predictions(self):
        histories = [drift_history(40, seed=s) for s in range(3)]
        never_evicted = DreamStrategy(r2_required=0.8, max_window=20)
        reference = [self._probe_predictions(never_evicted, h) for h in histories]

        # Capacity 1: every alternation between histories evicts.
        tight = DreamStrategy(
            r2_required=0.8, max_window=20, engine_cache=ModelCache(capacity=1)
        )
        for _ in range(2):  # two rounds so evicted engines are re-created
            for history, (window, predictions) in zip(histories, reference):
                size, repredicted = self._probe_predictions(tight, history)
                assert size == window
                for metric, value in predictions.items():
                    assert repredicted[metric] == pytest.approx(value, rel=1e-12)

        stats = tight.engine_cache.stats
        # 6 fits over 3 histories with capacity 1: every lookup misses
        # and all but the final engine were evicted.
        assert (stats.hits, stats.misses, stats.evictions) == (0, 6, 5)
        assert stats.size == 1

    def test_ttl_expiry_refits_identical_window_and_predictions(self):
        history = drift_history(40, seed=9)
        never_evicted = DreamStrategy(r2_required=0.8, max_window=20)
        window, predictions = self._probe_predictions(never_evicted, history)

        clock = FakeClock()
        expiring = DreamStrategy(
            r2_required=0.8,
            max_window=20,
            engine_cache=ModelCache(capacity=8, ttl_seconds=60.0, clock=clock),
        )
        size, first = self._probe_predictions(expiring, history)
        assert size == window
        clock.advance(120.0)  # idle past the TTL: engine expires
        size, second = self._probe_predictions(expiring, history)
        assert size == window
        for metric, value in predictions.items():
            assert first[metric] == pytest.approx(value, rel=1e-12)
            assert second[metric] == pytest.approx(value, rel=1e-12)

        stats = expiring.engine_cache.stats
        assert (stats.hits, stats.misses, stats.expirations, stats.evictions) == (
            0,
            2,
            1,
            0,
        )

    def test_hot_engine_is_reused_between_fits(self):
        history = drift_history(40, seed=2)
        strategy = DreamStrategy(r2_required=0.8, max_window=20)
        strategy.fit(history)
        strategy.fit(history)
        stats = strategy.engine_cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
