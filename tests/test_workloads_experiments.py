"""Tests for workload runners and experiment drivers (small configs)."""

import pytest

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.experiments import (
    PAPER_TABLE2_ROWS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    format_example31,
    format_mre_table,
    format_table1,
    format_table2,
    run_example31,
    run_table1,
    run_table2,
)
from repro.experiments.mre import (
    ESTIMATOR_ORDER,
    MreExperimentConfig,
    MreExperimentResult,
    evaluate_history,
    run_mre_experiment,
)
from repro.workloads import DRIFT_SCENARIOS, drift_scenario
from repro.workloads.tpch_runner import TpchFederationConfig, TpchFederationWorkload


class TestDriftScenarios:
    def test_all_scenarios_instantiate(self):
        rng = RngStream(1, "drift")
        for name in DRIFT_SCENARIOS:
            load = drift_scenario(name, rng.child(name))
            series = load.series(50)
            assert all(f > 0 for f in series), name

    def test_none_is_flat(self):
        load = drift_scenario("none", RngStream(1, "x"))
        assert load.series(10) == [1.0] * 10

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            drift_scenario("hurricane", RngStream(1, "x"))

    def test_harsh_has_more_variance_than_mild(self):
        import statistics

        mild = drift_scenario("mild", RngStream(5, "m")).series(300)
        harsh = drift_scenario("harsh", RngStream(5, "h")).series(300)
        assert statistics.pstdev(harsh) > statistics.pstdev(mild)


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def workload(self):
        return TpchFederationWorkload(
            TpchFederationConfig(scale_mib=100, queries=("q12",), drift="mild")
        )

    def test_history_size_and_order(self, workload):
        history = workload.build_history("q12", 15)
        assert history.size == 15
        ticks = [obs.tick for obs in history.observations]
        assert ticks == sorted(ticks)

    def test_history_has_positive_times(self, workload):
        history = workload.build_history("q12", 10)
        times = [obs.costs["time"] for obs in history.observations]
        assert all(t > 0 for t in times)

    def test_features_match_enumerator(self, workload):
        history = workload.build_history("q12", 5)
        expected = workload.enumerator.feature_names(("orders", "lineitem"))
        assert history.feature_names == expected

    def test_deterministic_under_seed(self):
        def build():
            wl = TpchFederationWorkload(
                TpchFederationConfig(scale_mib=100, queries=("q12",), seed=9)
            )
            return [o.costs["time"] for o in wl.build_history("q12", 8).observations]

        assert build() == build()

    def test_sampled_sizes_vary(self, workload):
        history = workload.build_history("q12", 12)
        sizes = {round(o.features["size_orders_mib"], 4) for o in history.observations}
        assert len(sizes) > 1


class TestTable1:
    def test_matches_paper(self):
        result = run_table1()
        assert result.matches_paper
        assert len(result.rows) == 11

    def test_format_mentions_match(self):
        text = format_table1(run_table1())
        assert "matches the paper verbatim" in text
        assert "$0.0049" in text


class TestTable2:
    def test_r2_matches_paper_closely(self):
        result = run_table2()
        assert result.max_abs_difference < 1e-3

    def test_threshold_crossing_at_m6(self):
        assert run_table2().first_m_above_08 == 6

    def test_dataset_is_ten_rows(self):
        assert len(PAPER_TABLE2_ROWS) == 10

    def test_format(self):
        text = format_table2(run_table2())
        assert "M = 6" in text


class TestMreExperiment:
    @pytest.fixture(scope="class")
    def result(self) -> MreExperimentResult:
        return run_mre_experiment(
            MreExperimentConfig(
                scale_mib=100,
                train_runs=40,
                test_runs=8,
                seeds=(7,),
                queries=("q12",),
            )
        )

    def test_all_estimators_reported(self, result):
        assert set(result.mre["q12"]) == set(ESTIMATOR_ORDER)

    def test_mre_positive(self, result):
        assert all(v > 0 for v in result.mre["q12"].values())

    def test_dream_window_bounded(self, result):
        assert 6 <= result.dream_window_mean["q12"] <= 4 * 6

    def test_format_contains_paper_values(self, result):
        text = format_mre_table(result, {"q12": PAPER_TABLE3["q12"]}, "t")
        assert "(0.265)" in text

    def test_paper_reference_tables_complete(self):
        for table in (PAPER_TABLE3, PAPER_TABLE4):
            assert set(table) == {"q12", "q13", "q14", "q17"}
            for row in table.values():
                assert set(row) == set(ESTIMATOR_ORDER)

    def test_paper_dream_always_smallest(self):
        """Sanity on the digitised paper numbers themselves."""
        for table in (PAPER_TABLE3, PAPER_TABLE4):
            for row in table.values():
                assert row["DREAM"] == min(row.values())

    def test_evaluate_history_insufficient_data(self):
        from repro.core.history import ExecutionHistory

        history = ExecutionHistory(("a",), ("time",))
        for t in range(4):
            history.append(t, {"a": float(t)}, {"time": 1.0 + t})
        with pytest.raises(ValueError, match="at least"):
            evaluate_history(history, test_runs=3)


class TestExample31:
    def test_count_matches_paper(self):
        result = run_example31(window_sizes=(6, 24), repeats=1)
        assert result.configuration_count == 18_200
        assert result.matches_paper

    def test_estimation_cost_grows_with_window(self):
        result = run_example31(window_sizes=(6, 1536), repeats=2)
        assert result.estimation_seconds[1536] > result.estimation_seconds[6]

    def test_format(self):
        text = format_example31(run_example31(window_sizes=(6, 96), repeats=1))
        assert "18,200" in text or "18200" in text
