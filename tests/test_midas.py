"""Tests for MIDAS: medical data, Example 2.1, the end-to-end system."""

import pytest

from repro.common.rng import RngStream
from repro.ires.policy import UserPolicy
from repro.midas import (
    MEDICAL_QUERIES,
    MedicalDataGenerator,
    MidasSystem,
    example_21_query,
    medical_schema,
)
from repro.plans import Catalog, execute_sql


@pytest.fixture(scope="module")
def tables():
    return MedicalDataGenerator(patient_count=300, seed=5).generate_all()


@pytest.fixture(scope="module")
def midas():
    system = MidasSystem(patient_count=300, seed=5)
    system.warm_up("medical-demographics", runs=10)
    return system


class TestGenerator:
    def test_deterministic(self):
        a = MedicalDataGenerator(100, seed=1).patient().to_rows()
        b = MedicalDataGenerator(100, seed=1).patient().to_rows()
        assert a == b

    def test_schemas(self, tables):
        for name, table in tables.items():
            assert table.schema == medical_schema(name), name

    def test_patient_count(self, tables):
        assert tables["patient"].num_rows == 300

    def test_generalinfo_is_subset_of_patients(self, tables):
        uids = set(tables["patient"].column("uid"))
        info_uids = set(tables["generalinfo"].column("uid"))
        assert info_uids <= uids
        # ~10% of patients lack a GeneralInfo record (mobile patients).
        assert 0.75 <= len(info_uids) / len(uids) <= 0.99

    def test_lab_results_reference_patients(self, tables):
        uids = set(tables["patient"].column("uid"))
        assert set(tables["labresult"].column("uid")) <= uids

    def test_ages_in_range(self, tables):
        assert all(0 <= age < 100 for age in tables["patient"].column("patientage"))

    def test_severity_range(self, tables):
        assert all(1 <= s <= 5 for s in tables["generalinfo"].column("severity"))


class TestMedicalQueries:
    def test_example_21_is_the_paper_query(self):
        sql = example_21_query.render({"min_age": 0})
        assert "patientsex" in sql
        assert "generalnames" in sql
        assert "p.uid = i.uid" in sql

    def test_example_21_executes(self, tables):
        catalog = Catalog(tables.values())
        result = execute_sql(example_21_query.render({"min_age": 0}), catalog)
        # One output row per patient with a GeneralInfo record.
        assert result.num_rows == tables["generalinfo"].num_rows
        assert result.schema.names == ["patientsex", "generalnames"]

    def test_age_filter_monotone(self, tables):
        catalog = Catalog(tables.values())
        young = execute_sql(example_21_query.render({"min_age": 0}), catalog)
        old = execute_sql(example_21_query.render({"min_age": 60}), catalog)
        assert old.num_rows <= young.num_rows

    def test_severe_cases_aggregates(self, tables):
        catalog = Catalog(tables.values())
        sql = MEDICAL_QUERIES["medical-severe-cases"].render(
            {"severity": 4, "min_age": 0}
        )
        result = execute_sql(sql, catalog)
        assert "cases" in result.schema.names
        counts = result.column("cases")
        assert counts == sorted(counts, reverse=True)

    def test_lab_followup_runs(self, tables):
        catalog = Catalog(tables.values())
        sql = MEDICAL_QUERIES["medical-lab-followup"].render({"testname": "glucose"})
        result = execute_sql(sql, catalog)
        assert result.num_rows <= 20  # LIMIT respected

    def test_all_templates_have_two_tables(self):
        for template in MEDICAL_QUERIES.values():
            assert len(template.tables) == 2


class TestMidasSystem:
    def test_query_returns_submission(self, midas):
        result = midas.query("medical-demographics", {"min_age": 30})
        assert result.candidate_count > 0
        assert result.execution.metrics.execution_time_s > 0

    def test_policy_changes_choice_pressure(self, midas):
        fast = midas.query(
            "medical-demographics", {"min_age": 30}, UserPolicy(weights=(1.0, 0.0))
        )
        cheap = midas.query(
            "medical-demographics", {"min_age": 30}, UserPolicy(weights=(0.0, 1.0))
        )
        # With all weight on a metric, the chosen plan minimises that
        # metric's prediction inside its Pareto set.
        fast_times = [c.objectives[0] for c in fast.pareto_set]
        assert fast.predicted[0] == pytest.approx(min(fast_times))
        cheap_money = [c.objectives[1] for c in cheap.pareto_set]
        assert cheap.predicted[1] == pytest.approx(min(cheap_money))

    def test_history_grows(self, midas):
        before = midas.platform.history("medical-demographics").size
        midas.query("medical-demographics")
        assert midas.platform.history("medical-demographics").size == before + 1

    def test_execute_locally_ground_truth(self, midas):
        result = midas.execute_locally("medical-demographics", {"min_age": 0})
        assert result.num_rows > 0

    def test_ticks_monotone(self, midas):
        first = midas.next_tick()
        second = midas.next_tick()
        assert second == first + 1
