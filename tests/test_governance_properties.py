"""Governance property suite: equivalence, admissibility, audit integrity.

Three hypothesis-driven guarantees over the ISSUE 8 governance plane:

1. **Permissive equivalence** (the subsystem's hard gate) — for ANY
   interleaving of submits/observes, a gateway configured with a
   permissive ``GovernanceConfig()`` produces bitwise-identical
   outcomes (reports, error types, ticks, fit/observation counters) to
   a gateway with no governance plane at all, on both serving backends
   and through both the sequential and the batched front-door paths.
2. **Admissibility** — for ANY set of policy rules and any principal,
   no candidate the gateway enumerates (and therefore no plan in any
   Pareto front, a subset of that space) executes at a site the
   compiled constraint forbids; zero-admissible spaces surface as
   ``PolicyViolationError``, never as a silently empty plan set.
3. **Audit integrity** — after ANY traffic mix, the audit chain
   verifies end to end and its per-kind counts reconcile with the
   outcomes the caller saw.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngStream
from repro.federation import (
    DataPolicy,
    FederationError,
    GovernanceConfig,
    PolicyViolationError,
    Principal,
)
from repro.governance.policy import PolicyEngine
from repro.midas import MEDICAL_QUERIES, MidasSystem

from tests.helpers import (
    GATEWAY_KEYS,
    assert_gateway_outcomes_equal,
    build_gateway_traffic,
    gateway_config,
    run_batched,
    run_sequential,
)

gateway_ops = st.sampled_from(["submit", "observe", "observe"])
gateway_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1), gateway_ops),
    min_size=1,
    max_size=24,
)

PRINCIPALS = (
    None,
    Principal("dr-adams", "clinician", "cloud-a"),
    Principal("lab-ext-7", "researcher", "cloud-b", purpose="research"),
    Principal("ops-1", "admin", "cloud-a", purpose="billing"),
)

policies = st.builds(
    DataPolicy,
    dataset=st.sampled_from(
        ["patient", "generalinfo", "labresult", "imagingstudy", "*"]
    ),
    site=st.sampled_from(["cloud-a", "cloud-b"]),
    effect=st.sampled_from(["restricted", "deny"]),
    roles=st.sampled_from([None, ("clinician",), ("researcher",)]),
    purposes=st.sampled_from([None, ("research",)]),
)
rule_sets = st.lists(policies, max_size=4, unique_by=lambda rule: rule.rule_id)


class TestPermissiveEquivalenceProperties:
    """GovernanceConfig() with zero rules must be a bitwise no-op."""

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=8)
    def test_threaded_sequential(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "threaded", seed),
            run_sequential(
                traffic,
                "threaded",
                seed,
                config=gateway_config("threaded", governance=GovernanceConfig()),
            ),
        )

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=6)
    def test_threaded_batched_front_door(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_batched(traffic, "threaded", seed),
            run_batched(
                traffic,
                "threaded",
                seed,
                config=gateway_config("threaded", governance=GovernanceConfig()),
            ),
        )

    @pytest.mark.slow
    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=4)
    def test_sharded_sequential(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", seed),
            run_sequential(
                traffic,
                "sharded",
                seed,
                config=gateway_config("sharded", governance=GovernanceConfig()),
            ),
        )


class TestAdmissibilityProperties:
    """No enumerated candidate ever violates the compiled constraint."""

    @given(
        rules=rule_sets,
        principal=st.sampled_from(PRINCIPALS),
        seed=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=15)
    def test_candidate_space_respects_any_rule_set(self, rules, principal, seed):
        governance = GovernanceConfig(policies=tuple(rules))
        midas = MidasSystem(
            patient_count=250,
            seed=seed,
            config=gateway_config("threaded", governance=governance),
        )
        engine = PolicyEngine(governance)
        rng = RngStream(seed, "governance-admissibility")
        try:
            for key in GATEWAY_KEYS:
                template = MEDICAL_QUERIES[key]
                constraint = engine.constraint_for(
                    principal, template.tables, midas.deployment
                )
                params = template.sample_params(rng)
                try:
                    candidates = midas.gateway.candidates(
                        key, params, principal=principal
                    )
                except PolicyViolationError as error:
                    # A denial is only legitimate when the constraint
                    # admits no execution site at all.
                    assert constraint.impossible, (key, error.rule_ids)
                    assert error.rule_ids
                    continue
                assert candidates, key
                assert all(
                    constraint.permits(candidate.execution.site)
                    for candidate in candidates
                ), key
        finally:
            midas.gateway.close()


@pytest.fixture(scope="module")
def restricted_midas() -> MidasSystem:
    config = gateway_config(
        "threaded",
        governance=GovernanceConfig(
            policies=(DataPolicy("patient", "cloud-a", "restricted"),)
        ),
    )
    midas = MidasSystem(patient_count=250, seed=29, config=config)
    clinician = PRINCIPALS[1]
    for key in GATEWAY_KEYS:
        midas.warm_up(key, runs=10, principal=clinician)
    yield midas
    midas.gateway.close()


class TestParetoFrontProperties:
    @given(
        key=st.sampled_from(GATEWAY_KEYS),
        seed=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=10)
    def test_no_pareto_plan_leaves_the_restricted_site(
        self, restricted_midas, key, seed
    ):
        # Both templates read `patient`, so the unscoped restricted rule
        # pins every admissible plan (and hence the whole Pareto front,
        # for any caller) to cloud-a.
        params = MEDICAL_QUERIES[key].sample_params(RngStream(seed, "pareto"))
        report = restricted_midas.query(key, params, principal=PRINCIPALS[1])
        assert {c.payload.execution.site for c in report.pareto_set} == {"cloud-a"}
        assert report.chosen.execution.site == "cloud-a"


class TestAuditIntegrityProperties:
    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=8)
    def test_chain_verifies_after_any_traffic(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        midas = MidasSystem(
            patient_count=250,
            seed=seed,
            config=gateway_config("threaded", governance=GovernanceConfig()),
        )
        succeeded = 0
        try:
            for op, request in traffic:
                call = (
                    midas.gateway.submit if op == "submit" else midas.gateway.observe
                )
                try:
                    call(request)
                    succeeded += 1
                except FederationError:
                    pass  # e.g. InsufficientHistoryError early in the run
            report = midas.gateway.audit_report()
            assert report.enabled and report.chain_valid
            # Permissive plane, sequential path: exactly one submit or
            # observe record per successful envelope, nothing else.
            assert report.length == succeeded
            assert report.submits + report.observes == succeeded
            assert report.denials == 0 and report.flushes == 0
            assert midas.gateway.audit_log.verify()
        finally:
            midas.gateway.close()
