"""Tests for ML metrics (paper Eq. 11, 14, 15) with hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.ml import (
    mean_absolute_error,
    mean_relative_error,
    r_squared,
    root_mean_squared_error,
    sum_squared_errors,
    total_sum_of_squares,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_sse(self):
        assert sum_squared_errors([1, 2], [2, 4]) == pytest.approx(1 + 4)

    def test_sst(self):
        assert total_sum_of_squares([1, 3]) == pytest.approx(2.0)

    def test_r_squared_perfect(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_r_squared_mean_predictor_is_zero(self):
        actual = [1.0, 2.0, 3.0]
        mean = [2.0, 2.0, 2.0]
        assert r_squared(actual, mean) == pytest.approx(0.0)

    def test_r_squared_constant_target(self):
        assert r_squared([2, 2], [2, 2]) == 1.0
        assert r_squared([2, 2], [3, 3]) == 0.0

    def test_mre_paper_equation(self):
        # (|4-5|/5 + |9-10|/10) / 2 = (0.2 + 0.1) / 2
        assert mean_relative_error([5, 10], [4, 9]) == pytest.approx(0.15)

    def test_mre_rejects_nonpositive_actuals(self):
        with pytest.raises(EstimationError):
            mean_relative_error([0.0], [1.0])

    def test_mae_rmse(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(EstimationError):
            sum_squared_errors([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            r_squared([], [])


class TestProperties:
    @given(st.lists(finite, min_size=2, max_size=30))
    def test_r_squared_never_exceeds_one(self, values):
        predicted = [v + 0.5 for v in values]
        assert r_squared(values, predicted) <= 1.0 + 1e-12

    @given(st.lists(positive, min_size=1, max_size=30))
    def test_mre_zero_for_exact_predictions(self, values):
        assert mean_relative_error(values, values) == 0.0

    @given(st.lists(finite, min_size=1, max_size=30))
    def test_sse_nonnegative(self, values):
        noisy = [v + 1 for v in values]
        assert sum_squared_errors(values, noisy) >= 0.0

    @given(
        st.lists(positive, min_size=1, max_size=20),
        st.floats(min_value=1.01, max_value=3.0),
    )
    def test_mre_scales_with_multiplicative_error(self, values, factor):
        predicted = [v * factor for v in values]
        assert mean_relative_error(values, predicted) == pytest.approx(factor - 1.0)

    @given(st.lists(finite, min_size=2, max_size=30), finite)
    def test_sst_translation_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert total_sum_of_squares(shifted) == pytest.approx(
            total_sum_of_squares(values), rel=1e-6, abs=1e-6
        )
