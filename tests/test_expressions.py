"""Tests for expression evaluation: SQL three-valued logic, dates, LIKE."""

import datetime

import pytest

from repro.common.errors import PlanError
from repro.relational.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    BoundColumn,
    CaseWhen,
    ColumnRef,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    collect_aggregates,
    contains_aggregate,
    evaluate,
    infer_dtype,
    like_regex,
    transform,
    walk,
)
from repro.relational.types import DataType, Interval


def col(i: int, dtype=DataType.INTEGER) -> BoundColumn:
    return BoundColumn(i, dtype)


def lit(v) -> Literal:
    return Literal(v)


class TestArithmetic:
    def test_basic_ops(self):
        row = (6, 3)
        assert evaluate(BinaryOp("+", col(0), col(1)), row) == 9
        assert evaluate(BinaryOp("-", col(0), col(1)), row) == 3
        assert evaluate(BinaryOp("*", col(0), col(1)), row) == 18
        assert evaluate(BinaryOp("/", col(0), col(1)), row) == 2.0

    def test_null_propagates(self):
        row = (None, 3)
        for op in "+-*/":
            assert evaluate(BinaryOp(op, col(0), col(1)), row) is None

    def test_division_by_zero_is_null(self):
        assert evaluate(BinaryOp("/", lit(1), lit(0)), ()) is None

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", lit(5)), ()) == -5
        assert evaluate(UnaryOp("-", lit(None)), ()) is None


class TestDateArithmetic:
    def test_date_plus_interval(self):
        expr = BinaryOp("+", lit(datetime.date(1994, 1, 1)), lit(Interval(years=1)))
        assert evaluate(expr, ()) == datetime.date(1995, 1, 1)

    def test_date_minus_interval(self):
        expr = BinaryOp("-", lit(datetime.date(1994, 3, 1)), lit(Interval(months=2)))
        assert evaluate(expr, ()) == datetime.date(1994, 1, 1)

    def test_date_difference_in_days(self):
        expr = BinaryOp("-", lit(datetime.date(1994, 1, 10)), lit(datetime.date(1994, 1, 1)))
        assert evaluate(expr, ()) == 9

    def test_date_comparison(self):
        expr = BinaryOp("<", lit(datetime.date(1994, 1, 1)), lit(datetime.date(1995, 1, 1)))
        assert evaluate(expr, ()) is True


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        assert evaluate(BinaryOp("=", lit(None), lit(1)), ()) is None
        assert evaluate(BinaryOp("<", lit(1), lit(None)), ()) is None

    def test_and_kleene(self):
        T, F, N = lit(True), lit(False), lit(None)
        assert evaluate(BinaryOp("AND", T, N), ()) is None
        assert evaluate(BinaryOp("AND", F, N), ()) is False
        assert evaluate(BinaryOp("AND", N, F), ()) is False
        assert evaluate(BinaryOp("AND", T, T), ()) is True

    def test_or_kleene(self):
        T, F, N = lit(True), lit(False), lit(None)
        assert evaluate(BinaryOp("OR", T, N), ()) is True
        assert evaluate(BinaryOp("OR", N, T), ()) is True
        assert evaluate(BinaryOp("OR", F, N), ()) is None
        assert evaluate(BinaryOp("OR", F, F), ()) is False

    def test_not_null_is_null(self):
        assert evaluate(UnaryOp("NOT", lit(None)), ()) is None
        assert evaluate(UnaryOp("NOT", lit(True)), ()) is False


class TestPredicates:
    def test_like_percent(self):
        expr = Like(lit("special urgent requests"), "%special%requests%")
        assert evaluate(expr, ()) is True

    def test_like_underscore(self):
        assert evaluate(Like(lit("cat"), "c_t"), ()) is True
        assert evaluate(Like(lit("cart"), "c_t"), ()) is False

    def test_like_escapes_regex_chars(self):
        assert evaluate(Like(lit("a.c"), "a.c"), ()) is True
        assert evaluate(Like(lit("abc"), "a.c"), ()) is False

    def test_like_null_operand(self):
        assert evaluate(Like(lit(None), "%x%"), ()) is None

    def test_not_like(self):
        assert evaluate(Like(lit("plain"), "%special%", negated=True), ()) is True

    def test_like_regex_cached(self):
        assert like_regex("%abc%") is like_regex("%abc%")

    def test_in_list(self):
        expr = InList(col(0, DataType.STRING), (lit("MAIL"), lit("SHIP")))
        assert evaluate(expr, ("MAIL",)) is True
        assert evaluate(expr, ("AIR",)) is False

    def test_in_list_null_semantics(self):
        # value NOT in list but list contains NULL -> NULL
        expr = InList(lit(1), (lit(2), lit(None)))
        assert evaluate(expr, ()) is None
        # value present -> TRUE even with NULLs around
        expr2 = InList(lit(2), (lit(2), lit(None)))
        assert evaluate(expr2, ()) is True

    def test_not_in_with_match(self):
        expr = InList(lit(2), (lit(2), lit(3)), negated=True)
        assert evaluate(expr, ()) is False

    def test_between_inclusive(self):
        assert evaluate(Between(lit(5), lit(5), lit(10)), ()) is True
        assert evaluate(Between(lit(10), lit(5), lit(10)), ()) is True
        assert evaluate(Between(lit(11), lit(5), lit(10)), ()) is False

    def test_between_null(self):
        assert evaluate(Between(lit(None), lit(1), lit(2)), ()) is None

    def test_is_null(self):
        assert evaluate(IsNull(lit(None)), ()) is True
        assert evaluate(IsNull(lit(1)), ()) is False
        assert evaluate(IsNull(lit(None), negated=True), ()) is False


class TestCase:
    def test_first_matching_branch(self):
        expr = CaseWhen(
            (
                (BinaryOp("<", col(0), lit(5)), lit("small")),
                (BinaryOp("<", col(0), lit(50)), lit("medium")),
            ),
            lit("large"),
        )
        assert evaluate(expr, (1,)) == "small"
        assert evaluate(expr, (10,)) == "medium"
        assert evaluate(expr, (100,)) == "large"

    def test_no_else_yields_null(self):
        expr = CaseWhen(((lit(False), lit(1)),))
        assert evaluate(expr, ()) is None

    def test_null_condition_skips_branch(self):
        expr = CaseWhen(((lit(None), lit(1)),), lit(2))
        assert evaluate(expr, ()) == 2


class TestErrorsAndTraversal:
    def test_unbound_column_raises(self):
        with pytest.raises(PlanError, match="unbound"):
            evaluate(ColumnRef("x"), ())

    def test_aggregate_in_row_context_raises(self):
        with pytest.raises(PlanError, match="aggregate"):
            evaluate(AggregateCall("sum", col(0)), (1,))

    def test_walk_covers_children(self):
        expr = BinaryOp("+", col(0), BinaryOp("*", col(1), lit(2)))
        kinds = [type(n).__name__ for n in walk(expr)]
        assert kinds.count("BinaryOp") == 2
        assert kinds.count("BoundColumn") == 2

    def test_contains_and_collect_aggregates(self):
        expr = BinaryOp("/", AggregateCall("sum", col(0)), AggregateCall("count", None))
        assert contains_aggregate(expr)
        assert len(collect_aggregates(expr)) == 2

    def test_transform_replaces_nodes(self):
        expr = BinaryOp("+", col(0), col(1))
        shifted = transform(
            expr,
            lambda e: BoundColumn(e.index + 10, e.dtype) if isinstance(e, BoundColumn) else None,
        )
        assert evaluate(shifted, tuple(range(20))) == 10 + 11


class TestTypeInference:
    def test_comparison_is_boolean(self):
        assert infer_dtype(BinaryOp("<", lit(1), lit(2))) is DataType.BOOLEAN

    def test_division_is_float(self):
        assert infer_dtype(BinaryOp("/", lit(1), lit(2))) is DataType.FLOAT

    def test_mixed_arith_promotes_to_float(self):
        assert infer_dtype(BinaryOp("+", lit(1), lit(2.0))) is DataType.FLOAT

    def test_case_mixed_numeric(self):
        expr = CaseWhen(((lit(True), lit(1)),), lit(2.0))
        assert infer_dtype(expr) is DataType.FLOAT

    def test_count_is_integer(self):
        assert infer_dtype(AggregateCall("count", None)) is DataType.INTEGER

    def test_avg_is_float(self):
        assert infer_dtype(AggregateCall("avg", col(0))) is DataType.FLOAT

    def test_sum_keeps_arg_type(self):
        assert infer_dtype(AggregateCall("sum", col(0, DataType.FLOAT))) is DataType.FLOAT

    def test_date_plus_interval_is_date(self):
        expr = BinaryOp("+", lit(datetime.date(2000, 1, 1)), lit(Interval(days=1)))
        assert infer_dtype(expr) is DataType.DATE
