"""Tests for the logical optimizer: rewrites preserve semantics."""

import pytest

from repro.plans import Catalog, execute_plan
from repro.plans.binder import plan_sql
from repro.plans.logical import Filter, Join, Project, Scan
from repro.plans.optimizer import conjoin, conjuncts, optimize, referenced_indices
from repro.relational.expressions import BinaryOp, BoundColumn, Literal
from repro.relational.types import DataType

from tests.helpers import tiny_catalog

QUERIES = [
    "select o_orderkey, l_shipmode from orders, lineitem "
    "where o_orderkey = l_orderkey and l_quantity > 5",
    "select o_orderkey from orders, lineitem "
    "where o_orderkey = l_orderkey and o_orderpriority = '1-URGENT' "
    "and l_shipmode in ('MAIL', 'RAIL')",
    "select o_orderkey, l_orderkey from orders "
    "left join lineitem on o_orderkey = l_orderkey where o_custkey = 10",
    "select o_custkey, count(*) as c from orders, lineitem "
    "where o_orderkey = l_orderkey group by o_custkey order by c desc",
    "select l_orderkey, l_quantity from lineitem "
    "where l_quantity > (select avg(l2.l_quantity) from lineitem l2 "
    "where l2.l_orderkey = lineitem.l_orderkey) and l_orderkey > 0",
]


class TestEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimized_plan_same_result(self, sql):
        catalog = tiny_catalog()
        plan = plan_sql(sql, catalog)
        raw = execute_plan(plan, catalog).sorted_rows()
        optimized = execute_plan(optimize(plan), catalog).sorted_rows()
        assert raw == optimized


class TestRewriteShapes:
    def test_cross_join_becomes_inner(self):
        catalog = tiny_catalog()
        plan = optimize(
            plan_sql(
                "select o_orderkey from orders, lineitem where o_orderkey = l_orderkey",
                catalog,
            )
        )
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert joins and joins[0].kind == "inner"
        assert joins[0].condition is not None

    def test_single_side_predicates_pushed_below_join(self):
        catalog = tiny_catalog()
        plan = optimize(
            plan_sql(
                "select o_orderkey from orders, lineitem "
                "where o_orderkey = l_orderkey and l_quantity > 5 "
                "and o_custkey = 10",
                catalog,
            )
        )
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert len(joins) == 1
        # Both inputs of the join should now be filtered scans.
        assert isinstance(joins[0].left, Filter)
        assert isinstance(joins[0].right, Filter)

    def test_left_join_right_predicate_not_pushed(self):
        catalog = tiny_catalog()
        plan = optimize(
            plan_sql(
                "select o_orderkey from orders left join lineitem "
                "on o_orderkey = l_orderkey where l_quantity is null",
                catalog,
            )
        )
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert isinstance(joins[0].right, Scan)  # predicate stayed above

    def test_filters_merge(self):
        catalog = tiny_catalog()
        inner = plan_sql("select o_orderkey from orders where o_custkey = 10", catalog)
        # Hand-build Filter(Filter(...)) and check it merges.
        project = inner
        assert isinstance(project, Project)
        double = Filter(
            project.child,
            BinaryOp(">", BoundColumn(0, DataType.INTEGER), Literal(0)),
        )
        stacked = Filter(double, BinaryOp("<", BoundColumn(0, DataType.INTEGER), Literal(10)))
        merged = optimize(stacked)
        assert isinstance(merged, Filter)
        assert not isinstance(merged.child, Filter)


class TestHelpers:
    def test_conjuncts_flatten(self):
        a = BinaryOp(">", BoundColumn(0, DataType.INTEGER), Literal(1))
        b = BinaryOp("<", BoundColumn(1, DataType.INTEGER), Literal(2))
        c = BinaryOp("=", BoundColumn(2, DataType.INTEGER), Literal(3))
        both = BinaryOp("AND", BinaryOp("AND", a, b), c)
        assert conjuncts(both) == [a, b, c]

    def test_conjoin_inverse(self):
        a = BinaryOp(">", BoundColumn(0, DataType.INTEGER), Literal(1))
        b = BinaryOp("<", BoundColumn(1, DataType.INTEGER), Literal(2))
        assert conjuncts(conjoin([a, b])) == [a, b]

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_referenced_indices(self):
        expr = BinaryOp(
            "AND",
            BinaryOp(">", BoundColumn(3, DataType.INTEGER), Literal(1)),
            BinaryOp("=", BoundColumn(7, DataType.INTEGER), BoundColumn(3, DataType.INTEGER)),
        )
        assert referenced_indices(expr) == {3, 7}
