"""Tests for the relational type system and interval arithmetic."""

import datetime

import pytest

from repro.common.errors import SchemaError
from repro.relational.types import DataType, Interval, parse_date


class TestCoercion:
    def test_integer_accepts_int(self):
        assert DataType.INTEGER.coerce(5) == 5

    def test_integer_accepts_whole_float(self):
        assert DataType.INTEGER.coerce(5.0) == 5

    def test_integer_rejects_fractional(self):
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce(5.5)

    def test_integer_rejects_bool(self):
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce(True)

    def test_float_accepts_int(self):
        assert DataType.FLOAT.coerce(5) == 5.0
        assert isinstance(DataType.FLOAT.coerce(5), float)

    def test_string_rejects_number(self):
        with pytest.raises(SchemaError):
            DataType.STRING.coerce(5)

    def test_date_accepts_iso_string(self):
        assert DataType.DATE.coerce("1994-01-05") == datetime.date(1994, 1, 5)

    def test_date_rejects_datetime(self):
        with pytest.raises(SchemaError):
            DataType.DATE.coerce(datetime.datetime(1994, 1, 5, 12, 0))

    def test_null_passes_through_all_types(self):
        for dtype in DataType:
            assert dtype.coerce(None) is None

    def test_boolean(self):
        assert DataType.BOOLEAN.coerce(True) is True
        with pytest.raises(SchemaError):
            DataType.BOOLEAN.coerce(1)

    def test_of_infers(self):
        assert DataType.of(True) is DataType.BOOLEAN
        assert DataType.of(1) is DataType.INTEGER
        assert DataType.of(1.5) is DataType.FLOAT
        assert DataType.of("x") is DataType.STRING
        assert DataType.of(datetime.date(2000, 1, 1)) is DataType.DATE


class TestParseDate:
    def test_valid(self):
        assert parse_date("1998-08-02") == datetime.date(1998, 8, 2)

    def test_invalid_raises_schema_error(self):
        with pytest.raises(SchemaError):
            parse_date("not-a-date")


class TestInterval:
    def test_add_months(self):
        d = datetime.date(1994, 11, 15)
        assert Interval(months=3).add_to(d) == datetime.date(1995, 2, 15)

    def test_add_year(self):
        d = datetime.date(1994, 1, 1)
        assert Interval(years=1).add_to(d) == datetime.date(1995, 1, 1)

    def test_add_days(self):
        d = datetime.date(1994, 12, 30)
        assert Interval(days=5).add_to(d) == datetime.date(1995, 1, 4)

    def test_month_end_clamping(self):
        d = datetime.date(1994, 1, 31)
        assert Interval(months=1).add_to(d) == datetime.date(1994, 2, 28)

    def test_subtract(self):
        d = datetime.date(1995, 2, 15)
        assert Interval(months=3).subtract_from(d) == datetime.date(1994, 11, 15)

    def test_negation(self):
        assert (-Interval(months=2)).months == -2

    def test_subtract_is_inverse_of_add_mid_month(self):
        d = datetime.date(1994, 6, 15)
        for interval in (Interval(months=1), Interval(years=2), Interval(days=40)):
            assert interval.subtract_from(interval.add_to(d)) == d
