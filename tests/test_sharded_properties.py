"""Property/stress suite: sharded serving == in-process serving, always.

The acceptance bar for the cross-process backend is *oracle
equivalence*: for ANY tenant count, shard count and interleaving of
observes / fits / bursts, replaying the identical operation sequence
through :class:`~repro.serving.ShardedEstimationService` and through
the in-process :class:`~repro.serving.EstimationService` must produce

* bitwise-identical window choices (``FittedCostModel.training_size``),
* bitwise-identical predictions on a shared probe matrix
  (``np.array_equal``, no tolerance: the worker runs the same NumPy
  kernels on a bitwise-identical history replica), and
* the same fit/skip outcome for too-short histories.

Hypothesis drives the shapes (non-slow: small pools, fork-cheap); the
``slow`` marker extends the PR 2 stress pattern with forced worker
crashes mid-stream — a respawned worker replays the authoritative
history and must land on the exact same models.

The replay/equivalence machinery lives in :mod:`tests.chaos` (the
ISSUE 7 fault-plan driver — this suite is its fault-free and
crash-only client; full placement chaos lives in
``tests/test_chaos_equivalence.py``) and :mod:`tests.helpers`.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.federation import ObserveRequest, SubmitRequest
from repro.midas import MEDICAL_QUERIES, MidasSystem
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from tests.chaos import Fault, replay_script, run_chaos_script
from tests.helpers import (
    FEATURES,
    GATEWAY_KEYS,
    MAX_WINDOW,
    METRICS,
    R2,
    assert_gateway_outcomes_equal,
    assert_models_bitwise_equal,
    build_gateway_traffic,
    gateway_config,
    observation_stream,
    run_async,
    run_batched,
    run_sequential,
    run_streamed,
    sharded_factory,
)

ops = st.sampled_from(["observe", "observe", "observe", "fit", "burst"])
scripts = st.lists(st.tuples(st.integers(min_value=0, max_value=7), ops), max_size=60)

# Variant that also exercises the coalesced refresh_batch path (PR 6):
# weighted towards observes so batches actually have stale work to do.
batch_ops = st.sampled_from(
    ["observe", "observe", "observe", "fit", "burst", "batch", "batch"]
)
batch_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), batch_ops), max_size=60
)


class TestShardedEquivalenceProperties:
    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=scripts,
    )
    @settings(max_examples=12)
    def test_any_interleaving_matches_in_process_service(
        self, workers, n_templates, script
    ):
        keys = [f"tenant-{i}" for i in range(n_templates)]
        run_chaos_script(script, (), keys=keys, workers=workers)

    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=batch_scripts,
    )
    @settings(max_examples=10)
    def test_refresh_batch_interleavings_match_in_process_service(
        self, workers, n_templates, script
    ):
        """The coalesced fit path (one fit_many RPC per shard) is
        model-for-model, error-for-error identical to the in-process
        base implementation under any interleaving."""
        keys = [f"tenant-{i}" for i in range(n_templates)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(sharded_factory, workers=workers) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay_script(script, keys, sharded, threaded)
            assert sharded.stats.fits == threaded.stats.fits
            assert sharded.stats.batch_refreshes == threaded.stats.batch_refreshes

    def test_counters_match_in_process_service_on_shared_script(self):
        """The sharded service keeps the ServiceStats contract: the same
        deterministic script yields identical parent-side counters."""
        script = [(i % 5, "observe") for i in range(40)] + [
            (0, "fit"),
            (0, "fit"),  # second is a snapshot hit on both services
            (3, "burst"),
        ]
        keys = [f"tenant-{i}" for i in range(5)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(sharded_factory, workers=2) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay_script(script, keys, sharded, threaded)
            for attribute in ("templates", "fits", "snapshot_hits", "observations"):
                assert getattr(sharded.stats, attribute) == getattr(
                    threaded.stats, attribute
                ), attribute


gateway_ops = st.sampled_from(["observe", "observe", "observe", "submit"])
gateway_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1), gateway_ops),
    min_size=1,
    max_size=24,
)


class TestGatewayIngestEquivalenceProperties:
    """ISSUE 6 satellite: ANY interleaving of submits/observes through
    ingest()+drain() is bitwise-identical to the sequential single-call
    replay — reports, error types, ticks, fit and observation counters.

    Submits before any history exercise the failure-parity half of the
    contract: both paths must raise InsufficientHistoryError for the
    same items and still agree on every tick that follows."""

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=8)
    def test_threaded_ingest_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "threaded", seed),
            run_batched(traffic, "threaded", seed),
        )

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=4)
    def test_sharded_ingest_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", seed),
            run_batched(traffic, "sharded", seed),
        )


class TestStreamingEquivalenceProperties:
    """ISSUE 10 satellite: the streaming surfaces — per-segment ticket
    resolution (with done-callbacks), the asyncio client, and the
    pipelined flush — are all bitwise-identical to the sequential
    single-call replay: reports, error types, ticks, fit and
    observation counters.  Segment size and pipelining are drawn by
    hypothesis so subdivided and overlapped flushes get the same
    scrutiny as the default cut."""

    @given(
        script=gateway_scripts,
        seed=st.integers(min_value=1, max_value=10_000),
        segment_max=st.integers(min_value=1, max_value=4),
        pipeline=st.booleans(),
    )
    @settings(max_examples=8)
    def test_threaded_streamed_matches_sequential_replay(
        self, script, seed, segment_max, pipeline
    ):
        traffic = build_gateway_traffic(script, seed)
        config = gateway_config(
            "threaded", ingest_segment_max=segment_max, ingest_pipeline=pipeline
        )
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "threaded", seed),
            run_streamed(traffic, "threaded", seed, config=config),
        )

    @given(
        script=gateway_scripts,
        seed=st.integers(min_value=1, max_value=10_000),
        segment_max=st.integers(min_value=1, max_value=4),
        pipeline=st.booleans(),
    )
    @settings(max_examples=4)
    def test_sharded_streamed_matches_sequential_replay(
        self, script, seed, segment_max, pipeline
    ):
        traffic = build_gateway_traffic(script, seed)
        config = gateway_config(
            "sharded", ingest_segment_max=segment_max, ingest_pipeline=pipeline
        )
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", seed),
            run_streamed(traffic, "sharded", seed, config=config),
        )

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=6)
    def test_threaded_async_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "threaded", seed),
            run_async(traffic, "threaded", seed),
        )

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=3)
    def test_sharded_async_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", seed),
            run_async(traffic, "sharded", seed),
        )


@pytest.mark.slow
class TestStreamedCrashEquivalence:
    """ISSUE 10 satellite: a worker crash *mid-segment* — injected while
    the flush is several segments deep — must stay bitwise invisible on
    the streamed and async paths, exactly as it is on the plain drain
    (respawn + authoritative-history replay)."""

    SEED = 83

    def _traffic(self):
        script = []
        for _ in range(14):  # history for both templates, via the flush
            script += [(0, "observe"), (1, "observe")]
        script += [
            (0, "submit"), (1, "submit"), (0, "observe"),
            (0, "submit"), (1, "observe"), (1, "submit"),
        ]
        return build_gateway_traffic(script, self.SEED)

    @staticmethod
    def _crash_mid_flush(gateway):
        """Arm the 10th executed observe to kill GATEWAY_KEYS[0]'s home
        worker — a few segments into the flush, with earlier segments
        already streamed and plenty of traffic (including submits on the
        victim shard) still pending behind the crash."""
        serving = gateway.engine.serving
        victim = serving.shard_of(GATEWAY_KEYS[0])
        original = gateway.observe
        calls = {"n": 0}

        def crashing_observe(request):
            calls["n"] += 1
            if calls["n"] == 10:
                serving.inject_worker_crash(victim)
            return original(request)

        gateway.observe = crashing_observe

    def test_streamed_worker_crash_mid_segment_is_bitwise_invisible(self):
        traffic = self._traffic()
        config = gateway_config(
            "sharded", ingest_segment_max=3, ingest_pipeline=True
        )
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", self.SEED),
            run_streamed(
                traffic, "sharded", self.SEED,
                config=config, before_drain=self._crash_mid_flush,
            ),
        )

    def test_async_worker_crash_mid_segment_is_bitwise_invisible(self):
        traffic = self._traffic()
        config = gateway_config(
            "sharded", ingest_segment_max=3, ingest_pipeline=True
        )
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", self.SEED),
            run_async(
                traffic, "sharded", self.SEED,
                config=config, before_drain=self._crash_mid_flush,
            ),
        )


@pytest.mark.slow
class TestShardedCrashStress:
    """Extends the PR 2 stress pattern: crashes mid-stream, then bitwise
    equality — replay-on-respawn must be invisible in the numbers.
    Thin client of the ISSUE 7 chaos driver (crash-only fault plans)."""

    TEMPLATES = 16
    BURSTS = 12
    WARMUP = 14

    def test_crash_and_respawn_is_bitwise_invisible(self):
        rng = RngStream(97, "crash-stress")
        keys = [f"tenant-{i:02d}" for i in range(self.TEMPLATES)]
        script = []
        for _ in range(self.WARMUP):
            script += [(i, "observe") for i in range(self.TEMPLATES)]
        faults = []
        for burst in range(self.BURSTS):
            script += [(i, "observe") for i in range(self.TEMPLATES)]
            if burst in (3, 7):  # deterministic mid-run worker kills
                faults.append(
                    Fault(at=len(script), kind="crash", shard=int(rng.integers(0, 4)))
                )
            script.append((0, "burst"))
        log = run_chaos_script(
            script,
            faults,
            keys=keys,
            workers=4,
            seed=41,
            stream_length=self.WARMUP + self.BURSTS,
        )
        assert log.crashes == 2
        # Every injected crash was detected and healed exactly once
        # (a crashed worker with no subsequent traffic heals on the
        # shard's next RPC, which the per-burst refresh guarantees).
        assert log.respawns == 2

    def test_threaded_interleaving_against_sharded_sequential_replay(self):
        """Concurrent parent threads on the sharded service vs a
        sequential in-process replay (the PR 2 stress invariant, now
        across the process boundary)."""
        keys = [f"tenant-{i:02d}" for i in range(8)]
        streams = {key: observation_stream(key, 30, seed=67) for key in keys}
        with ShardedEstimationService(sharded_factory, workers=3) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            barrier = threading.Barrier(len(keys))

            def tenant(key: str) -> None:
                barrier.wait()
                for tick, features, costs in streams[key]:
                    sharded.record(key, tick, features, costs)
                    if tick % 5 == 4:
                        try:
                            sharded.model(key)
                        except EstimationError:
                            pass

            threads = [
                threading.Thread(target=tenant, args=(key,)) for key in keys
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            final_sharded = {key: sharded.model(key) for key in keys}
        replayed = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        for key in keys:
            replayed.register(key, feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in streams[key]:
                replayed.record(key, tick, features, costs)
        for key in keys:
            assert_models_bitwise_equal(key, final_sharded[key], replayed.model(key))

    def test_gateway_drain_survives_worker_crash_mid_batch(self):
        """ISSUE 6: a worker killed between admission and drain() must
        be invisible — the respawned worker replays the authoritative
        history and the drained batch stays bitwise-identical to a
        crash-free sequential replay."""
        seed = 89
        warm_runs = 10
        rng = RngStream(29, "crash-mid-batch")
        traffic = []
        for _ in range(6):
            for key in GATEWAY_KEYS:
                params = MEDICAL_QUERIES[key].sample_params(rng)
                traffic.append(("observe", ObserveRequest(key, params)))
        for key in GATEWAY_KEYS:
            params = MEDICAL_QUERIES[key].sample_params(rng)
            traffic.append(("submit", SubmitRequest(key, params)))

        def warmed(config):
            midas = MidasSystem(patient_count=250, seed=seed, config=config)
            for key in GATEWAY_KEYS:
                midas.warm_up(key, runs=warm_runs)
            return midas

        sequential = warmed(gateway_config("sharded"))
        seq_outcomes = []
        try:
            for op, request in traffic:
                call = (
                    sequential.gateway.submit
                    if op == "submit"
                    else sequential.gateway.observe
                )
                seq_outcomes.append(("ok", call(request)))
            seq_fits = sequential.gateway.serving_stats.fits
        finally:
            sequential.gateway.close()

        batched = warmed(gateway_config("sharded"))
        try:
            for _op, request in traffic:
                batched.gateway.ingest(request)
            serving = batched.gateway.engine.serving
            # Kill the worker owning the first template AFTER admission,
            # BEFORE the flush: the fit_many retry path must heal it.
            serving.inject_worker_crash(serving.shard_of(GATEWAY_KEYS[0]))
            batch = batched.gateway.drain()
            assert batch.failed == 0
            bat_outcomes = [("ok", report) for report in batch.reports]
            assert serving.respawns >= 1
            bat_fits = batched.gateway.serving_stats.fits
        finally:
            batched.gateway.close()

        assert_gateway_outcomes_equal(
            (seq_outcomes, seq_fits, 0), (bat_outcomes, bat_fits, 0)
        )
