"""Property/stress suite: sharded serving == in-process serving, always.

The acceptance bar for the cross-process backend is *oracle
equivalence*: for ANY tenant count, shard count and interleaving of
observes / fits / bursts, replaying the identical operation sequence
through :class:`~repro.serving.ShardedEstimationService` and through
the in-process :class:`~repro.serving.EstimationService` must produce

* bitwise-identical window choices (``FittedCostModel.training_size``),
* bitwise-identical predictions on a shared probe matrix
  (``np.array_equal``, no tolerance: the worker runs the same NumPy
  kernels on a bitwise-identical history replica), and
* the same fit/skip outcome for too-short histories.

Hypothesis drives the shapes (non-slow: small pools, fork-cheap); the
``slow`` marker extends the PR 2 stress pattern with forced worker
crashes mid-stream — a respawned worker replays the authoritative
history and must land on the exact same models.
"""

from functools import partial

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from tests.test_serving import FEATURES, METRICS, observation_stream

R2 = 0.8
MAX_WINDOW = 20

factory = partial(
    dream_strategy, r2_required=R2, max_window=MAX_WINDOW, cache_capacity=64
)

PROBE = np.array([[25.0, 2.0], [55.0, 4.0], [95.0, 8.0], [110.0, 3.0]])


def assert_models_bitwise_equal(key, sharded_model, threaded_model):
    __tracebackhide__ = True
    assert sharded_model.training_size == threaded_model.training_size, key
    sharded_columns = sharded_model.predict_batch(PROBE)
    threaded_columns = threaded_model.predict_batch(PROBE)
    for metric in METRICS:
        assert np.array_equal(
            sharded_columns[metric], threaded_columns[metric]
        ), (key, metric)


def replay(script, keys, sharded, threaded):
    """Drive both services through one interleaving, checking every fit."""
    cursors = {key: 0 for key in keys}
    streams = {key: observation_stream(key, 64, seed=23) for key in keys}
    for index, op in script:
        key = keys[index % len(keys)]
        if op == "observe":
            cursor = cursors[key]
            if cursor >= len(streams[key]):
                continue
            tick, features, costs = streams[key][cursor]
            cursors[key] = cursor + 1
            sharded.record(key, tick, features, costs)
            threaded.record(key, tick, features, costs)
        elif op == "fit":
            try:
                threaded_model = threaded.model(key)
            except EstimationError:
                with pytest.raises(EstimationError):
                    sharded.model(key)
                continue
            assert_models_bitwise_equal(key, sharded.model(key), threaded_model)
        else:  # burst
            sharded_models = sharded.refresh(parallel=True)
            threaded_models = threaded.refresh(parallel=True)
            assert sorted(sharded_models) == sorted(threaded_models)
            for fitted_key, threaded_model in threaded_models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_models[fitted_key], threaded_model
                )
    # Final sweep: every fittable tenant agrees after the whole script.
    final_sharded = sharded.refresh(parallel=False)
    final_threaded = threaded.refresh(parallel=False)
    assert sorted(final_sharded) == sorted(final_threaded)
    for key, threaded_model in final_threaded.items():
        assert_models_bitwise_equal(key, final_sharded[key], threaded_model)


ops = st.sampled_from(["observe", "observe", "observe", "fit", "burst"])
scripts = st.lists(st.tuples(st.integers(min_value=0, max_value=7), ops), max_size=60)


class TestShardedEquivalenceProperties:
    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=scripts,
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_interleaving_matches_in_process_service(
        self, workers, n_templates, script
    ):
        keys = [f"tenant-{i}" for i in range(n_templates)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(factory, workers=workers) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay(script, keys, sharded, threaded)

    def test_counters_match_in_process_service_on_shared_script(self):
        """The sharded service keeps the ServiceStats contract: the same
        deterministic script yields identical parent-side counters."""
        script = [(i % 5, "observe") for i in range(40)] + [
            (0, "fit"),
            (0, "fit"),  # second is a snapshot hit on both services
            (3, "burst"),
        ]
        keys = [f"tenant-{i}" for i in range(5)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(factory, workers=2) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay(script, keys, sharded, threaded)
            for attribute in ("templates", "fits", "snapshot_hits", "observations"):
                assert getattr(sharded.stats, attribute) == getattr(
                    threaded.stats, attribute
                ), attribute


@pytest.mark.slow
class TestShardedCrashStress:
    """Extends the PR 2 stress pattern: crashes mid-stream, then bitwise
    equality — replay-on-respawn must be invisible in the numbers."""

    TEMPLATES = 16
    BURSTS = 12
    WARMUP = 14

    def test_crash_and_respawn_is_bitwise_invisible(self):
        rng = RngStream(97, "crash-stress")
        keys = [f"tenant-{i:02d}" for i in range(self.TEMPLATES)]
        streams = {
            key: observation_stream(key, self.WARMUP + self.BURSTS, seed=41)
            for key in keys
        }
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        crashes = 0
        with ShardedEstimationService(factory, workers=4) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
                for tick, features, costs in streams[key][: self.WARMUP]:
                    sharded.record(key, tick, features, costs)
                    threaded.record(key, tick, features, costs)
            for burst in range(self.BURSTS):
                for key in keys:
                    tick, features, costs = streams[key][self.WARMUP + burst]
                    sharded.record(key, tick, features, costs)
                    threaded.record(key, tick, features, costs)
                if burst in (3, 7):  # deterministic mid-run worker kills
                    victim = int(rng.integers(0, sharded.workers))
                    sharded.inject_worker_crash(victim)
                    crashes += 1
                sharded_models = sharded.refresh(parallel=True)
                threaded_models = threaded.refresh(parallel=True)
                assert sorted(sharded_models) == keys
                assert sorted(threaded_models) == keys
                for key in keys:
                    assert_models_bitwise_equal(
                        key, sharded_models[key], threaded_models[key]
                    )
            assert crashes == 2
            # Every injected crash was detected and healed exactly once
            # (a crashed worker with no subsequent traffic heals on the
            # shard's next RPC, which the per-burst refresh guarantees).
            assert sharded.respawns == crashes
            assert sharded.stats.fits == threaded.stats.fits

    def test_threaded_interleaving_against_sharded_sequential_replay(self):
        """Concurrent parent threads on the sharded service vs a
        sequential in-process replay (the PR 2 stress invariant, now
        across the process boundary)."""
        import threading

        keys = [f"tenant-{i:02d}" for i in range(8)]
        streams = {key: observation_stream(key, 30, seed=67) for key in keys}
        with ShardedEstimationService(factory, workers=3) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            barrier = threading.Barrier(len(keys))

            def tenant(key: str) -> None:
                barrier.wait()
                for tick, features, costs in streams[key]:
                    sharded.record(key, tick, features, costs)
                    if tick % 5 == 4:
                        try:
                            sharded.model(key)
                        except EstimationError:
                            pass

            threads = [
                threading.Thread(target=tenant, args=(key,)) for key in keys
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            final_sharded = {key: sharded.model(key) for key in keys}
        replayed = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        for key in keys:
            replayed.register(key, feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in streams[key]:
                replayed.record(key, tick, features, costs)
        for key in keys:
            assert_models_bitwise_equal(key, final_sharded[key], replayed.model(key))
