"""Property/stress suite: sharded serving == in-process serving, always.

The acceptance bar for the cross-process backend is *oracle
equivalence*: for ANY tenant count, shard count and interleaving of
observes / fits / bursts, replaying the identical operation sequence
through :class:`~repro.serving.ShardedEstimationService` and through
the in-process :class:`~repro.serving.EstimationService` must produce

* bitwise-identical window choices (``FittedCostModel.training_size``),
* bitwise-identical predictions on a shared probe matrix
  (``np.array_equal``, no tolerance: the worker runs the same NumPy
  kernels on a bitwise-identical history replica), and
* the same fit/skip outcome for too-short histories.

Hypothesis drives the shapes (non-slow: small pools, fork-cheap); the
``slow`` marker extends the PR 2 stress pattern with forced worker
crashes mid-stream — a respawned worker replays the authoritative
history and must land on the exact same models.
"""

from functools import partial

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.federation import (
    FederationConfig,
    FederationError,
    ObserveRequest,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from tests.test_serving import FEATURES, METRICS, observation_stream

R2 = 0.8
MAX_WINDOW = 20

factory = partial(
    dream_strategy, r2_required=R2, max_window=MAX_WINDOW, cache_capacity=64
)

PROBE = np.array([[25.0, 2.0], [55.0, 4.0], [95.0, 8.0], [110.0, 3.0]])


def assert_models_bitwise_equal(key, sharded_model, threaded_model):
    __tracebackhide__ = True
    assert sharded_model.training_size == threaded_model.training_size, key
    sharded_columns = sharded_model.predict_batch(PROBE)
    threaded_columns = threaded_model.predict_batch(PROBE)
    for metric in METRICS:
        assert np.array_equal(
            sharded_columns[metric], threaded_columns[metric]
        ), (key, metric)


def replay(script, keys, sharded, threaded):
    """Drive both services through one interleaving, checking every fit."""
    cursors = {key: 0 for key in keys}
    streams = {key: observation_stream(key, 64, seed=23) for key in keys}
    for index, op in script:
        key = keys[index % len(keys)]
        if op == "observe":
            cursor = cursors[key]
            if cursor >= len(streams[key]):
                continue
            tick, features, costs = streams[key][cursor]
            cursors[key] = cursor + 1
            sharded.record(key, tick, features, costs)
            threaded.record(key, tick, features, costs)
        elif op == "fit":
            try:
                threaded_model = threaded.model(key)
            except EstimationError:
                with pytest.raises(EstimationError):
                    sharded.model(key)
                continue
            assert_models_bitwise_equal(key, sharded.model(key), threaded_model)
        elif op == "batch":
            # The coalesced path (one fit_many per shard) against the
            # in-process base implementation of the same call.
            sharded_result = sharded.refresh_batch()
            threaded_result = threaded.refresh_batch()
            assert sorted(sharded_result.models) == sorted(threaded_result.models)
            assert sorted(sharded_result.errors) == sorted(threaded_result.errors)
            assert sharded_result.fitted == threaded_result.fitted
            for fitted_key, threaded_model in threaded_result.models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_result.models[fitted_key], threaded_model
                )
        else:  # burst
            sharded_models = sharded.refresh(parallel=True)
            threaded_models = threaded.refresh(parallel=True)
            assert sorted(sharded_models) == sorted(threaded_models)
            for fitted_key, threaded_model in threaded_models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_models[fitted_key], threaded_model
                )
    # Final sweep: every fittable tenant agrees after the whole script.
    final_sharded = sharded.refresh(parallel=False)
    final_threaded = threaded.refresh(parallel=False)
    assert sorted(final_sharded) == sorted(final_threaded)
    for key, threaded_model in final_threaded.items():
        assert_models_bitwise_equal(key, final_sharded[key], threaded_model)


ops = st.sampled_from(["observe", "observe", "observe", "fit", "burst"])
scripts = st.lists(st.tuples(st.integers(min_value=0, max_value=7), ops), max_size=60)

# Variant that also exercises the coalesced refresh_batch path (PR 6):
# weighted towards observes so batches actually have stale work to do.
batch_ops = st.sampled_from(
    ["observe", "observe", "observe", "fit", "burst", "batch", "batch"]
)
batch_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), batch_ops), max_size=60
)


class TestShardedEquivalenceProperties:
    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=scripts,
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_interleaving_matches_in_process_service(
        self, workers, n_templates, script
    ):
        keys = [f"tenant-{i}" for i in range(n_templates)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(factory, workers=workers) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay(script, keys, sharded, threaded)

    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=batch_scripts,
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_refresh_batch_interleavings_match_in_process_service(
        self, workers, n_templates, script
    ):
        """The coalesced fit path (one fit_many RPC per shard) is
        model-for-model, error-for-error identical to the in-process
        base implementation under any interleaving."""
        keys = [f"tenant-{i}" for i in range(n_templates)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(factory, workers=workers) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay(script, keys, sharded, threaded)
            assert sharded.stats.fits == threaded.stats.fits
            assert sharded.stats.batch_refreshes == threaded.stats.batch_refreshes

    def test_counters_match_in_process_service_on_shared_script(self):
        """The sharded service keeps the ServiceStats contract: the same
        deterministic script yields identical parent-side counters."""
        script = [(i % 5, "observe") for i in range(40)] + [
            (0, "fit"),
            (0, "fit"),  # second is a snapshot hit on both services
            (3, "burst"),
        ]
        keys = [f"tenant-{i}" for i in range(5)]
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        with ShardedEstimationService(factory, workers=2) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
            replay(script, keys, sharded, threaded)
            for attribute in ("templates", "fits", "snapshot_hits", "observations"):
                assert getattr(sharded.stats, attribute) == getattr(
                    threaded.stats, attribute
                ), attribute


GATEWAY_KEYS = ("medical-demographics", "medical-severe-cases")
gateway_ops = st.sampled_from(["observe", "observe", "observe", "submit"])
gateway_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1), gateway_ops),
    min_size=1,
    max_size=24,
)


def build_gateway_traffic(script, seed):
    """Materialise one request object per script entry (shared between
    both systems, so parameter sampling cannot diverge)."""
    rng = RngStream(seed, "gateway-property")
    traffic = []
    for index, op in script:
        key = GATEWAY_KEYS[index]
        params = MEDICAL_QUERIES[key].sample_params(rng)
        if op == "submit":
            traffic.append(("submit", SubmitRequest(key, params)))
        else:
            traffic.append(("observe", ObserveRequest(key, params)))
    return traffic


def gateway_config(backend):
    return FederationConfig(
        serving_backend=backend, shard_workers=2, max_window=24
    )


def run_sequential(traffic, backend, seed):
    """Single-call replay: one outcome per item, plus the fit counter."""
    midas = MidasSystem(patient_count=250, seed=seed, config=gateway_config(backend))
    outcomes = []
    try:
        for op, request in traffic:
            call = midas.gateway.submit if op == "submit" else midas.gateway.observe
            try:
                outcomes.append(("ok", call(request)))
            except FederationError as error:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def run_batched(traffic, backend, seed):
    """The same traffic through ingest() + drain()."""
    midas = MidasSystem(patient_count=250, seed=seed, config=gateway_config(backend))
    outcomes = []
    try:
        for _op, request in traffic:
            midas.gateway.ingest(request)
        batch = midas.gateway.drain()
        for report, error in zip(batch.reports, batch.errors):
            if error is None:
                outcomes.append(("ok", report))
            else:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
    finally:
        midas.gateway.close()
    return outcomes, fits, observations


def assert_gateway_outcomes_equal(sequential, batched):
    __tracebackhide__ = True
    seq_outcomes, seq_fits, seq_observations = sequential
    bat_outcomes, bat_fits, bat_observations = batched
    assert len(seq_outcomes) == len(bat_outcomes)
    for position, (left, right) in enumerate(zip(seq_outcomes, bat_outcomes)):
        assert left[0] == right[0], (position, left[0], right[0])
        if left[0] == "error":
            assert left[1] == right[1], position
            continue
        seq_report, bat_report = left[1], right[1]
        assert type(seq_report) is type(bat_report), position
        assert seq_report.tick == bat_report.tick, position
        if hasattr(seq_report, "predicted_costs"):
            assert seq_report.predicted_costs == bat_report.predicted_costs
            assert seq_report.measured_costs == bat_report.measured_costs
            assert seq_report.chosen.describe() == bat_report.chosen.describe()
        else:
            assert seq_report.measured == bat_report.measured
            assert seq_report.candidate.describe() == bat_report.candidate.describe()
    assert seq_fits == bat_fits
    assert seq_observations == bat_observations


class TestGatewayIngestEquivalenceProperties:
    """ISSUE 6 satellite: ANY interleaving of submits/observes through
    ingest()+drain() is bitwise-identical to the sequential single-call
    replay — reports, error types, ticks, fit and observation counters.

    Submits before any history exercise the failure-parity half of the
    contract: both paths must raise InsufficientHistoryError for the
    same items and still agree on every tick that follows."""

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_threaded_ingest_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "threaded", seed),
            run_batched(traffic, "threaded", seed),
        )

    @given(script=gateway_scripts, seed=st.integers(min_value=1, max_value=10_000))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sharded_ingest_matches_sequential_replay(self, script, seed):
        traffic = build_gateway_traffic(script, seed)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, "sharded", seed),
            run_batched(traffic, "sharded", seed),
        )


@pytest.mark.slow
class TestShardedCrashStress:
    """Extends the PR 2 stress pattern: crashes mid-stream, then bitwise
    equality — replay-on-respawn must be invisible in the numbers."""

    TEMPLATES = 16
    BURSTS = 12
    WARMUP = 14

    def test_crash_and_respawn_is_bitwise_invisible(self):
        rng = RngStream(97, "crash-stress")
        keys = [f"tenant-{i:02d}" for i in range(self.TEMPLATES)]
        streams = {
            key: observation_stream(key, self.WARMUP + self.BURSTS, seed=41)
            for key in keys
        }
        threaded = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        crashes = 0
        with ShardedEstimationService(factory, workers=4) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
                threaded.register(key, feature_names=FEATURES, metrics=METRICS)
                for tick, features, costs in streams[key][: self.WARMUP]:
                    sharded.record(key, tick, features, costs)
                    threaded.record(key, tick, features, costs)
            for burst in range(self.BURSTS):
                for key in keys:
                    tick, features, costs = streams[key][self.WARMUP + burst]
                    sharded.record(key, tick, features, costs)
                    threaded.record(key, tick, features, costs)
                if burst in (3, 7):  # deterministic mid-run worker kills
                    victim = int(rng.integers(0, sharded.workers))
                    sharded.inject_worker_crash(victim)
                    crashes += 1
                sharded_models = sharded.refresh(parallel=True)
                threaded_models = threaded.refresh(parallel=True)
                assert sorted(sharded_models) == keys
                assert sorted(threaded_models) == keys
                for key in keys:
                    assert_models_bitwise_equal(
                        key, sharded_models[key], threaded_models[key]
                    )
            assert crashes == 2
            # Every injected crash was detected and healed exactly once
            # (a crashed worker with no subsequent traffic heals on the
            # shard's next RPC, which the per-burst refresh guarantees).
            assert sharded.respawns == crashes
            assert sharded.stats.fits == threaded.stats.fits

    def test_threaded_interleaving_against_sharded_sequential_replay(self):
        """Concurrent parent threads on the sharded service vs a
        sequential in-process replay (the PR 2 stress invariant, now
        across the process boundary)."""
        import threading

        keys = [f"tenant-{i:02d}" for i in range(8)]
        streams = {key: observation_stream(key, 30, seed=67) for key in keys}
        with ShardedEstimationService(factory, workers=3) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            barrier = threading.Barrier(len(keys))

            def tenant(key: str) -> None:
                barrier.wait()
                for tick, features, costs in streams[key]:
                    sharded.record(key, tick, features, costs)
                    if tick % 5 == 4:
                        try:
                            sharded.model(key)
                        except EstimationError:
                            pass

            threads = [
                threading.Thread(target=tenant, args=(key,)) for key in keys
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            final_sharded = {key: sharded.model(key) for key in keys}
        replayed = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        for key in keys:
            replayed.register(key, feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in streams[key]:
                replayed.record(key, tick, features, costs)
        for key in keys:
            assert_models_bitwise_equal(key, final_sharded[key], replayed.model(key))

    def test_gateway_drain_survives_worker_crash_mid_batch(self):
        """ISSUE 6: a worker killed between admission and drain() must
        be invisible — the respawned worker replays the authoritative
        history and the drained batch stays bitwise-identical to a
        crash-free sequential replay."""
        seed = 89
        warm_runs = 10
        rng = RngStream(29, "crash-mid-batch")
        traffic = []
        for _ in range(6):
            for key in GATEWAY_KEYS:
                params = MEDICAL_QUERIES[key].sample_params(rng)
                traffic.append(("observe", ObserveRequest(key, params)))
        for key in GATEWAY_KEYS:
            params = MEDICAL_QUERIES[key].sample_params(rng)
            traffic.append(("submit", SubmitRequest(key, params)))

        def warmed(config):
            midas = MidasSystem(patient_count=250, seed=seed, config=config)
            for key in GATEWAY_KEYS:
                midas.warm_up(key, runs=warm_runs)
            return midas

        sequential = warmed(gateway_config("sharded"))
        seq_outcomes = []
        try:
            for op, request in traffic:
                call = (
                    sequential.gateway.submit
                    if op == "submit"
                    else sequential.gateway.observe
                )
                seq_outcomes.append(("ok", call(request)))
            seq_fits = sequential.gateway.serving_stats.fits
        finally:
            sequential.gateway.close()

        batched = warmed(gateway_config("sharded"))
        try:
            for _op, request in traffic:
                batched.gateway.ingest(request)
            serving = batched.gateway.engine.serving
            # Kill the worker owning the first template AFTER admission,
            # BEFORE the flush: the fit_many retry path must heal it.
            serving.inject_worker_crash(serving.shard_of(GATEWAY_KEYS[0]))
            batch = batched.gateway.drain()
            assert batch.failed == 0
            bat_outcomes = [("ok", report) for report in batch.reports]
            assert serving.respawns >= 1
            bat_fits = batched.gateway.serving_stats.fits
        finally:
            batched.gateway.close()

        assert_gateway_outcomes_equal(
            (seq_outcomes, seq_fits, 0), (bat_outcomes, bat_fits, 0)
        )
