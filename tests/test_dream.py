"""Tests for DREAM (Algorithm 1), the BML baseline and the history store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream
from repro.core import DreamEstimator, ExecutionHistory, MultiCostModel
from repro.ml import (
    BestModelSelector,
    Dataset,
    MultipleLinearRegression,
    ObservationWindow,
    minimum_observations,
)
from repro.ml.selection import PAPER_WINDOWS


def drifting_history(
    n=80, dimension=2, drift_at=60, slope_shift=4.0, noise=0.05, seed=11
) -> Dataset:
    """Linear data whose coefficients change at ``drift_at`` (regime shift)."""
    rng = RngStream(seed, "drift")
    X = rng.uniform(1, 10, size=(n, dimension))
    y = np.empty(n)
    for i in range(n):
        slope = 2.0 if i < drift_at else 2.0 + slope_shift
        y[i] = 5.0 + slope * X[i].sum() + float(rng.normal(0, noise))
    names = tuple(f"x{j}" for j in range(dimension))
    return Dataset(X, y, names)


class TestHistory:
    def make(self) -> ExecutionHistory:
        return ExecutionHistory(("size_a", "size_b"), ("time", "money"))

    def test_append_and_dataset(self):
        history = self.make()
        history.append(0, {"size_a": 1.0, "size_b": 2.0}, {"time": 10.0, "money": 0.1})
        history.append(1, {"size_a": 2.0, "size_b": 3.0}, {"time": 20.0, "money": 0.2})
        data = history.dataset("time")
        assert data.size == 2
        assert list(data.targets) == [10.0, 20.0]
        assert data.feature_names == ("size_a", "size_b")

    def test_missing_feature_rejected(self):
        history = self.make()
        with pytest.raises(EstimationError, match="missing features"):
            history.append(0, {"size_a": 1.0}, {"time": 1.0, "money": 1.0})

    def test_missing_metric_rejected(self):
        history = self.make()
        with pytest.raises(EstimationError, match="missing metrics"):
            history.append(0, {"size_a": 1.0, "size_b": 1.0}, {"time": 1.0})

    def test_ticks_must_not_decrease(self):
        history = self.make()
        history.append(5, {"size_a": 1.0, "size_b": 1.0}, {"time": 1.0, "money": 1.0})
        with pytest.raises(EstimationError, match="non-decreasing"):
            history.append(4, {"size_a": 1.0, "size_b": 1.0}, {"time": 1.0, "money": 1.0})

    def test_unknown_metric_dataset(self):
        with pytest.raises(EstimationError, match="unknown metric"):
            self.make().dataset("energy")

    def test_datasets_share_features(self):
        history = self.make()
        for t in range(3):
            history.append(t, {"size_a": t, "size_b": t}, {"time": t, "money": t})
        views = history.datasets()
        assert np.array_equal(views["time"].features, views["money"].features)

    def test_datasets_share_one_matrix_object(self):
        """Regression: the matrix is materialised once, not per metric."""
        history = self.make()
        for t in range(4):
            history.append(t, {"size_a": t, "size_b": t}, {"time": t, "money": t})
        views = history.datasets()
        assert views["time"].features is views["money"].features
        assert views["time"].features is history.feature_matrix()
        assert not history.feature_matrix().flags.writeable

    def test_feature_matrix_cache_invalidated_on_append(self):
        history = self.make()
        history.append(0, {"size_a": 1.0, "size_b": 2.0}, {"time": 1.0, "money": 1.0})
        before = history.feature_matrix()
        history.append(1, {"size_a": 3.0, "size_b": 4.0}, {"time": 2.0, "money": 2.0})
        after = history.feature_matrix()
        assert after.shape == (2, 2)
        assert before.shape == (1, 2)

    def test_version_increments_on_append(self):
        history = self.make()
        assert history.version == 0
        history.append(0, {"size_a": 1.0, "size_b": 2.0}, {"time": 1.0, "money": 1.0})
        assert history.version == 1
        observations = history.observations
        assert observations is history.observations  # cached view, no copy
        history.append(1, {"size_a": 1.0, "size_b": 2.0}, {"time": 1.0, "money": 1.0})
        assert history.version == 2
        assert len(history.observations) == 2


class TestDream:
    def test_stops_at_minimum_when_fresh_window_fits(self):
        """Clean linear data: R^2 = 1 at m = L + 2 already."""
        data = drifting_history(n=50, drift_at=50, noise=0.0)  # no drift, no noise
        result = DreamEstimator(r2_required=0.8).fit({"time": data})
        assert result.window_size == minimum_observations(2)
        assert result.converged
        assert result.r_squared["time"] >= 0.99

    def test_grows_until_mmax_on_pure_noise(self):
        rng = RngStream(3, "purenoise")
        data = Dataset(
            rng.uniform(0, 1, size=(30, 2)), rng.uniform(0, 1, size=30), ("a", "b")
        )
        result = DreamEstimator(r2_required=0.999, max_window=12).fit({"time": data})
        assert result.window_size == 12
        assert not result.converged

    def test_window_never_exceeds_history(self):
        data = drifting_history(n=10, noise=5.0)
        result = DreamEstimator(r2_required=0.9999).fit({"time": data})
        assert result.window_size <= 10

    def test_multi_metric_uses_worst_r2(self):
        """The window grows until EVERY metric clears the bar.

        The second metric is unfittable by construction: feature rows are
        duplicated with wildly different targets, so no linear model of
        any window size can explain it.
        """
        clean = drifting_history(n=40, drift_at=40, noise=0.0, seed=1)
        features = np.repeat(clean.features[:20], 2, axis=0)
        conflicting = np.tile([0.0, 100.0], 20)
        unfittable = Dataset(features, conflicting, clean.feature_names)
        clean_features_shared = Dataset(features, features.sum(axis=1), clean.feature_names)
        alone = DreamEstimator(r2_required=0.8, max_window=20).fit(
            {"time": clean_features_shared}
        )
        paired = DreamEstimator(r2_required=0.8, max_window=20).fit(
            {"time": clean_features_shared, "money": unfittable}
        )
        assert alone.converged
        assert paired.window_size >= alone.window_size
        assert not paired.converged
        assert paired.window_size == 20  # grew all the way to Mmax

    def test_per_metric_thresholds(self):
        data = drifting_history(n=40, drift_at=40, noise=0.0)
        estimator = DreamEstimator(r2_required={"time": 0.8})
        assert estimator.fit({"time": data}).converged
        with pytest.raises(EstimationError, match="no R\\^2 requirement"):
            DreamEstimator(r2_required={"money": 0.8}).fit({"time": data})

    def test_requires_l_plus_2_observations(self):
        data = drifting_history(n=3)
        with pytest.raises(EstimationError, match="L \\+ 2"):
            DreamEstimator().fit({"time": data})

    def test_max_window_below_minimum_raises(self):
        """Regression: Mmax below L + 2 used to silently fit a first
        window LARGER than max_window and report it converged."""
        data = drifting_history(n=20, dimension=2)  # minimum window = 4
        estimator = DreamEstimator(r2_required=0.8, max_window=3)
        with pytest.raises(EstimationError, match="max_window=3.*L \\+ 2 = 4"):
            estimator.fit({"time": data})

    def test_converged_metric_is_frozen(self):
        """Regression: a metric that hit its R^2 target must keep that
        model while slower metrics force the window to keep growing."""
        rng = RngStream(17, "freeze")
        n = 12
        # Duplicated feature values so a conflicting metric is unfittable.
        features = np.repeat(np.arange(1.0, n / 2 + 1.0), 2).reshape(n, 1)
        # "fast": garbage before the last 3 rows, exactly linear after.
        fast = np.array(rng.uniform(0, 50, size=n))
        fast[-3:] = 2.0 * features[-3:, 0] + 1.0
        # "slow": conflicting targets on duplicated features — no linear
        # model of any window size fits, so m is dragged up to Mmax.
        slow = np.tile([0.0, 100.0], n // 2)
        datasets = {
            "fast": Dataset(features, fast, ("x",)),
            "slow": Dataset(features, slow, ("x",)),
        }
        result = DreamEstimator(r2_required=0.8, max_window=8).fit(datasets)
        assert result.window_sizes["fast"] == 3  # froze at first convergence
        assert result.window_sizes["slow"] == 8
        assert result.window_size == 8
        assert result.r_squared["fast"] >= 0.8  # did not flip back down
        # The frozen coefficients are the minimum-window fit, not a refit
        # over the final window (which crosses the regime boundary).
        minimum_fit = MultipleLinearRegression().fit(features[-3:], fast[-3:])
        assert np.allclose(
            result.models["fast"].coefficients_, minimum_fit.coefficients_
        )
        # Sanity: refitting "fast" on the final window would NOT clear
        # the bar — without freezing, the converged R^2 would be lost.
        refit = MultipleLinearRegression().fit(features[-8:], fast[-8:])
        assert refit.press_r_squared_ < 0.8

    def test_mismatched_datasets_rejected(self):
        a = drifting_history(n=20)
        b = drifting_history(n=10)
        with pytest.raises(EstimationError, match="share"):
            DreamEstimator().fit({"time": a, "money": b})

    def test_threshold_validation(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            DreamEstimator(r2_required=1.5)
        with pytest.raises(ValidationError):
            DreamEstimator(r2_required={"time": -0.1})

    def test_predict_returns_all_metrics(self):
        data = drifting_history(n=30, drift_at=30, noise=0.0)
        result = DreamEstimator().fit({"time": data, "money": data})
        prediction = result.predict(np.array([5.0, 5.0]))
        assert set(prediction) == {"time", "money"}

    def test_estimate_cost_values_one_shot(self):
        data = drifting_history(n=30, drift_at=30, noise=0.0)
        values = DreamEstimator().estimate_cost_values({"time": data}, np.array([2.0, 2.0]))
        # True function: 5 + 2 * (x1 + x2) = 13.  x = (2, 2) sits below
        # the training window's feature range, so allow a wider band.
        assert values["time"] == pytest.approx(13.0, rel=0.10)

    def test_adapts_after_regime_shift(self):
        """Post-drift, DREAM's fresh window beats the full-history model."""
        data = drifting_history(n=100, drift_at=70, slope_shift=5.0, noise=0.1)
        x_new = np.array([5.0, 5.0])
        true_value = 5.0 + 7.0 * x_new.sum()  # post-drift slope = 2 + 5
        dream = DreamEstimator(r2_required=0.8).fit({"time": data})
        full = MultipleLinearRegression().fit(data.features, data.targets)
        dream_error = abs(dream.predict(x_new)["time"] - true_value)
        full_error = abs(full.predict_one(x_new) - true_value)
        assert dream_error < full_error

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_window_bounds_invariant(self, seed):
        data = drifting_history(n=30, noise=1.0, seed=seed)
        result = DreamEstimator(r2_required=0.9).fit({"time": data})
        assert minimum_observations(2) <= result.window_size <= 30
        assert all(r <= 1.0 + 1e-9 for r in result.r_squared.values())


class TestBestModelSelector:
    def test_picks_linear_on_linear_data(self):
        data = drifting_history(n=40, drift_at=40, noise=0.0)
        selector = BestModelSelector()
        best = selector.fit(data)
        assert best.name == "least-squares"
        assert selector.best_name == "least-squares"

    def test_training_errors_recorded_for_all(self):
        data = drifting_history(n=30)
        selector = BestModelSelector()
        selector.fit(data)
        assert set(selector.training_errors_) == {
            "least-squares",
            "bagging",
            "multilayer-perceptron",
        }

    def test_windows_label(self):
        labels = [w.label() for w in PAPER_WINDOWS]
        assert labels == ["BML_N", "BML_2N", "BML_3N", "BML"]

    def test_window_sizes(self):
        assert ObservationWindow(1).size(4) == 6
        assert ObservationWindow(3).size(4) == 18
        assert ObservationWindow(None).size(4) is None

    def test_window_apply(self):
        data = drifting_history(n=50)
        assert ObservationWindow(1).apply(data).size == minimum_observations(2)
        assert ObservationWindow(None).apply(data).size == 50

    def test_empty_pool_rejected(self):
        with pytest.raises(EstimationError):
            BestModelSelector(pool=[])

    def test_empty_dataset_rejected(self):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0), ("a", "b"))
        with pytest.raises(EstimationError):
            BestModelSelector().fit(empty)


class TestMultiCostModel:
    def make(self) -> MultiCostModel:
        data = drifting_history(n=30, drift_at=30, noise=0.0)
        model = MultipleLinearRegression().fit(data.features, data.targets)
        return MultiCostModel({"time": model}, data.feature_names)

    def test_predict_vector_order(self):
        data = drifting_history(n=30, drift_at=30, noise=0.0)
        time_model = MultipleLinearRegression().fit(data.features, data.targets)
        money_model = MultipleLinearRegression().fit(data.features, data.targets * 0.1)
        multi = MultiCostModel(
            {"time": time_model, "money": money_model}, data.feature_names
        )
        vector = multi.predict_vector(np.array([5.0, 5.0]), ("money", "time"))
        assert vector[1] == pytest.approx(10 * vector[0], rel=1e-6)

    def test_unfitted_model_rejected(self):
        with pytest.raises(EstimationError, match="not fitted"):
            MultiCostModel({"time": MultipleLinearRegression()}, ("a",))

    def test_wrong_feature_count(self):
        multi = self.make()
        with pytest.raises(EstimationError, match="expected 2 features"):
            multi.predict(np.array([1.0]))

    def test_features_dict_to_vector(self):
        multi = self.make()
        vector = multi.features_dict_to_vector({"x0": 1.0, "x1": 2.0})
        assert list(vector) == [1.0, 2.0]
        with pytest.raises(EstimationError, match="missing feature"):
            multi.features_dict_to_vector({"x0": 1.0})
