"""Tests for the MOQP substrate: dominance, Pareto, NSGA-II/G, WSM, Alg. 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.moqp import (
    Candidate,
    EnumeratedProblem,
    Nsga2,
    Nsga2Config,
    NsgaG,
    NsgaGConfig,
    WeightedSumModel,
    best_in_pareto,
    dominance_region,
    dominates,
    hypervolume_2d,
    normalise_objectives,
    pareto_front,
    pareto_front_indices,
    pareto_region,
    strict_dominance_region,
    strictly_dominates,
)
from repro.moqp.dominance import pareto_dominates
from repro.moqp.nsga2 import crowding_distance, fast_non_dominated_sort
from repro.moqp.pareto import spread_2d
from repro.moqp.scalar_ga import ScalarGaConfig, ScalarGeneticOptimizer

vectors2 = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)


class TestDominance:
    def test_dominates_equal_vectors(self):
        assert dominates((1, 2), (1, 2))
        assert not strictly_dominates((1, 2), (1, 2))

    def test_strict_implies_weak(self):
        assert strictly_dominates((1, 1), (2, 2))
        assert dominates((1, 1), (2, 2))

    def test_incomparable(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_pareto_dominates_needs_strict_somewhere(self):
        assert pareto_dominates((1, 2), (1, 3))
        assert not pareto_dominates((1, 2), (1, 2))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            dominates((1,), (1, 2))

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValidationError):
            dominates((), ())

    @given(vectors2, vectors2, vectors2)
    def test_transitivity(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(vectors2, vectors2)
    def test_strict_antisymmetry(self, a, b):
        if strictly_dominates(a, b):
            assert not strictly_dominates(b, a)


class TestParametricRegions:
    """The paper's Dom / StriDom / PaReg over a sampled parameter space."""

    @staticmethod
    def cost(plan, x):
        # plan is (slope, intercept); costs = (time, money) linear in x.
        slope, intercept = plan
        return (slope * x + intercept, (2 - slope) * x + intercept)

    def test_dominance_region_partitions(self):
        samples = [i / 10 for i in range(11)]
        plan_a, plan_b = (1.0, 0.0), (1.0, 1.0)  # b = a + 1 everywhere
        assert dominance_region(plan_a, plan_b, samples, self.cost) == samples
        assert strict_dominance_region(plan_a, plan_b, samples, self.cost) == samples
        assert dominance_region(plan_b, plan_a, samples, self.cost) == []

    def test_pareto_region_excludes_beaten_samples(self):
        samples = [0.0, 0.5, 1.0]
        good = (1.0, 0.0)
        bad = (1.0, 5.0)
        region = pareto_region(bad, [good, bad], samples, self.cost)
        assert region == []
        assert pareto_region(good, [good, bad], samples, self.cost) == samples

    def test_incomparable_plans_share_pareto_region(self):
        # One plan cheap on time, the other cheap on money: neither is
        # strictly dominated anywhere.
        samples = [0.1 * i for i in range(1, 11)]
        fast = (0.5, 0.0)
        cheap = (1.5, 0.0)
        assert pareto_region(fast, [fast, cheap], samples, self.cost) == samples
        assert pareto_region(cheap, [fast, cheap], samples, self.cost) == samples


class TestParetoFront:
    def test_simple_front(self):
        points = [(1, 5), (2, 4), (3, 3), (2, 6), (5, 5)]
        front = pareto_front(points)
        assert (1, 5) in front and (2, 4) in front and (3, 3) in front
        assert (2, 6) not in front and (5, 5) not in front

    def test_duplicates_kept(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert len(pareto_front_indices(points)) == 2

    def test_single_point(self):
        assert pareto_front_indices([(3, 3)]) == [0]

    @given(st.lists(vectors2, min_size=1, max_size=40))
    def test_front_members_mutually_incomparable(self, points):
        front = pareto_front(points)
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not pareto_dominates(a, b)

    @given(st.lists(vectors2, min_size=1, max_size=40))
    def test_every_point_dominated_by_front_or_on_it(self, points):
        front = pareto_front(points)
        for point in points:
            covered = point in front or any(
                pareto_dominates(f, point) for f in front
            )
            assert covered


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([(1, 1)], (2, 2)) == pytest.approx(1.0)

    def test_staircase(self):
        points = [(0, 2), (1, 1), (2, 0)]
        # Reference (3,3): union of rectangles = 3+2+2 = 7? Compute: sorted
        # fronts sweep: (0,2): (3-0)*(3-2)=3; (1,1): (3-1)*(2-1)=2; (2,0):
        # (3-2)*(1-0)=1 -> total 6.
        assert hypervolume_2d(points, (3, 3)) == pytest.approx(6.0)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([(5, 5)], (2, 2)) == 0.0

    def test_dominated_points_do_not_add(self):
        base = hypervolume_2d([(1, 1)], (3, 3))
        with_dominated = hypervolume_2d([(1, 1), (2, 2)], (3, 3))
        assert with_dominated == pytest.approx(base)

    def test_monotone_in_points(self):
        small = hypervolume_2d([(1, 2)], (3, 3))
        more = hypervolume_2d([(1, 2), (2, 0.5)], (3, 3))
        assert more >= small

    def test_bad_reference(self):
        with pytest.raises(ValidationError):
            hypervolume_2d([(1, 1)], (1, 1, 1))

    def test_spread(self):
        assert spread_2d([(0, 0), (2, 3)]) == pytest.approx(5.0)
        assert spread_2d([]) == 0.0


def concave_problem(size: int = 200) -> EnumeratedProblem:
    """A discrete biobjective problem with a concave-ish front."""

    def evaluate(i: int):
        x = i / (size - 1)
        return (x, (1 - x**0.5) ** 2 + 0.002 * ((i * 7919) % 13))

    return EnumeratedProblem(list(range(size)), evaluate, 2)


class TestFastNonDominatedSort:
    def test_layers(self):
        objectives = [(1, 1), (2, 2), (1, 2), (2, 1), (3, 3)]
        fronts = fast_non_dominated_sort(objectives)
        assert fronts[0] == [0]
        assert set(fronts[1]) == {2, 3}  # (1,2) and (2,1): incomparable
        assert fronts[2] == [1]  # (2,2) dominated by both of front 1
        assert fronts[3] == [4]

    def test_all_incomparable_single_front(self):
        objectives = [(1, 3), (2, 2), (3, 1)]
        assert len(fast_non_dominated_sort(objectives)) == 1

    def test_crowding_extremes_infinite(self):
        objectives = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]
        front = [0, 1, 2, 3]
        distances = crowding_distance(objectives, front)
        assert distances[0] == float("inf")
        assert distances[3] == float("inf")
        assert 0 < distances[1] < float("inf")


class TestNsga2:
    def test_returns_nondominated_candidates(self):
        problem = concave_problem()
        front = Nsga2(Nsga2Config(seed=3)).optimise(problem)
        objectives = [c.objectives for c in front]
        assert pareto_front_indices(objectives) == list(range(len(objectives)))

    def test_deterministic_under_seed(self):
        a = Nsga2(Nsga2Config(seed=5)).optimise(concave_problem())
        b = Nsga2(Nsga2Config(seed=5)).optimise(concave_problem())
        assert [c.objectives for c in a] == [c.objectives for c in b]

    def test_covers_most_of_exact_front_hypervolume(self):
        problem = concave_problem()
        exact = problem.evaluate_all()
        exact_vectors = [c.objectives for c in exact]
        normalised = normalise_objectives(exact_vectors)
        exact_hv = hypervolume_2d(
            [normalised[i] for i in pareto_front_indices(exact_vectors)], (1.1, 1.1)
        )
        approx = Nsga2(Nsga2Config(population_size=40, generations=40, seed=3)).optimise(
            concave_problem()
        )
        index = {c.payload: i for i, c in enumerate(exact)}
        approx_hv = hypervolume_2d(
            [normalised[index[c.payload]] for c in approx], (1.1, 1.1)
        )
        assert approx_hv >= 0.85 * exact_hv

    def test_small_problem_handled(self):
        problem = EnumeratedProblem([0, 1], lambda i: (i, 1 - i), 2)
        front = Nsga2(Nsga2Config(population_size=10, generations=5)).optimise(problem)
        assert 1 <= len(front) <= 2


class TestNsgaG:
    def test_returns_nondominated(self):
        front = NsgaG(NsgaGConfig(seed=3)).optimise(concave_problem())
        objectives = [c.objectives for c in front]
        assert pareto_front_indices(objectives) == list(range(len(objectives)))

    def test_deterministic(self):
        a = NsgaG(NsgaGConfig(seed=9)).optimise(concave_problem())
        b = NsgaG(NsgaGConfig(seed=9)).optimise(concave_problem())
        assert [c.objectives for c in a] == [c.objectives for c in b]

    def test_grid_cell_mapping(self):
        from repro.moqp.nsga_g import grid_cell

        cell = grid_cell((0.0, 1.0), [0.0, 0.0], [1.0, 1.0], 4)
        assert cell == (0, 3)
        # Degenerate axis collapses to cell 0.
        assert grid_cell((5.0, 0.5), [5.0, 0.0], [5.0, 1.0], 4)[0] == 0


class TestWsm:
    def test_weights_normalised(self):
        model = WeightedSumModel((2.0, 2.0))
        assert model.weights == (0.5, 0.5)

    def test_scalarise(self):
        model = WeightedSumModel((1.0, 0.0))
        assert model.scalarise((0.3, 0.9)) == pytest.approx(0.3)

    def test_best_index_uses_normalisation(self):
        # Money in dollars (~1e-3) and time in seconds (~1e1): without
        # normalisation time would drown money.
        vectors = [(10.0, 0.009), (11.0, 0.001)]
        model = WeightedSumModel((0.1, 0.9))
        assert model.best_index(vectors) == 1

    def test_invalid_weights(self):
        with pytest.raises(ValidationError):
            WeightedSumModel(())
        with pytest.raises(ValidationError):
            WeightedSumModel((-1.0, 2.0))
        with pytest.raises(ValidationError):
            WeightedSumModel((0.0, 0.0))

    def test_vector_length_check(self):
        with pytest.raises(ValidationError):
            WeightedSumModel((1.0,)).scalarise((1.0, 2.0))

    def test_normalise_degenerate_axis(self):
        rows = normalise_objectives([(1.0, 5.0), (2.0, 5.0)])
        assert rows[0][1] == 0.0 and rows[1][1] == 0.0


class TestBestInPareto:
    def make_set(self):
        return [
            Candidate("fast-expensive", (1.0, 10.0)),
            Candidate("balanced", (5.0, 5.0)),
            Candidate("slow-cheap", (10.0, 1.0)),
        ]

    def test_weights_drive_choice(self):
        pareto = self.make_set()
        assert best_in_pareto(pareto, (1.0, 0.0)).payload == "fast-expensive"
        assert best_in_pareto(pareto, (0.0, 1.0)).payload == "slow-cheap"

    def test_constraints_filter_first(self):
        pareto = self.make_set()
        # Time weight dominates, but the time-optimal plan violates the
        # money bound, so Algorithm 2 must pick inside PB.
        chosen = best_in_pareto(pareto, (1.0, 0.0), constraints=(None, 6.0))
        assert chosen.payload == "balanced"

    def test_unsatisfiable_constraints_fall_back_to_full_set(self):
        pareto = self.make_set()
        chosen = best_in_pareto(pareto, (1.0, 0.0), constraints=(0.1, 0.1))
        assert chosen.payload == "fast-expensive"  # argmin over whole set

    def test_empty_set_rejected(self):
        with pytest.raises(ValidationError):
            best_in_pareto([], (1.0,))

    def test_too_many_constraints_rejected(self):
        with pytest.raises(ValidationError):
            best_in_pareto(self.make_set(), (1.0, 0.0), constraints=(1.0, 1.0, 1.0))


class TestScalarGa:
    def test_finds_near_optimum(self):
        problem = concave_problem()
        exact = problem.evaluate_all()
        model = WeightedSumModel((0.5, 0.5))
        normalised = normalise_objectives([c.objectives for c in exact])
        true_best = min(model.scalarise(v) for v in normalised)
        span = max(model.scalarise(v) for v in normalised) - true_best
        chosen = ScalarGeneticOptimizer((0.5, 0.5), ScalarGaConfig(seed=3)).optimise(
            concave_problem()
        )
        index = {c.payload: i for i, c in enumerate(exact)}
        achieved = model.scalarise(normalised[index[chosen.payload]])
        assert (achieved - true_best) / span < 0.15

    def test_deterministic(self):
        a = ScalarGeneticOptimizer((0.7, 0.3), ScalarGaConfig(seed=4)).optimise(concave_problem())
        b = ScalarGeneticOptimizer((0.7, 0.3), ScalarGaConfig(seed=4)).optimise(concave_problem())
        assert a.objectives == b.objectives


class TestEnumeratedProblem:
    def test_caching_counts_evaluations_once(self):
        problem = concave_problem(50)
        problem.objectives(3)
        problem.objectives(3)
        assert problem.evaluation_count == 1

    def test_bad_objective_arity(self):
        problem = EnumeratedProblem([1], lambda i: (1.0,), 2)
        with pytest.raises(ValidationError):
            problem.objectives(0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            EnumeratedProblem([], lambda i: (1.0,), 1)
