"""Smoke tests: the runnable examples must execute end to end.

The two heaviest examples (full medical federation walk, reduced Table
3) are exercised by their underlying experiment tests elsewhere; here we
run the fast ones completely and import-check the rest, so a broken
public API surfaces in CI rather than in a user's terminal.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "medical_federation.py",
    "tpch_federation_mre.py",
    "dream_window_adaptation.py",
    "pareto_regions.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), name


class TestFastExamplesRun:
    def test_dream_window_adaptation(self, capsys):
        load_example("dream_window_adaptation.py").main()
        out = capsys.readouterr().out
        assert "regime shift" in out
        assert "MRE" in out

    def test_pareto_regions(self, capsys):
        load_example("pareto_regions.py").main()
        out = capsys.readouterr().out
        assert "PaReg" in out
        assert "StriDom" in out

    def test_quickstart(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "Chosen QEP" in out
        assert "Pareto set" in out
