"""ISSUE 7 chaos-equivalence suite: placement chaos is bitwise invisible.

Scripted plans pin down each fault kind (forced migrations mid-burst,
pool grow/shrink mid-stream, a wedged worker healed by the rpc_timeout
guard, a stale-route RPC refused loudly, concurrent migrations under
live traffic); hypothesis then draws whole fault plans — crash /
migrate / resize at arbitrary script points — and replays them through
:func:`tests.chaos.run_chaos_script`, which owns every equivalence
assertion against the single-process oracle.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError, ValidationError
from repro.serving import (
    EstimationService,
    ShardedEstimationService,
    StaleRouteError,
    shard_of,
)
from repro.serving.worker import dream_strategy

from tests.chaos import Fault, run_chaos_script, run_gateway_chaos
from tests.helpers import (
    FEATURES,
    GATEWAY_KEYS,
    MAX_WINDOW,
    METRICS,
    R2,
    assert_models_bitwise_equal,
    observation_stream,
    sharded_factory,
)


def _warm_script(keys, rounds, bursts, op="burst"):
    """``rounds`` observe rounds across all keys, then ``bursts`` cycles
    of one observe round + one collective fit; returns (script, the step
    index of each collective-fit step)."""
    script = []
    for _ in range(rounds):
        script += [(i, "observe") for i in range(len(keys))]
    fit_steps = []
    for _ in range(bursts):
        script += [(i, "observe") for i in range(len(keys))]
        fit_steps.append(len(script))
        script.append((0, op))
    return script, fit_steps


class TestScriptedChaos:
    def test_forced_migrations_mid_burst_are_bitwise_invisible(self):
        keys = [f"tenant-{i}" for i in range(4)]
        script, fit_steps = _warm_script(keys, rounds=8, bursts=4)
        # Away from the CRC32 home shard and back: every move applies.
        homes = {i: shard_of(keys[i], 2) for i in range(len(keys))}
        faults = [
            # Bounce tenants between shards right before collective fits.
            Fault(at=fit_steps[0], kind="migrate", key_index=0, dst=1 - homes[0]),
            Fault(at=fit_steps[1], kind="migrate", key_index=1, dst=1 - homes[1]),
            Fault(at=fit_steps[2], kind="migrate", key_index=0, dst=homes[0]),
            # And once after the whole script, before the final sweep.
            Fault(at=len(script), kind="migrate", key_index=2, dst=1 - homes[2]),
        ]
        log = run_chaos_script(script, faults, keys=keys, workers=2)
        assert log.migrations == 4
        assert log.route_version >= log.migrations
        assert log.crashes == 0 and log.respawns == 0

    def test_pool_resize_grow_and_shrink_mid_stream(self):
        keys = [f"tenant-{i}" for i in range(5)]
        script, fit_steps = _warm_script(keys, rounds=8, bursts=4, op="batch")
        faults = [
            Fault(at=fit_steps[0], kind="resize", workers=4),
            Fault(at=fit_steps[2], kind="resize", workers=1),
        ]
        log = run_chaos_script(script, faults, keys=keys, workers=2)
        assert log.resizes == 2
        assert log.workers == 1
        # The shrink migrated every tenant off the three doomed shards.
        assert log.route_version >= 2

    def test_hung_worker_is_detected_terminated_and_replayed(self):
        keys = ["tenant-0", "tenant-1"]
        script, fit_steps = _warm_script(keys, rounds=10, bursts=2)
        # Wedge tenant-0's home shard right before a collective fit: the
        # burst waits out rpc_timeout, terminates the zombie, respawns
        # and replays.
        faults = [Fault(at=fit_steps[0], kind="hang", shard=shard_of(keys[0], 2))]
        log = run_chaos_script(script, faults, keys=keys, workers=2)
        assert log.hangs == 1
        assert log.respawns == 1

    def test_stale_route_rpc_is_refused_loudly(self):
        """An RPC that reaches the old shard after a route flip must be
        a loud, typed infrastructure error — never a silent skip served
        from a dropped replica."""
        with ShardedEstimationService(sharded_factory, workers=2) as sharded:
            sharded.register("tenant-0", feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in observation_stream("tenant-0", 12):
                sharded.record("tenant-0", tick, features, costs)
            sharded.model("tenant-0")
            src = sharded.shard_of("tenant-0")
            dst = (src + 1) % 2
            assert sharded.migrate("tenant-0", dst)
            assert sharded.shard_of("tenant-0") == dst
            # Hand-deliver a straggler to the old shard (the serving
            # paths themselves resolve routes under the template lock,
            # so only a raced external caller can end up here).
            stale = sharded._shards[src]
            with stale.lock:
                with pytest.raises(StaleRouteError, match="route version"):
                    sharded._call_locked(
                        stale, {"op": "extend", "key": "tenant-0", "rows": []}
                    )
                # The worker survives the refusal and keeps serving.
                assert sharded._call_locked(stale, {"op": "ping"}) == "pong"
            # A migration back re-registers cleanly (tombstone cleared).
            assert sharded.migrate("tenant-0", src)
            assert sharded.model("tenant-0") is not None

    def test_migrate_refused_after_close(self):
        from repro.serving import ShardedServingError

        service = ShardedEstimationService(sharded_factory, workers=2)
        service.register("tenant-0", feature_names=FEATURES, metrics=METRICS)
        service.close()
        with pytest.raises(ShardedServingError, match="closed"):
            service.migrate("tenant-0", 1)
        with pytest.raises(ShardedServingError, match="closed"):
            service.resize(3)

    def test_concurrent_migrations_under_live_traffic(self):
        """Tenant threads record and fit while the control plane bounces
        their replicas between shards; the end state must equal a clean
        sequential in-process replay."""
        keys = [f"tenant-{i}" for i in range(6)]
        streams = {key: observation_stream(key, 24, seed=71) for key in keys}
        with ShardedEstimationService(sharded_factory, workers=3) as sharded:
            for key in keys:
                sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            barrier = threading.Barrier(len(keys) + 1)

            def tenant(key: str) -> None:
                barrier.wait()
                for tick, features, costs in streams[key]:
                    sharded.record(key, tick, features, costs)
                    if tick % 6 == 5:
                        try:
                            sharded.model(key)
                        except EstimationError:
                            pass

            def control_plane() -> None:
                barrier.wait()
                for round_index in range(12):
                    key = keys[round_index % len(keys)]
                    sharded.migrate(key, (round_index + 1) % sharded.workers)

            threads = [threading.Thread(target=tenant, args=(key,)) for key in keys]
            threads.append(threading.Thread(target=control_plane))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sharded.migrations >= 1
            final = {key: sharded.model(key) for key in keys}
        replayed = EstimationService(
            strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
        )
        for key in keys:
            replayed.register(key, feature_names=FEATURES, metrics=METRICS)
            for tick, features, costs in streams[key]:
                replayed.record(key, tick, features, costs)
        for key in keys:
            assert_models_bitwise_equal(key, final[key], replayed.model(key))


class TestGatewayChaos:
    def test_migration_and_crash_between_admission_and_drain(self):
        """Faults between ingest() and drain() must leave the drained
        batch identical to the fault-free sequential replay."""
        script = [(i % 2, "observe") for i in range(12)]
        script += [(0, "submit"), (1, "submit")]
        homes = {i: shard_of(GATEWAY_KEYS[i], 2) for i in range(2)}
        faults = [
            Fault(at=6, kind="migrate", key_index=0, dst=1 - homes[0]),
            Fault(at=12, kind="crash", shard=1),
            Fault(at=len(script), kind="migrate", key_index=1, dst=1 - homes[1]),
        ]
        log = run_gateway_chaos(script, faults, seed=131)
        assert log.crashes == 1
        assert log.migrations == 2


chaos_ops = st.sampled_from(
    ["observe", "observe", "observe", "fit", "burst", "batch"]
)
chaos_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), chaos_ops), max_size=50
)
# Hang is excluded from drawn plans: every hang costs a full rpc_timeout
# wait, which would dominate the suite (its detection path has its own
# scripted test above).
chaos_faults = st.lists(
    st.builds(
        Fault,
        at=st.integers(min_value=0, max_value=55),
        kind=st.sampled_from(["crash", "migrate", "migrate", "resize"]),
        shard=st.integers(min_value=0, max_value=3),
        key_index=st.integers(min_value=0, max_value=7),
        dst=st.integers(min_value=0, max_value=3),
        workers=st.integers(min_value=1, max_value=4),
    ),
    max_size=4,
)


class TestChaosProperties:
    @given(
        workers=st.integers(min_value=1, max_value=3),
        n_templates=st.integers(min_value=1, max_value=4),
        script=chaos_scripts,
        faults=chaos_faults,
    )
    @settings(max_examples=8)
    def test_any_fault_plan_is_bitwise_invisible(
        self, workers, n_templates, script, faults
    ):
        keys = [f"tenant-{i}" for i in range(n_templates)]
        log = run_chaos_script(script, faults, keys=keys, workers=workers)
        # Every crash that traffic touched afterwards healed exactly once.
        assert log.respawns <= log.crashes
        assert log.route_version >= log.migrations

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(at=0, kind="meteor")
        with pytest.raises(ValueError, match="step index"):
            Fault(at=-1, kind="crash")
        # Normalisation bounds are validated at the service boundary.
        with ShardedEstimationService(sharded_factory, workers=1) as sharded:
            sharded.register("tenant-0", feature_names=FEATURES, metrics=METRICS)
            with pytest.raises(ValidationError, match="dst_shard"):
                sharded.migrate("tenant-0", 5)
            with pytest.raises(ValidationError, match="workers"):
                sharded.resize(0)
