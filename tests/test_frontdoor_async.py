"""The asyncio surface of the batched front door.

``await gateway.ingest_async(request)`` / ``drain_async()`` bridge
ticket resolution onto the running event loop: admission happens on the
door's single admission thread (it may block or inline-run a watermark
flush), and each pending result costs one waiter *task* — never one
blocked thread.  These suites pin:

* the canonical create-tasks-then-drain pattern — bitwise-equal to the
  sequential single-call replay on both backends, admissions in task
  creation order;
* standalone awaits — a watermark flush inside ``ingest_async``
  resolves the await without any drain;
* typed error propagation — the item's ``FederationError`` subclass is
  what the ``await`` raises;
* ``BatchObserveRequest`` — one awaited call, a list of row reports;
* lifecycle — ``drain_async`` is a safe no-op on an idle or closed
  door, and N pending tickets share one admission thread.
"""

import asyncio
import threading

import pytest

from repro.common.rng import RngStream
from repro.federation import (
    BatchObserveRequest,
    FederationConfig,
    InsufficientHistoryError,
    ObservationReport,
    ObserveRequest,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

from tests.helpers import (
    assert_gateway_outcomes_equal,
    build_gateway_traffic,
    run_async,
    run_sequential,
)

KEY = "medical-demographics"
KEY2 = "medical-severe-cases"


def make_midas(
    seed: int = 5, runs: int = 10, config: FederationConfig | None = None
) -> MidasSystem:
    midas = MidasSystem(patient_count=300, seed=seed, config=config)
    if runs:
        midas.warm_up(KEY, runs=runs)
    return midas


def observe_request(rng: RngStream, key: str = KEY) -> ObserveRequest:
    return ObserveRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


def submit_request(rng: RngStream, key: str = KEY) -> SubmitRequest:
    return SubmitRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


class TestAsyncEquivalence:
    @pytest.mark.parametrize("backend", ["threaded", "sharded"])
    def test_create_tasks_then_drain_matches_sequential_oracle(self, backend):
        script = [
            (0, "observe"), (1, "observe"), (0, "observe"), (0, "submit"),
            (1, "observe"), (0, "observe"), (1, "submit"), (0, "submit"),
        ]
        traffic = build_gateway_traffic(script, seed=71)
        assert_gateway_outcomes_equal(
            run_sequential(traffic, backend, seed=71),
            run_async(traffic, backend, seed=71),
        )

    def test_admissions_follow_task_creation_order(self):
        midas = make_midas(seed=72)
        gateway = midas.gateway
        rng = RngStream(21, "async-order")
        requests = [observe_request(rng) for _ in range(6)]

        async def drive():
            tasks = [
                asyncio.ensure_future(gateway.ingest_async(r)) for r in requests
            ]
            await gateway.drain_async()
            return await asyncio.gather(*tasks)

        reports = asyncio.run(drive())
        ticks = [report.tick for report in reports]
        assert ticks == sorted(ticks) and len(set(ticks)) == len(ticks)
        gateway.close()


class TestAsyncSurface:
    def test_standalone_await_resolves_via_watermark_flush(self):
        midas = make_midas(
            seed=73, config=FederationConfig(ingest_batch_max=1)
        )
        gateway = midas.gateway
        rng = RngStream(22, "standalone")

        async def drive():
            return await gateway.ingest_async(observe_request(rng))

        report = asyncio.run(drive())
        assert isinstance(report, ObservationReport)
        assert gateway.ingest_stats().size_flushes == 1
        gateway.close()

    def test_typed_error_propagates_through_await(self):
        midas = make_midas(seed=74)
        gateway = midas.gateway
        rng = RngStream(23, "async-error")

        async def drive():
            task = asyncio.ensure_future(
                gateway.ingest_async(submit_request(rng, KEY2))
            )
            await gateway.drain_async()
            with pytest.raises(InsufficientHistoryError):
                await task

        asyncio.run(drive())
        gateway.close()

    def test_batch_observe_awaits_to_row_reports(self):
        midas = make_midas(seed=75)
        gateway = midas.gateway
        rng = RngStream(24, "async-batch")
        rows = tuple(observe_request(rng) for _ in range(3))

        async def drive():
            task = asyncio.ensure_future(
                gateway.ingest_async(BatchObserveRequest(KEY, rows))
            )
            await gateway.drain_async()
            return await task

        reports = asyncio.run(drive())
        assert len(reports) == 3
        assert all(isinstance(r, ObservationReport) for r in reports)
        ticks = [r.tick for r in reports]
        assert ticks == sorted(ticks)
        gateway.close()

    def test_drain_async_on_idle_gateway_is_safe(self):
        midas = make_midas(seed=76)
        gateway = midas.gateway
        batch = asyncio.run(gateway.drain_async())
        assert len(batch) == 0 and batch.trigger == "drain"
        gateway.close()

    def test_drain_async_after_close_falls_back_to_noop(self):
        midas = make_midas(seed=77)
        gateway = midas.gateway
        rng = RngStream(25, "closed")
        gateway.ingest(observe_request(rng))
        gateway.close()
        batch = asyncio.run(gateway.drain_async())
        assert len(batch) == 0 and batch.trigger == "drain"

    def test_pending_tickets_share_one_admission_thread(self):
        midas = make_midas(seed=78)
        gateway = midas.gateway
        rng = RngStream(26, "one-thread")
        requests = [observe_request(rng) for _ in range(16)]

        async def drive():
            tasks = [
                asyncio.ensure_future(gateway.ingest_async(r)) for r in requests
            ]
            await asyncio.sleep(0)  # all 16 admissions are now enqueued
            admit_threads = [
                t.name
                for t in threading.enumerate()
                if t.name.startswith("frontdoor-admit")
            ]
            assert len(admit_threads) == 1
            await gateway.drain_async()
            return await asyncio.gather(*tasks)

        reports = asyncio.run(drive())
        assert len(reports) == 16
        gateway.close()
