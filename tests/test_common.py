"""Tests for repro.common: rng streams, units, validation, table rendering."""

import pytest

from repro.common import (
    GIB,
    MIB,
    RngStream,
    ValidationError,
    bytes_to_gib,
    bytes_to_mib,
    derive_seed,
    gib,
    mib,
    render_table,
    require,
    require_in_range,
    require_positive,
    seconds_to_hours,
    usd,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_accepts_ints(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)
        assert derive_seed(42, 1, 2) != derive_seed(42, 12)


class TestRngStream:
    def test_same_path_same_draws(self):
        a = RngStream(7, "x").uniform(size=5)
        b = RngStream(7, "x").uniform(size=5)
        assert list(a) == list(b)

    def test_child_streams_independent(self):
        parent = RngStream(7, "x")
        child1 = parent.child("one")
        child2 = parent.child("two")
        assert list(child1.uniform(size=3)) != list(child2.uniform(size=3))

    def test_child_derivation_stable(self):
        a = RngStream(7, "x").child("y").uniform()
        b = RngStream(7, "x").child("y").uniform()
        assert a == b

    def test_integers_bounds(self):
        stream = RngStream(7, "ints")
        values = stream.integers(3, 9, size=200)
        assert all(3 <= v < 9 for v in values)

    def test_choice_without_replacement(self):
        stream = RngStream(7, "choice")
        picked = stream.choice(10, size=10, replace=False)
        assert sorted(int(i) for i in picked) == list(range(10))


class TestUnits:
    def test_mib_round_trip(self):
        assert bytes_to_mib(mib(100)) == pytest.approx(100)

    def test_gib_round_trip(self):
        assert bytes_to_gib(gib(2)) == pytest.approx(2)

    def test_gib_is_1024_mib(self):
        assert GIB == 1024 * MIB

    def test_seconds_to_hours(self):
        assert seconds_to_hours(7200) == pytest.approx(2.0)

    def test_usd_small_amounts_four_decimals(self):
        assert usd(0.0049) == "$0.0049"

    def test_usd_large_amounts_two_decimals(self):
        assert usd(12.5) == "$12.50"


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_positive_returns_value(self):
        assert require_positive(3.5, "x") == 3.5

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive(0, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0.0, 1.0, "r") == 0.5
        with pytest.raises(ValidationError):
            require_in_range(1.5, 0.0, 1.0, "r")


class TestRenderTable:
    def test_renders_headers_and_rows(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "a" in lines[2]
        assert "bb" in lines[3]

    def test_floats_three_decimals(self):
        out = render_table(["v"], [[0.12345]])
        assert "0.123" in out

    def test_title_line(self):
        out = render_table(["v"], [[1]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
