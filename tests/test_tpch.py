"""Tests for the TPC-H substrate: generator, dataset scaling, queries."""

import datetime

import pytest

from repro.common.rng import RngStream
from repro.plans import execute_sql
from repro.tpch import (
    TPCH_QUERIES,
    TpchDataset,
    TpchGenerator,
    rows_per_table,
    tpch_schema,
)
from repro.tpch.schema import DBGEN_ROW_WIDTH_BYTES, ROWS_AT_SF1
from repro.tpch.text import SPECIAL_REQUESTS_FRACTION

SMALL_SF = 0.0005


@pytest.fixture(scope="module")
def dataset() -> TpchDataset:
    return TpchDataset(scale_mib=100, physical_scale_factor=SMALL_SF, seed=7)


class TestRowCounts:
    def test_fixed_tables(self):
        counts = rows_per_table(0.01)
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_scaling(self):
        counts = rows_per_table(0.01)
        assert counts["orders"] == 15_000
        assert counts["customer"] == 1_500

    def test_rejects_zero_scale(self):
        with pytest.raises(Exception):
            rows_per_table(0)


class TestGenerator:
    def test_deterministic(self):
        a = TpchGenerator(SMALL_SF, seed=3).generate_all()
        b = TpchGenerator(SMALL_SF, seed=3).generate_all()
        for name in a:
            assert a[name].to_rows() == b[name].to_rows(), name

    def test_seed_changes_data(self):
        a = TpchGenerator(SMALL_SF, seed=3).orders_and_lineitem()[0]
        b = TpchGenerator(SMALL_SF, seed=4).orders_and_lineitem()[0]
        assert a.to_rows() != b.to_rows()

    def test_schemas_match(self, dataset):
        for name, table in dataset.tables.items():
            assert table.schema == tpch_schema(name), name

    def test_lineitem_foreign_keys_valid(self, dataset):
        order_keys = set(dataset.tables["orders"].column("o_orderkey"))
        part_count = dataset.tables["part"].num_rows
        lineitem = dataset.tables["lineitem"]
        assert set(lineitem.column("l_orderkey")) <= order_keys
        assert all(1 <= pk <= part_count for pk in lineitem.column("l_partkey"))

    def test_orders_reference_customers(self, dataset):
        customer_count = dataset.tables["customer"].num_rows
        assert all(
            1 <= ck <= customer_count
            for ck in dataset.tables["orders"].column("o_custkey")
        )

    def test_date_invariants(self, dataset):
        lineitem = dataset.tables["lineitem"]
        ship = lineitem.column("l_shipdate")
        receipt = lineitem.column("l_receiptdate")
        assert all(r > s for s, r in zip(ship, receipt))

    def test_quantity_range(self, dataset):
        quantities = dataset.tables["lineitem"].column("l_quantity")
        assert all(1 <= q <= 50 for q in quantities)

    def test_order_status_consistent_with_lines(self, dataset):
        lineitem = dataset.tables["lineitem"]
        status_by_order: dict[int, set] = {}
        for key, status in zip(
            lineitem.column("l_orderkey"), lineitem.column("l_linestatus")
        ):
            status_by_order.setdefault(key, set()).add(status)
        orders = dataset.tables["orders"]
        for key, status in zip(
            orders.column("o_orderkey"), orders.column("o_orderstatus")
        ):
            lines = status_by_order[key]
            if status == "F":
                assert lines == {"F"}
            elif status == "O":
                assert lines == {"O"}
            else:
                assert lines == {"F", "O"}

    def test_special_requests_fraction_in_comments(self):
        # Large enough sample to test the Q13 predicate's target fraction.
        orders = TpchGenerator(0.002, seed=11).orders_and_lineitem()[0]
        comments = orders.column("o_comment")
        matched = sum(
            1 for c in comments if "special" in c and "requests" in c.split("special", 1)[1]
        )
        fraction = matched / len(comments)
        assert SPECIAL_REQUESTS_FRACTION * 0.5 < fraction < SPECIAL_REQUESTS_FRACTION * 2

    def test_priorities_all_appear(self, dataset):
        priorities = set(dataset.tables["orders"].column("o_orderpriority"))
        assert "1-URGENT" in priorities and "5-LOW" in priorities


class TestDatasetScaling:
    def test_scale_factor_from_mib(self):
        ds = TpchDataset(scale_mib=1024, physical_scale_factor=SMALL_SF)
        assert ds.scale_factor == pytest.approx(1.1, abs=0.25)

    def test_logical_rows_scale_linearly(self):
        small = TpchDataset(100, physical_scale_factor=SMALL_SF)
        large = TpchDataset(1024, physical_scale_factor=SMALL_SF)
        ratio = (
            large.logical_stats["orders"].row_count
            / small.logical_stats["orders"].row_count
        )
        assert ratio == pytest.approx(10.24, rel=0.01)

    def test_logical_sizes_use_dbgen_widths(self, dataset):
        stats = dataset.logical_stats["orders"]
        assert stats.size_bytes == stats.row_count * DBGEN_ROW_WIDTH_BYTES["orders"]

    def test_key_columns_distinct_scales(self, dataset):
        logical = dataset.logical_stats["orders"].column("o_orderkey")
        physical = dataset.physical_stats["orders"].column("o_orderkey")
        assert logical.distinct_count > physical.distinct_count

    def test_categorical_distinct_preserved(self, dataset):
        logical = dataset.logical_stats["orders"].column("o_orderpriority")
        physical = dataset.physical_stats["orders"].column("o_orderpriority")
        assert logical.distinct_count == physical.distinct_count

    def test_fixed_tables_not_scaled(self, dataset):
        assert dataset.logical_stats["nation"].row_count == 25

    def test_catalog_has_all_tables(self, dataset):
        assert set(dataset.catalog.table_names()) == set(ROWS_AT_SF1)


class TestQueries:
    @pytest.mark.parametrize("key", list(TPCH_QUERIES))
    def test_query_executes(self, dataset, key):
        template = TPCH_QUERIES[key]
        rng = RngStream(5, "params", key)
        sql = template.render(rng=rng)
        result = execute_sql(sql, dataset.catalog)
        assert result.num_rows >= 0  # executes without error

    def test_q12_returns_two_modes(self, dataset):
        sql = TPCH_QUERIES["q12"].render(
            {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        result = execute_sql(sql, dataset.catalog)
        assert result.num_rows <= 2
        assert set(result.schema.names) == {"l_shipmode", "high_line_count", "low_line_count"}

    def test_q13_includes_zero_order_customers(self, dataset):
        sql = TPCH_QUERIES["q13"].render({"word1": "special", "word2": "requests"})
        result = execute_sql(sql, dataset.catalog)
        counts = dict(result.to_rows())
        customers = dataset.tables["customer"].num_rows
        assert sum(counts.values()) == customers

    def test_q14_is_percentage(self, dataset):
        sql = TPCH_QUERIES["q14"].render({"date": "1994-03-01"})
        result = execute_sql(sql, dataset.catalog)
        value = result.row(0)[0]
        if value is not None:  # empty month possible at tiny physical scale
            assert 0.0 <= value <= 100.0

    def test_q17_single_row(self, dataset):
        sql = TPCH_QUERIES["q17"].render({"brand": "Brand#11", "container": "SM BOX"})
        result = execute_sql(sql, dataset.catalog)
        assert result.num_rows == 1

    def test_render_requires_params_or_rng(self):
        with pytest.raises(Exception):
            TPCH_QUERIES["q12"].render()

    def test_param_generators_vary(self):
        rng = RngStream(5, "vary")
        samples = {tuple(sorted(TPCH_QUERIES["q12"].sample_params(rng).items())) for _ in range(10)}
        assert len(samples) > 1

    def test_tables_attribute_matches_paper(self):
        assert TPCH_QUERIES["q12"].tables == ("orders", "lineitem")
        assert TPCH_QUERIES["q13"].tables == ("customer", "orders")
        assert TPCH_QUERIES["q14"].tables == ("lineitem", "part")
        assert TPCH_QUERIES["q17"].tables == ("lineitem", "part")
