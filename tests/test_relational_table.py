"""Tests for Schema, Table and CSV round-trips."""

import datetime

import pytest

from repro.common.errors import SchemaError
from repro.relational import Column, DataType, Schema, Table
from repro.relational.csv_io import read_csv, write_csv
from repro.relational.table import infer_schema, table_from_dicts


def sample_schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INTEGER, nullable=False),
            Column("name", DataType.STRING),
            Column("score", DataType.FLOAT),
            Column("joined", DataType.DATE),
        ]
    )


def sample_table() -> Table:
    return Table.from_rows(
        "people",
        sample_schema(),
        [
            [1, "ann", 3.5, datetime.date(2020, 1, 1)],
            [2, "bob", None, datetime.date(2021, 6, 15)],
            [3, None, 1.25, None],
        ],
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", DataType.INTEGER), Column("A", DataType.FLOAT)])

    def test_index_of_case_insensitive(self):
        schema = sample_schema()
        assert schema.index_of("NAME") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError, match="no column"):
            sample_schema().index_of("missing")

    def test_fields_carry_qualifier(self):
        fields = sample_schema().fields("p")
        assert all(f.qualifier == "p" for f in fields)

    def test_field_matches_unqualified(self):
        field = sample_schema().fields("p")[0]
        assert field.matches(None, "ID")
        assert field.matches("p", "id")
        assert not field.matches("q", "id")

    def test_row_width_positive(self):
        assert sample_schema().row_width_bytes() > 0


class TestTable:
    def test_from_rows_coerces(self):
        table = Table.from_rows(
            "t", Schema([Column("x", DataType.FLOAT)]), [[1], [2.5]]
        )
        assert table.column("x") == [1.0, 2.5]

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", sample_schema(), [[1, "a"]])

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", Schema([Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)]), [[1], []])

    def test_rows_round_trip(self):
        table = sample_table()
        assert list(table.rows())[1] == (2, "bob", None, datetime.date(2021, 6, 15))

    def test_num_rows(self):
        assert sample_table().num_rows == 3

    def test_select_columns_order(self):
        selected = sample_table().select_columns(["score", "id"])
        assert selected.schema.names == ["score", "id"]
        assert selected.row(0) == (3.5, 1)

    def test_select_columns_does_not_alias_storage(self):
        table = sample_table()
        selected = table.select_columns(["id"])
        selected.column("id").append(99)
        assert table.num_rows == 3

    def test_take(self):
        taken = sample_table().take([2, 0])
        assert [r[0] for r in taken.rows()] == [3, 1]

    def test_head(self):
        assert sample_table().head(2).num_rows == 2
        assert sample_table().head(10).num_rows == 3

    def test_size_bytes_scales_with_rows(self):
        table = sample_table()
        assert table.size_bytes() == 3 * table.schema.row_width_bytes()

    def test_sorted_rows_nulls_last(self):
        rows = sample_table().select_columns(["name"]).sorted_rows()
        assert rows[-1] == (None,)

    def test_empty_like(self):
        empty = Table.empty_like(sample_table())
        assert empty.num_rows == 0
        assert empty.schema == sample_table().schema


class TestDictConstruction:
    def test_table_from_dicts(self):
        schema = Schema([Column("a", DataType.INTEGER), Column("b", DataType.STRING)])
        table = table_from_dicts("t", schema, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.to_rows() == [(1, "x"), (2, "y")]

    def test_missing_key_rejected(self):
        schema = Schema([Column("a", DataType.INTEGER), Column("b", DataType.STRING)])
        with pytest.raises(SchemaError, match="missing columns"):
            table_from_dicts("t", schema, [{"a": 1}])

    def test_infer_schema(self):
        schema = infer_schema("t", [{"a": None, "b": "x"}, {"a": 2, "b": "y"}])
        assert schema.column("a").dtype is DataType.INTEGER
        assert schema.column("b").dtype is DataType.STRING

    def test_infer_schema_all_null_column_rejected(self):
        with pytest.raises(SchemaError):
            infer_schema("t", [{"a": None}])


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        table = sample_table()
        path = tmp_path / "people.csv"
        write_csv(table, path)
        loaded = read_csv(path, table.schema, "people")
        assert loaded.to_rows() == table.to_rows()

    def test_header_mismatch_rejected(self, tmp_path):
        table = sample_table()
        path = tmp_path / "people.csv"
        write_csv(table, path)
        wrong = Schema([Column("zz", DataType.INTEGER)])
        with pytest.raises(SchemaError):
            read_csv(path, wrong)

    def test_null_encoding(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(sample_table(), path)
        loaded = read_csv(path, sample_schema())
        assert loaded.row(2)[1] is None
        assert loaded.row(2)[3] is None
