"""Status-envelope round-trips: ``dataclasses.asdict`` and back.

ISSUE 8 satellite: the gateway's status reports — ``TopologyReport``,
``ServingReport``, ``AuditReport`` — are plain nested frozen dataclasses,
so an operator can serialise one with ``dataclasses.asdict`` (e.g. into
a JSON status endpoint) and a reader can reconstruct a field-for-field
equal envelope from the dict alone.  That contract is what keeps the
reports wire-friendly; this suite pins it for both synthetic
fully-populated envelopes and live gateway-produced ones.
"""

from dataclasses import asdict

import pytest

from repro.core.cache import CacheStats
from repro.federation import (
    AuditReport,
    FederationConfig,
    GovernanceConfig,
    IngestStats,
    ServingReport,
    SubmitRequest,
    TopologyReport,
)
from repro.common.rng import RngStream
from repro.governance.audit import AuditLog
from repro.midas import MEDICAL_QUERIES, MidasSystem
from repro.serving.service import ServiceStats
from repro.serving.topology import Migration, RebalanceOutcome, ShardLoad

# --- Reconstructors (what a status-endpoint reader would implement) --------


def rebuild_service_stats(data: dict) -> ServiceStats:
    cache = data.pop("engine_cache")
    return ServiceStats(
        engine_cache=None if cache is None else CacheStats(**cache), **data
    )


def rebuild_serving_report(data: dict) -> ServingReport:
    ingest = data.pop("ingest")
    return ServingReport(
        stats=rebuild_service_stats(data.pop("stats")),
        ingest=None if ingest is None else IngestStats(**ingest),
        **data,
    )


def rebuild_topology_report(data: dict) -> TopologyReport:
    cycle = data.pop("last_cycle")
    if cycle is not None:
        cycle = RebalanceOutcome(
            moves=tuple(Migration(**move) for move in cycle.pop("moves")), **cycle
        )
    return TopologyReport(
        shards=tuple(
            ShardLoad(**{**shard, "routed": tuple(shard["routed"])})
            for shard in data.pop("shards")
        ),
        last_cycle=cycle,
        **data,
    )


def rebuild_audit_report(data: dict) -> AuditReport:
    from repro.governance.audit import AuditRecord

    return AuditReport(
        records=tuple(AuditRecord(**record) for record in data.pop("records")),
        **data,
    )


# --- Synthetic envelopes: every optional field populated -------------------


def make_topology_report() -> TopologyReport:
    return TopologyReport(
        backend="sharded",
        workers=3,
        route_version=7,
        migrations=2,
        respawns=1,
        shards=(
            ShardLoad(0, ("q1", "q2"), 5, 1, 0.0125),
            ShardLoad(1, ("q3",), 0, 0, None),
            ShardLoad(2, (), 0, 2, 0.5),
        ),
        last_cycle=RebalanceOutcome(
            moves=(Migration("q2", 0, 2), Migration("q3", 1, 0)),
            grew_to=3,
            shrank_to=None,
            route_version=7,
            reason="hot shard 0",
        ),
    )


def make_serving_report() -> ServingReport:
    return ServingReport(
        backend="sharded",
        workers=3,
        respawns=1,
        stats=ServiceStats(
            templates=4,
            fits=19,
            snapshot_hits=7,
            observations=80,
            bursts=2,
            burst_fits=3,
            engine_cache=CacheStats(hits=5, misses=2, evictions=1, size=4),
            batch_refreshes=6,
            batch_fits=11,
        ),
        ingest=IngestStats(
            admitted=40,
            submits=10,
            observes=30,
            rejected=2,
            blocked=1,
            flushes=5,
            size_flushes=3,
            interval_flushes=1,
            drain_flushes=1,
            items_flushed=38,
            max_batch=16,
            fit_rounds=5,
            peak_depth=17,
            pending=0,
            backpressure_flushes=1,
            segments=9,
            streamed_items=12,
        ),
    )


def make_audit_report() -> AuditReport:
    log = AuditLog()
    log.append("submit", template="q1", subject="alice", tick=3, detail="chose x")
    log.append("observe", template="q1", tick=4)
    log.append("denial", template="q2", subject="bob", outcome="denied", detail="r1")
    records = log.records()
    return AuditReport(
        enabled=True,
        length=len(records),
        head_hash=log.head_hash,
        chain_valid=True,
        submits=1,
        observes=1,
        flushes=0,
        rebalances=0,
        denials=1,
        records=records,
    )


BUILDERS = [
    (make_topology_report, rebuild_topology_report),
    (make_serving_report, rebuild_serving_report),
    (make_audit_report, rebuild_audit_report),
]


@pytest.mark.parametrize(
    "make,rebuild", BUILDERS, ids=[make.__name__[5:] for make, _ in BUILDERS]
)
def test_synthetic_report_roundtrips(make, rebuild):
    report = make()
    data = asdict(report)
    rebuilt = rebuild(data)
    assert rebuilt == report
    assert type(rebuilt) is type(report)
    assert rebuilt.describe() == report.describe()
    # asdict deep-copies: mutating the dict cannot touch the envelope.
    assert asdict(report) == asdict(rebuilt)


def test_minimal_reports_roundtrip():
    threaded = TopologyReport(
        backend="threaded", workers=0, route_version=0, migrations=0, respawns=0
    )
    assert rebuild_topology_report(asdict(threaded)) == threaded
    disabled = AuditReport(
        enabled=False,
        length=0,
        head_hash="0" * 64,
        chain_valid=True,
        submits=0,
        observes=0,
        flushes=0,
        rebalances=0,
        denials=0,
    )
    assert rebuild_audit_report(asdict(disabled)) == disabled


def test_live_gateway_reports_roundtrip():
    config = FederationConfig(max_window=24, governance=GovernanceConfig())
    midas = MidasSystem(patient_count=250, seed=13, config=config)
    key = "medical-demographics"
    try:
        midas.warm_up(key, runs=10)
        midas.query(key)
        params = MEDICAL_QUERIES[key].sample_params(RngStream(5, "roundtrip"))
        midas.gateway.ingest(SubmitRequest(key, params))
        midas.gateway.drain()
        serving = midas.gateway.serving_report()
        topology = midas.gateway.topology_report()
        audit = midas.gateway.audit_report()
        assert serving.ingest is not None  # the drain() populated it
        assert audit.length > 0
        assert rebuild_serving_report(asdict(serving)) == serving
        assert rebuild_topology_report(asdict(topology)) == topology
        assert rebuild_audit_report(asdict(audit)) == audit
    finally:
        midas.gateway.close()
