"""Chaos fault-plan driver: elastic topology vs the in-process oracle.

ISSUE 7's equivalence bar for the elastic sharded backend is the same
one PR 5 set for the static backend, now under *placement* chaos: for
ANY interleaving of observes / fits / bursts / batch refreshes, and ANY
plan of infrastructure faults — worker crashes, wedged (hung) workers,
forced template migrations, pool grow/shrink — replaying the identical
operation sequence through :class:`~repro.serving.ShardedEstimationService`
and through the single-process :class:`~repro.serving.EstimationService`
oracle must produce bitwise-identical window choices, predictions and
parent-side fit counters.  Faults may move replicas around; they must
never change a single number the service returns.

The driver is deliberately dumb: a :class:`Fault` says *when* (a script
step index) and *what*; targets are normalised onto the live topology
at fire time (modulo the current pool width), so hypothesis can draw
fault plans without knowing how earlier resizes reshaped the pool.
Suites stay thin clients — they describe a script and a fault plan and
assert on the returned :class:`ChaosLog`; every equivalence check lives
here, once.

ISSUE 9 extends the harness from *worker* chaos to *parent* chaos: the
gateway process itself dies.  :func:`run_recovery_chaos` kills a durable
gateway at a scripted traffic offset, optionally tears or corrupts the
WAL tail the way a mid-``write(2)`` crash (or bit rot) would, recovers
into a fresh gateway and holds the stitched run to the same oracle bar:
every report, the fit/observation counters and the audit head must be
bitwise-identical to a gateway that never crashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

import pytest

import repro.governance.audit as audit_module
from repro.common.errors import EstimationError
from repro.core import wal
from repro.federation import FederationError
from repro.federation.durability import DurabilityConfig
from repro.midas import MidasSystem
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from tests.helpers import (
    FEATURES,
    GATEWAY_KEYS,
    MAX_WINDOW,
    METRICS,
    R2,
    assert_gateway_outcomes_equal,
    assert_models_bitwise_equal,
    build_gateway_traffic,
    gateway_config,
    observation_stream,
    run_sequential,
    sharded_factory,
)

#: ``rpc_timeout`` forced onto a run whose plan contains ``hang`` faults
#: and whose caller did not pick one — a wedged worker is undetectable
#: without the guard, so the run would block forever.
HANG_GUARD_TIMEOUT = 2.0

#: Pool-width ceiling for normalised ``resize`` faults: keeps
#: hypothesis-drawn plans from forking an unbounded number of workers.
MAX_CHAOS_WORKERS = 4

FAULT_KINDS = ("crash", "hang", "migrate", "resize")


@dataclass(frozen=True)
class Fault:
    """One scripted infrastructure failure.

    ``at`` is the script step index the fault fires *before*; a value
    past the end of the script fires after the last step, before the
    final sweep.  Targets are normalised at fire time: ``shard`` and
    ``dst`` modulo the live pool width, ``key_index`` modulo the tenant
    count, ``workers`` clamped to [1, MAX_CHAOS_WORKERS].
    """

    at: int
    kind: str
    shard: int = 0
    key_index: int = 0
    dst: int = 0
    workers: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault step index must be >= 0, got {self.at}")


@dataclass
class ChaosLog:
    """What a fault plan actually did, plus the run's final counters."""

    crashes: int = 0
    hangs: int = 0
    migrations: int = 0
    resizes: int = 0
    #: (kind, detail) per applied fault, post-normalisation, in order.
    applied: list = field(default_factory=list)
    # Final sharded-side counters, captured before close:
    respawns: int = 0
    route_version: int = 0
    fits: int = 0
    workers: int = 0


def _apply(fault: Fault, sharded, keys, log: ChaosLog) -> None:
    """Fire one fault against the live topology, recording what landed."""
    if fault.kind == "crash":
        victim = fault.shard % sharded.workers
        sharded.inject_worker_crash(victim)
        log.crashes += 1
        log.applied.append(("crash", victim))
    elif fault.kind == "hang":
        victim = fault.shard % sharded.workers
        sharded.inject_worker_hang(victim)
        log.hangs += 1
        log.applied.append(("hang", victim))
    elif fault.kind == "migrate":
        key = keys[fault.key_index % len(keys)]
        dst = fault.dst % sharded.workers
        if sharded.migrate(key, dst):
            log.migrations += 1
            log.applied.append(("migrate", (key, dst)))
    else:  # resize
        target = max(1, min(fault.workers, MAX_CHAOS_WORKERS))
        if target != sharded.workers:
            sharded.resize(target)
            log.resizes += 1
            log.applied.append(("resize", target))


def replay_script(script, keys, sharded, threaded, *, faults=(), seed=23,
                  stream_length=64, log=None) -> ChaosLog:
    """Drive both (already registered) services through one interleaving,
    firing ``faults`` at their step indices and checking every fit.

    Script entries are ``(index, op)`` with ``op`` one of ``observe``
    (next row of tenant ``index % len(keys)``'s deterministic stream),
    ``fit`` (single-template model, failure parity included), ``batch``
    (coalesced ``refresh_batch``) and ``burst`` (parallel ``refresh``).
    Ends with a full sweep plus the fit-counter equality check.
    """
    log = log if log is not None else ChaosLog()
    pending = sorted(faults, key=lambda fault: fault.at)
    cursors = {key: 0 for key in keys}
    streams = {key: observation_stream(key, stream_length, seed=seed) for key in keys}
    for step, (index, op) in enumerate(script):
        while pending and pending[0].at <= step:
            _apply(pending.pop(0), sharded, keys, log)
        key = keys[index % len(keys)]
        if op == "observe":
            cursor = cursors[key]
            if cursor >= len(streams[key]):
                continue
            tick, features, costs = streams[key][cursor]
            cursors[key] = cursor + 1
            sharded.record(key, tick, features, costs)
            threaded.record(key, tick, features, costs)
        elif op == "fit":
            try:
                threaded_model = threaded.model(key)
            except EstimationError:
                with pytest.raises(EstimationError):
                    sharded.model(key)
                continue
            assert_models_bitwise_equal(key, sharded.model(key), threaded_model)
        elif op == "batch":
            # The coalesced path (one fit_many per shard) against the
            # in-process base implementation of the same call.
            sharded_result = sharded.refresh_batch()
            threaded_result = threaded.refresh_batch()
            assert sorted(sharded_result.models) == sorted(threaded_result.models)
            assert sorted(sharded_result.errors) == sorted(threaded_result.errors)
            assert sharded_result.fitted == threaded_result.fitted
            for fitted_key, threaded_model in threaded_result.models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_result.models[fitted_key], threaded_model
                )
        else:  # burst
            sharded_models = sharded.refresh(parallel=True)
            threaded_models = threaded.refresh(parallel=True)
            assert sorted(sharded_models) == sorted(threaded_models)
            for fitted_key, threaded_model in threaded_models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_models[fitted_key], threaded_model
                )
    # Late faults (at >= len(script)) fire before the final sweep: the
    # sweep itself must still agree through them.
    while pending:
        _apply(pending.pop(0), sharded, keys, log)
    final_sharded = sharded.refresh(parallel=False)
    final_threaded = threaded.refresh(parallel=False)
    assert sorted(final_sharded) == sorted(final_threaded)
    for key, threaded_model in final_threaded.items():
        assert_models_bitwise_equal(key, final_sharded[key], threaded_model)
    assert sharded.stats.fits == threaded.stats.fits
    log.respawns = sharded.respawns
    log.route_version = sharded.route_version
    log.fits = sharded.stats.fits
    log.workers = sharded.workers
    return log


def run_chaos_script(script, faults, *, keys, workers=2, rpc_timeout=None,
                     seed=23, stream_length=64) -> ChaosLog:
    """Build both services, register ``keys``, replay ``script`` with
    ``faults``, tear down.  The one-call front for chaos suites."""
    if rpc_timeout is None and any(fault.kind == "hang" for fault in faults):
        rpc_timeout = HANG_GUARD_TIMEOUT
    threaded = EstimationService(
        strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
    )
    with ShardedEstimationService(
        sharded_factory, workers=workers, rpc_timeout=rpc_timeout
    ) as sharded:
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            threaded.register(key, feature_names=FEATURES, metrics=METRICS)
        return replay_script(
            script, keys, sharded, threaded,
            faults=faults, seed=seed, stream_length=stream_length,
        )


def run_gateway_chaos(script, faults, *, seed) -> ChaosLog:
    """Gateway-level chaos: the scripted traffic through ``ingest()`` +
    ``drain()`` on the sharded backend with faults fired between
    admissions, against the fault-free sequential replay.  Faults with
    ``at`` past the traffic fire after admission, before the drain."""
    overrides = {}
    if any(fault.kind == "hang" for fault in faults):
        overrides["shard_rpc_timeout"] = HANG_GUARD_TIMEOUT
    config = gateway_config("sharded", **overrides)
    traffic = build_gateway_traffic(script, seed)
    sequential = run_sequential(traffic, "sharded", seed, config=config)

    log = ChaosLog()
    pending = sorted(faults, key=lambda fault: fault.at)
    midas = MidasSystem(patient_count=250, seed=seed, config=config)
    outcomes = []
    try:
        serving = midas.gateway.engine.serving
        for step, (_op, request) in enumerate(traffic):
            while pending and pending[0].at <= step:
                _apply(pending.pop(0), serving, GATEWAY_KEYS, log)
            midas.gateway.ingest(request)
        while pending:
            _apply(pending.pop(0), serving, GATEWAY_KEYS, log)
        batch = midas.gateway.drain()
        for report, error in zip(batch.reports, batch.errors):
            if error is None:
                outcomes.append(("ok", report))
            else:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
        log.respawns = serving.respawns
        log.route_version = serving.route_version
        log.fits = fits
        log.workers = serving.workers
    finally:
        midas.gateway.close()
    assert_gateway_outcomes_equal(sequential, (outcomes, fits, observations))
    return log


# --- Durability chaos: torn writes, bit rot, kill-at-offset recovery --------

#: Pinned audit timestamp: the chain hashes over ``at``, so comparing a
#: recovered chain's head against the oracle's needs a frozen clock.
FROZEN_AUDIT_CLOCK = 1_700_000_000.0


def _final_segment(directory) -> Path:
    segments = wal.list_segments(Path(directory))
    assert segments, f"no WAL segments in {directory}"
    return segments[-1]


def inject_torn_tail(directory, *, keep_bytes=11) -> int:
    """Append a partial record to the final WAL segment — the classic
    crash artifact: a ``write(2)`` the kill interrupted mid-frame.
    Returns how many dangling bytes were planted (``keep_bytes`` capped
    to strictly less than the full frame, so the tail is always torn)."""
    record = wal.encode_record({"t": "row", "key": "torn-victim", "lsn": 10**9})
    keep = min(max(1, keep_bytes), len(record) - 1)
    with open(_final_segment(directory), "ab") as handle:
        handle.write(record[:keep])
    return keep


def shear_final_record(directory) -> int:
    """Cut the final segment mid-way through its *last real* record (no
    planted bytes — the journaled event itself is the casualty).
    Returns the number of dangling bytes left behind."""
    path = _final_segment(directory)
    data = path.read_bytes()
    offsets = []
    offset = 0
    while offset + wal.HEADER.size <= len(data):
        length, _crc = wal.HEADER.unpack_from(data, offset)
        offsets.append(offset)
        offset += wal.HEADER.size + length
    assert offsets, f"{path.name} holds no records to shear"
    last = offsets[-1]
    cut = last + wal.HEADER.size + 2  # header plus two payload bytes survive
    with open(path, "r+b") as handle:
        handle.truncate(cut)
    return cut - last


def inject_bit_flip(directory, *, record_index=0) -> int:
    """Flip one payload bit of a *fully present* record in the final
    segment — bit rot, not a torn write: recovery must refuse loudly.
    Returns the absolute byte offset that was flipped."""
    path = _final_segment(directory)
    data = bytearray(path.read_bytes())
    offsets = []
    offset = 0
    while offset + wal.HEADER.size <= len(data):
        length, _crc = wal.HEADER.unpack_from(data, offset)
        if offset + wal.HEADER.size + length > len(data):
            break
        offsets.append(offset)
        offset += wal.HEADER.size + length
    assert offsets, f"{path.name} holds no complete records to corrupt"
    target = offsets[record_index % len(offsets)]
    flip = target + wal.HEADER.size  # first payload byte
    data[flip] ^= 0x01
    path.write_bytes(bytes(data))
    return flip


@dataclass
class RecoveryLog:
    """One kill-and-recover run: the report plus both halves' counters."""

    report: object = None
    outcomes_before: int = 0
    outcomes_after: int = 0
    fits_before: int = 0
    fits_total: int = 0
    audit_head: str | None = None
    oracle_audit_head: str | None = None


def _drive(gateway, traffic, outcomes) -> None:
    """run_sequential's per-item handling, against a live gateway."""
    for op, request in traffic:
        call = gateway.submit if op == "submit" else gateway.observe
        try:
            outcomes.append(("ok", call(request)))
        except FederationError as error:
            outcomes.append(("error", type(error).__name__))


def run_recovery_chaos(
    script,
    crash_at,
    *,
    backend,
    seed,
    durability_dir,
    fsync="batch",
    checkpoint_every=None,
    governance=None,
    mutate_wal=None,
) -> RecoveryLog:
    """Kill a durable gateway at traffic offset ``crash_at``, recover a
    fresh one over the same directory, and assert the stitched run is
    bitwise-equal to a never-crashed oracle.

    ``mutate_wal(directory)``, fired between the kill and the recovery,
    plants crash artifacts (:func:`inject_torn_tail`) — anything it adds
    must be truncated away without disturbing equivalence.  The audit
    clock is pinned for the duration so chain heads are comparable.
    """
    traffic = build_gateway_traffic(script, seed)
    crash_at = max(0, min(crash_at, len(traffic)))
    overrides = {} if governance is None else {"governance": governance}
    base = gateway_config(backend, **overrides)
    durable = replace(
        base,
        durability=DurabilityConfig(
            dir=durability_dir, fsync=fsync, checkpoint_every=checkpoint_every
        ),
    )
    saved_clock = audit_module.time_fn
    audit_module.time_fn = lambda: FROZEN_AUDIT_CLOCK
    try:
        log = RecoveryLog()
        # The never-crashed oracle (run_sequential plus its audit head).
        oracle_midas = MidasSystem(patient_count=250, seed=seed, config=base)
        oracle_outcomes = []
        try:
            _drive(oracle_midas.gateway, traffic, oracle_outcomes)
            oracle_fits = oracle_midas.gateway.serving_stats.fits
            oracle_observations = oracle_midas.gateway.serving_stats.observations
            if oracle_midas.gateway.audit_log is not None:
                log.oracle_audit_head = oracle_midas.gateway.audit_log.head_hash
        finally:
            oracle_midas.gateway.close()
        oracle = (oracle_outcomes, oracle_fits, oracle_observations)
        outcomes = []

        crashed = MidasSystem(patient_count=250, seed=seed, config=durable)
        try:
            _drive(crashed.gateway, traffic[:crash_at], outcomes)
            log.fits_before = crashed.gateway.serving_stats.fits
        finally:
            # The "kill": tear down processes without the checkpoint a
            # graceful shutdown would have cut — recovery must work
            # from the raw journal.
            crashed.gateway.close()
        log.outcomes_before = len(outcomes)
        if mutate_wal is not None:
            mutate_wal(Path(durability_dir))

        revived = MidasSystem(patient_count=250, seed=seed, config=durable)
        try:
            log.report = revived.gateway.recover()
            _drive(revived.gateway, traffic[crash_at:], outcomes)
            fits = revived.gateway.serving_stats.fits
            observations = revived.gateway.serving_stats.observations
            if revived.gateway.audit_log is not None:
                log.audit_head = revived.gateway.audit_log.head_hash
        finally:
            revived.gateway.close()
        log.outcomes_after = len(outcomes) - log.outcomes_before
        log.fits_total = log.fits_before + fits

        # Restart equivalence: the crash must be invisible.  Warm-up
        # fits (snapshots re-fitted at recovery because they were fresh
        # at the kill) are the one legitimate double-count.
        stitched_fits = log.fits_before + fits - log.report.warmed_fits
        assert_gateway_outcomes_equal(
            oracle, (outcomes, stitched_fits, observations)
        )
        assert log.audit_head == log.oracle_audit_head
        return log
    finally:
        audit_module.time_fn = saved_clock
