"""Chaos fault-plan driver: elastic topology vs the in-process oracle.

ISSUE 7's equivalence bar for the elastic sharded backend is the same
one PR 5 set for the static backend, now under *placement* chaos: for
ANY interleaving of observes / fits / bursts / batch refreshes, and ANY
plan of infrastructure faults — worker crashes, wedged (hung) workers,
forced template migrations, pool grow/shrink — replaying the identical
operation sequence through :class:`~repro.serving.ShardedEstimationService`
and through the single-process :class:`~repro.serving.EstimationService`
oracle must produce bitwise-identical window choices, predictions and
parent-side fit counters.  Faults may move replicas around; they must
never change a single number the service returns.

The driver is deliberately dumb: a :class:`Fault` says *when* (a script
step index) and *what*; targets are normalised onto the live topology
at fire time (modulo the current pool width), so hypothesis can draw
fault plans without knowing how earlier resizes reshaped the pool.
Suites stay thin clients — they describe a script and a fault plan and
assert on the returned :class:`ChaosLog`; every equivalence check lives
here, once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.common.errors import EstimationError
from repro.midas import MidasSystem
from repro.serving import EstimationService, ShardedEstimationService
from repro.serving.worker import dream_strategy

from tests.helpers import (
    FEATURES,
    GATEWAY_KEYS,
    MAX_WINDOW,
    METRICS,
    R2,
    assert_gateway_outcomes_equal,
    assert_models_bitwise_equal,
    build_gateway_traffic,
    gateway_config,
    observation_stream,
    run_sequential,
    sharded_factory,
)

#: ``rpc_timeout`` forced onto a run whose plan contains ``hang`` faults
#: and whose caller did not pick one — a wedged worker is undetectable
#: without the guard, so the run would block forever.
HANG_GUARD_TIMEOUT = 2.0

#: Pool-width ceiling for normalised ``resize`` faults: keeps
#: hypothesis-drawn plans from forking an unbounded number of workers.
MAX_CHAOS_WORKERS = 4

FAULT_KINDS = ("crash", "hang", "migrate", "resize")


@dataclass(frozen=True)
class Fault:
    """One scripted infrastructure failure.

    ``at`` is the script step index the fault fires *before*; a value
    past the end of the script fires after the last step, before the
    final sweep.  Targets are normalised at fire time: ``shard`` and
    ``dst`` modulo the live pool width, ``key_index`` modulo the tenant
    count, ``workers`` clamped to [1, MAX_CHAOS_WORKERS].
    """

    at: int
    kind: str
    shard: int = 0
    key_index: int = 0
    dst: int = 0
    workers: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault step index must be >= 0, got {self.at}")


@dataclass
class ChaosLog:
    """What a fault plan actually did, plus the run's final counters."""

    crashes: int = 0
    hangs: int = 0
    migrations: int = 0
    resizes: int = 0
    #: (kind, detail) per applied fault, post-normalisation, in order.
    applied: list = field(default_factory=list)
    # Final sharded-side counters, captured before close:
    respawns: int = 0
    route_version: int = 0
    fits: int = 0
    workers: int = 0


def _apply(fault: Fault, sharded, keys, log: ChaosLog) -> None:
    """Fire one fault against the live topology, recording what landed."""
    if fault.kind == "crash":
        victim = fault.shard % sharded.workers
        sharded.inject_worker_crash(victim)
        log.crashes += 1
        log.applied.append(("crash", victim))
    elif fault.kind == "hang":
        victim = fault.shard % sharded.workers
        sharded.inject_worker_hang(victim)
        log.hangs += 1
        log.applied.append(("hang", victim))
    elif fault.kind == "migrate":
        key = keys[fault.key_index % len(keys)]
        dst = fault.dst % sharded.workers
        if sharded.migrate(key, dst):
            log.migrations += 1
            log.applied.append(("migrate", (key, dst)))
    else:  # resize
        target = max(1, min(fault.workers, MAX_CHAOS_WORKERS))
        if target != sharded.workers:
            sharded.resize(target)
            log.resizes += 1
            log.applied.append(("resize", target))


def replay_script(script, keys, sharded, threaded, *, faults=(), seed=23,
                  stream_length=64, log=None) -> ChaosLog:
    """Drive both (already registered) services through one interleaving,
    firing ``faults`` at their step indices and checking every fit.

    Script entries are ``(index, op)`` with ``op`` one of ``observe``
    (next row of tenant ``index % len(keys)``'s deterministic stream),
    ``fit`` (single-template model, failure parity included), ``batch``
    (coalesced ``refresh_batch``) and ``burst`` (parallel ``refresh``).
    Ends with a full sweep plus the fit-counter equality check.
    """
    log = log if log is not None else ChaosLog()
    pending = sorted(faults, key=lambda fault: fault.at)
    cursors = {key: 0 for key in keys}
    streams = {key: observation_stream(key, stream_length, seed=seed) for key in keys}
    for step, (index, op) in enumerate(script):
        while pending and pending[0].at <= step:
            _apply(pending.pop(0), sharded, keys, log)
        key = keys[index % len(keys)]
        if op == "observe":
            cursor = cursors[key]
            if cursor >= len(streams[key]):
                continue
            tick, features, costs = streams[key][cursor]
            cursors[key] = cursor + 1
            sharded.record(key, tick, features, costs)
            threaded.record(key, tick, features, costs)
        elif op == "fit":
            try:
                threaded_model = threaded.model(key)
            except EstimationError:
                with pytest.raises(EstimationError):
                    sharded.model(key)
                continue
            assert_models_bitwise_equal(key, sharded.model(key), threaded_model)
        elif op == "batch":
            # The coalesced path (one fit_many per shard) against the
            # in-process base implementation of the same call.
            sharded_result = sharded.refresh_batch()
            threaded_result = threaded.refresh_batch()
            assert sorted(sharded_result.models) == sorted(threaded_result.models)
            assert sorted(sharded_result.errors) == sorted(threaded_result.errors)
            assert sharded_result.fitted == threaded_result.fitted
            for fitted_key, threaded_model in threaded_result.models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_result.models[fitted_key], threaded_model
                )
        else:  # burst
            sharded_models = sharded.refresh(parallel=True)
            threaded_models = threaded.refresh(parallel=True)
            assert sorted(sharded_models) == sorted(threaded_models)
            for fitted_key, threaded_model in threaded_models.items():
                assert_models_bitwise_equal(
                    fitted_key, sharded_models[fitted_key], threaded_model
                )
    # Late faults (at >= len(script)) fire before the final sweep: the
    # sweep itself must still agree through them.
    while pending:
        _apply(pending.pop(0), sharded, keys, log)
    final_sharded = sharded.refresh(parallel=False)
    final_threaded = threaded.refresh(parallel=False)
    assert sorted(final_sharded) == sorted(final_threaded)
    for key, threaded_model in final_threaded.items():
        assert_models_bitwise_equal(key, final_sharded[key], threaded_model)
    assert sharded.stats.fits == threaded.stats.fits
    log.respawns = sharded.respawns
    log.route_version = sharded.route_version
    log.fits = sharded.stats.fits
    log.workers = sharded.workers
    return log


def run_chaos_script(script, faults, *, keys, workers=2, rpc_timeout=None,
                     seed=23, stream_length=64) -> ChaosLog:
    """Build both services, register ``keys``, replay ``script`` with
    ``faults``, tear down.  The one-call front for chaos suites."""
    if rpc_timeout is None and any(fault.kind == "hang" for fault in faults):
        rpc_timeout = HANG_GUARD_TIMEOUT
    threaded = EstimationService(
        strategy=dream_strategy(r2_required=R2, max_window=MAX_WINDOW)
    )
    with ShardedEstimationService(
        sharded_factory, workers=workers, rpc_timeout=rpc_timeout
    ) as sharded:
        for key in keys:
            sharded.register(key, feature_names=FEATURES, metrics=METRICS)
            threaded.register(key, feature_names=FEATURES, metrics=METRICS)
        return replay_script(
            script, keys, sharded, threaded,
            faults=faults, seed=seed, stream_length=stream_length,
        )


def run_gateway_chaos(script, faults, *, seed) -> ChaosLog:
    """Gateway-level chaos: the scripted traffic through ``ingest()`` +
    ``drain()`` on the sharded backend with faults fired between
    admissions, against the fault-free sequential replay.  Faults with
    ``at`` past the traffic fire after admission, before the drain."""
    overrides = {}
    if any(fault.kind == "hang" for fault in faults):
        overrides["shard_rpc_timeout"] = HANG_GUARD_TIMEOUT
    config = gateway_config("sharded", **overrides)
    traffic = build_gateway_traffic(script, seed)
    sequential = run_sequential(traffic, "sharded", seed, config=config)

    log = ChaosLog()
    pending = sorted(faults, key=lambda fault: fault.at)
    midas = MidasSystem(patient_count=250, seed=seed, config=config)
    outcomes = []
    try:
        serving = midas.gateway.engine.serving
        for step, (_op, request) in enumerate(traffic):
            while pending and pending[0].at <= step:
                _apply(pending.pop(0), serving, GATEWAY_KEYS, log)
            midas.gateway.ingest(request)
        while pending:
            _apply(pending.pop(0), serving, GATEWAY_KEYS, log)
        batch = midas.gateway.drain()
        for report, error in zip(batch.reports, batch.errors):
            if error is None:
                outcomes.append(("ok", report))
            else:
                outcomes.append(("error", type(error).__name__))
        fits = midas.gateway.serving_stats.fits
        observations = midas.gateway.serving_stats.observations
        log.respawns = serving.respawns
        log.route_version = serving.route_version
        log.fits = fits
        log.workers = serving.workers
    finally:
        midas.gateway.close()
    assert_gateway_outcomes_equal(sequential, (outcomes, fits, observations))
    return log
