"""Tests for the SQL lexer and parser."""

import datetime

import pytest

from repro.common.errors import SqlError
from repro.relational.expressions import (
    AggregateCall,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Exists,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    ScalarSubquery,
    UnaryOp,
)
from repro.relational.types import Interval
from repro.sql import parse_select
from repro.sql.ast import DerivedTable, JoinClause, NamedTable, SelectItem, Star
from repro.sql.lexer import TokenType, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM")
        assert tokens[0].value == "select"
        assert tokens[1].value == "from"

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [t.value for t in tokens[:3]] == ["1", "2.5", "0.125"]

    def test_double_dot_number_rejected(self):
        with pytest.raises(SqlError):
            tokenize("1.2.3")

    def test_two_char_symbols(self):
        tokens = tokenize("<> <= >=")
        assert [t.value for t in tokens[:3]] == ["<>", "<=", ">="]

    def test_line_comments_skipped(self):
        tokens = tokenize("select -- a comment\n 1")
        assert [t.value for t in tokens[:2]] == ["select", "1"]

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[0].type is TokenType.EOF


class TestParserBasics:
    def test_simple_select(self):
        stmt = parse_select("select a, b from t")
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_clause, NamedTable)
        assert stmt.from_clause.name == "t"

    def test_star(self):
        stmt = parse_select("select * from t")
        assert isinstance(stmt.items[0], Star)

    def test_qualified_star(self):
        stmt = parse_select("select t.* from t")
        assert stmt.items[0] == Star("t")

    def test_alias_with_and_without_as(self):
        stmt = parse_select("select a as x, b y from t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_table_alias(self):
        stmt = parse_select("select a from t1 as x")
        assert stmt.from_clause.alias == "x"

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct

    def test_limit(self):
        assert parse_select("select a from t limit 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlError):
            parse_select("select a from t limit 1.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_select("select a from t xx yy")

    def test_trailing_semicolon_ok(self):
        parse_select("select a from t;")

    def test_group_by_and_having(self):
        stmt = parse_select("select a, count(*) from t group by a having count(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("select a, b from t order by a desc, b asc, a")
        assert [o.descending for o in stmt.order_by] == [True, False, False]


class TestParserJoins:
    def test_comma_join_is_cross(self):
        stmt = parse_select("select a from t1, t2")
        join = stmt.from_clause
        assert isinstance(join, JoinClause)
        assert join.kind == "cross"

    def test_inner_join_on(self):
        stmt = parse_select("select a from t1 join t2 on t1.x = t2.y")
        assert stmt.from_clause.kind == "inner"
        assert isinstance(stmt.from_clause.condition, BinaryOp)

    def test_left_outer_join(self):
        stmt = parse_select("select a from t1 left outer join t2 on t1.x = t2.y")
        assert stmt.from_clause.kind == "left"

    def test_left_join_without_outer(self):
        stmt = parse_select("select a from t1 left join t2 on t1.x = t2.y")
        assert stmt.from_clause.kind == "left"

    def test_join_requires_on(self):
        with pytest.raises(SqlError):
            parse_select("select a from t1 join t2")

    def test_derived_table_with_column_aliases(self):
        stmt = parse_select(
            "select c from (select a, b from t) as d (x, y)"
        )
        derived = stmt.from_clause
        assert isinstance(derived, DerivedTable)
        assert derived.alias == "d"
        assert derived.column_aliases == ("x", "y")

    def test_three_way_comma_join_left_deep(self):
        stmt = parse_select("select a from t1, t2, t3")
        outer = stmt.from_clause
        assert isinstance(outer, JoinClause)
        assert isinstance(outer.left, JoinClause)
        assert outer.right.name == "t3"


class TestParserExpressions:
    def where(self, condition: str):
        return parse_select(f"select a from t where {condition}").where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 or b = 2 and c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_precedence_arithmetic(self):
        expr = self.where("a + b * c = 7")
        assert expr.op == "="
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_parentheses_override(self):
        expr = self.where("(a + b) * c = 7")
        assert expr.left.op == "*"

    def test_not_precedence(self):
        expr = self.where("not a = 1 and b = 2")
        assert expr.op == "AND"
        assert isinstance(expr.left, UnaryOp)

    def test_between(self):
        expr = self.where("a between 1 and 10")
        assert isinstance(expr, Between)

    def test_not_between(self):
        expr = self.where("a not between 1 and 10")
        assert expr.negated

    def test_in_list(self):
        expr = self.where("mode in ('MAIL', 'SHIP')")
        assert isinstance(expr, InList)
        assert len(expr.values) == 2

    def test_not_in_list(self):
        assert self.where("mode not in ('A')").negated

    def test_like_and_not_like(self):
        assert isinstance(self.where("c like '%x%'"), Like)
        assert self.where("c not like '%x%'").negated

    def test_like_requires_string(self):
        with pytest.raises(SqlError):
            self.where("c like 5")

    def test_is_null_and_is_not_null(self):
        assert isinstance(self.where("a is null"), IsNull)
        assert self.where("a is not null").negated

    def test_date_literal(self):
        expr = self.where("d >= date '1994-01-01'")
        assert expr.right == Literal(datetime.date(1994, 1, 1))

    def test_interval_literals(self):
        expr = self.where("d < date '1994-01-01' + interval '1' year")
        assert expr.right.right == Literal(Interval(years=1))
        expr2 = self.where("d < date '1994-01-01' + interval '3' month")
        assert expr2.right.right == Literal(Interval(months=3))

    def test_interval_bad_unit(self):
        with pytest.raises(SqlError):
            self.where("d < date '1994-01-01' + interval '1' hour")

    def test_case_when(self):
        expr = parse_select(
            "select case when a = 1 then 'one' else 'many' end from t"
        ).items[0].expr
        assert isinstance(expr, CaseWhen)
        assert expr.else_ == Literal("many")

    def test_case_requires_when(self):
        with pytest.raises(SqlError):
            parse_select("select case end from t")

    def test_unary_minus(self):
        expr = parse_select("select -a from t").items[0].expr
        assert isinstance(expr, UnaryOp)

    def test_qualified_column(self):
        expr = self.where("t.a = 1")
        assert expr.left == ColumnRef("a", qualifier="t")


class TestParserAggregatesAndSubqueries:
    def test_count_star(self):
        expr = parse_select("select count(*) from t").items[0].expr
        assert expr == AggregateCall("count", None)

    def test_count_distinct(self):
        expr = parse_select("select count(distinct a) from t").items[0].expr
        assert expr.distinct

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse_select("select sum(*) from t")

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlError):
            parse_select("select median(a) from t")

    def test_scalar_subquery(self):
        stmt = parse_select("select a from t where a < (select avg(b) from u)")
        assert isinstance(stmt.where.right, ScalarSubquery)

    def test_in_subquery(self):
        stmt = parse_select("select a from t where a in (select b from u)")
        assert isinstance(stmt.where, InSubquery)

    def test_exists(self):
        stmt = parse_select("select a from t where exists (select b from u)")
        assert isinstance(stmt.where, Exists)

    def test_nested_parenthesised_expression_not_subquery(self):
        stmt = parse_select("select a from t where a < (1 + 2)")
        assert isinstance(stmt.where.right, BinaryOp)
