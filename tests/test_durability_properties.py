"""Property suite: restart equivalence under ANY crash (ISSUE 9).

The durability bar, hypothesis-driven: for ANY traffic script, ANY kill
offset within it, and ANY fsync policy, a gateway recovered from its WAL
must be bitwise-indistinguishable from one that never crashed — every
report, error type, tick, fit/observation counter and (with governance)
the audit head.  Torn tails planted on the journal must be truncated
away without touching equivalence; a flipped bit mid-record must surface
as a typed :class:`DurabilityError`, never as silently divergent state.

The kill/recover/compare machinery lives in :mod:`tests.chaos`
(:func:`run_recovery_chaos`); this suite only draws shapes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import DurabilityError
from repro.governance import GovernanceConfig
from repro.midas import MidasSystem
from tests.chaos import (
    inject_bit_flip,
    inject_torn_tail,
    run_recovery_chaos,
)
from tests.helpers import build_gateway_traffic, gateway_config

gateway_ops = st.sampled_from(["observe", "observe", "observe", "submit"])
gateway_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1), gateway_ops),
    min_size=4,
    max_size=24,
)

#: Kill offset as a fraction of the script (normalised inside the
#: driver), so shrinking keeps crash points meaningful on any length.
crash_fractions = st.floats(min_value=0.0, max_value=1.0)

fsync_modes = st.sampled_from(["off", "batch", "always"])

seeds = st.integers(min_value=1, max_value=10_000)


def _crash_index(script, fraction):
    return round(fraction * len(script))


class TestRecoveryEquivalenceProperties:
    @given(
        script=gateway_scripts,
        fraction=crash_fractions,
        fsync=fsync_modes,
        seed=seeds,
    )
    @settings(max_examples=8)
    def test_threaded_any_crash_point_any_fsync(
        self, script, fraction, fsync, seed, tmp_path_factory
    ):
        run_recovery_chaos(
            script,
            _crash_index(script, fraction),
            backend="threaded",
            seed=seed,
            durability_dir=tmp_path_factory.mktemp("wal"),
            fsync=fsync,
            governance=GovernanceConfig(),
        )

    @given(
        script=gateway_scripts,
        fraction=crash_fractions,
        checkpoint_every=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        seed=seeds,
    )
    @settings(max_examples=3)
    def test_sharded_any_crash_point_any_checkpoint_cadence(
        self, script, fraction, checkpoint_every, seed, tmp_path_factory
    ):
        run_recovery_chaos(
            script,
            _crash_index(script, fraction),
            backend="sharded",
            seed=seed,
            durability_dir=tmp_path_factory.mktemp("wal"),
            fsync="off",
            checkpoint_every=checkpoint_every,
        )

    @given(
        script=gateway_scripts,
        fraction=crash_fractions,
        keep_bytes=st.integers(min_value=1, max_value=64),
        seed=seeds,
    )
    @settings(max_examples=6)
    def test_torn_tail_never_disturbs_equivalence(
        self, script, fraction, keep_bytes, seed, tmp_path_factory
    ):
        log = run_recovery_chaos(
            script,
            _crash_index(script, fraction),
            backend="threaded",
            seed=seed,
            durability_dir=tmp_path_factory.mktemp("wal"),
            fsync="batch",
            mutate_wal=lambda directory: inject_torn_tail(
                directory, keep_bytes=keep_bytes
            ),
        )
        assert log.report.torn_bytes > 0

    @given(
        script=gateway_scripts,
        record_index=st.integers(min_value=0, max_value=50),
        seed=seeds,
    )
    @settings(max_examples=6)
    def test_mid_record_corruption_is_typed_never_silent(
        self, script, record_index, seed, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("wal")
        config = gateway_config("threaded")
        from dataclasses import replace

        from repro.federation.durability import DurabilityConfig

        durable = replace(
            config, durability=DurabilityConfig(dir=directory, fsync="off")
        )
        traffic = build_gateway_traffic(script, seed)
        midas = MidasSystem(patient_count=250, seed=seed, config=durable)
        try:
            for op, request in traffic:
                call = midas.gateway.submit if op == "submit" else midas.gateway.observe
                try:
                    call(request)
                except Exception:
                    pass
        finally:
            midas.gateway.close()
        inject_bit_flip(directory, record_index=record_index)
        revived = MidasSystem(patient_count=250, seed=seed, config=durable)
        try:
            with pytest.raises(DurabilityError):
                revived.gateway.recover()
        finally:
            revived.gateway.close()


class TestAuditReconciliationProperties:
    @given(script=gateway_scripts, fraction=crash_fractions, seed=seeds)
    @settings(max_examples=6)
    def test_audit_chain_verifies_and_counts_reconcile(
        self, script, fraction, seed, tmp_path_factory
    ):
        log = run_recovery_chaos(
            script,
            _crash_index(script, fraction),
            backend="threaded",
            seed=seed,
            durability_dir=tmp_path_factory.mktemp("wal"),
            fsync="batch",
            governance=GovernanceConfig(),
        )
        # Head equality with the oracle is asserted inside the driver;
        # here: the stitched run covered the whole script, and the two
        # halves partition it exactly.
        assert log.outcomes_before + log.outcomes_after == len(script)
        assert log.audit_head == log.oracle_audit_head
