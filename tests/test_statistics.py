"""Tests for table statistics and selectivity estimation."""

import datetime

import pytest

from repro.plans.statistics import (
    ColumnStats,
    StatsContext,
    TableStats,
    compute_table_stats,
    estimate_equi_join_rows,
    estimate_selectivity,
)
from repro.relational.expressions import (
    Between,
    BinaryOp,
    BoundColumn,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.relational.types import DataType, Interval

from tests.helpers import make_orders


def ctx(stats_by_index: dict | None = None) -> StatsContext:
    slots: list = [None] * 10
    for index, stats in (stats_by_index or {}).items():
        slots[index] = stats
    return StatsContext(slots)


INT_COL = BoundColumn(0, DataType.INTEGER)
UNIFORM = ColumnStats(distinct_count=100, min_value=0, max_value=100)


class TestComputeStats:
    def test_row_count_and_size(self):
        stats = compute_table_stats(make_orders())
        assert stats.row_count == 4
        assert stats.size_bytes == make_orders().size_bytes()

    def test_distinct_counts(self):
        stats = compute_table_stats(make_orders())
        assert stats.column("o_custkey").distinct_count == 3
        assert stats.column("o_orderkey").distinct_count == 4

    def test_null_fraction(self):
        stats = compute_table_stats(make_orders())
        assert stats.column("o_comment").null_fraction == pytest.approx(0.25)

    def test_min_max(self):
        stats = compute_table_stats(make_orders())
        assert stats.column("o_orderkey").min_value == 1
        assert stats.column("o_orderkey").max_value == 4

    def test_row_width(self):
        stats = TableStats(10, 1000)
        assert stats.row_width == 100


class TestSelectivity:
    def test_equality_uses_distinct(self):
        expr = BinaryOp("=", INT_COL, Literal(5))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.01)

    def test_inequality(self):
        expr = BinaryOp("<>", INT_COL, Literal(5))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.99)

    def test_range_interpolation(self):
        expr = BinaryOp("<", INT_COL, Literal(25))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.25)

    def test_flipped_comparison(self):
        expr = BinaryOp(">", Literal(25), INT_COL)  # same as col < 25
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.25)

    def test_greater_than(self):
        expr = BinaryOp(">=", INT_COL, Literal(80))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.2)

    def test_between(self):
        expr = Between(INT_COL, Literal(10), Literal(30))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.2)

    def test_date_range_with_constant_folding(self):
        date_stats = ColumnStats(
            distinct_count=365,
            min_value=datetime.date(1994, 1, 1),
            max_value=datetime.date(1995, 1, 1),
        )
        low = Literal(datetime.date(1994, 1, 1))
        bound = BinaryOp("+", low, Literal(Interval(months=6)))
        expr = BinaryOp("<", BoundColumn(0, DataType.DATE), bound)
        result = estimate_selectivity(expr, ctx({0: date_stats}))
        assert 0.45 < result < 0.55

    def test_and_multiplies(self):
        a = BinaryOp("<", INT_COL, Literal(50))
        expr = BinaryOp("AND", a, a)
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.25)

    def test_or_inclusion_exclusion(self):
        a = BinaryOp("<", INT_COL, Literal(50))
        expr = BinaryOp("OR", a, a)
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.75)

    def test_not_complements(self):
        a = BinaryOp("<", INT_COL, Literal(30))
        expr = UnaryOp("NOT", a)
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.7)

    def test_in_list_scales_with_size(self):
        expr = InList(INT_COL, (Literal(1), Literal(2)))
        assert estimate_selectivity(expr, ctx({0: UNIFORM})) == pytest.approx(0.02)

    def test_is_null_uses_null_fraction(self):
        stats = ColumnStats(distinct_count=10, null_fraction=0.3)
        assert estimate_selectivity(IsNull(INT_COL), ctx({0: stats})) == pytest.approx(0.3)

    def test_like_defaults(self):
        expr = Like(BoundColumn(0, DataType.STRING), "%special%")
        assert estimate_selectivity(expr, ctx()) == pytest.approx(0.1)

    def test_missing_stats_fall_back(self):
        expr = BinaryOp("<", INT_COL, Literal(5))
        assert estimate_selectivity(expr, ctx()) == pytest.approx(1 / 3)

    def test_result_clamped(self):
        stats = ColumnStats(distinct_count=1, min_value=0, max_value=0)
        expr = BinaryOp("=", INT_COL, Literal(0))
        assert 0.0 <= estimate_selectivity(expr, ctx({0: stats})) <= 1.0


class TestJoinCardinality:
    def test_classic_formula(self):
        assert estimate_equi_join_rows(1000, 500, 100, 50) == pytest.approx(5000)

    def test_zero_distinct_guard(self):
        assert estimate_equi_join_rows(10, 10, 0, 0) == pytest.approx(100)

    def test_scaled_column_stats(self):
        scaled = UNIFORM.scaled(10.0)
        assert scaled.distinct_count == 1000
