"""The federation gateway: config, registry, envelopes, sessions.

Four layers of guarantees:

1. Configuration — ``FederationConfig`` rejects garbage eagerly with the
   structured error taxonomy; the backend registry resolves strategies
   by name and accepts third-party factories.
2. Functional — typed envelopes in, typed reports out; auto-ticking,
   rotation-based exploration, template/phase-tagged errors.
3. Oracle equivalence (acceptance) — a scripted drift scenario driven
   through ``FederationGateway.submit`` / ``session.submit_many``
   chooses identical DREAM windows and plans (prediction diff < 1e-9)
   as the same scenario driven through the old ``IReSPlatform.submit``
   path.
4. Concurrency stress (``slow`` marker) — a pinned session snapshot
   stays bitwise-stable while concurrent ``observe()``s advance the
   history version; unpinning picks up the newer model.
"""

import threading

import numpy as np
import pytest

from repro.common.errors import EstimationError, ValidationError
from repro.common.rng import RngStream
from repro.federation import (
    BatchReport,
    DuplicateTemplateError,
    EnvelopeError,
    FederationConfig,
    FederationError,
    GatewayConfigError,
    InsufficientHistoryError,
    ObserveRequest,
    SessionStateError,
    SubmitRequest,
    UnknownStrategyError,
    UnknownTemplateError,
    available_strategies,
    create_strategy,
    register_strategy,
    unregister_strategy,
)
from repro.federation import GovernanceConfig, RebalanceConfig
from repro.ires.modelling import BmlStrategy, DreamStrategy
from repro.ires.policy import UserPolicy
from repro.midas import MEDICAL_QUERIES, MidasSystem

KEY = "medical-demographics"


def _rejection_id(field, value):
    # RebalanceConfig()'s repr spans every knob; keep parametrize ids short.
    text = repr(value)
    return f"{field}={text[:32] + '...' if len(text) > 32 else text}"


def make_midas(
    seed: int = 5, runs: int = 12, config: FederationConfig | None = None
) -> MidasSystem:
    midas = MidasSystem(patient_count=300, seed=seed, config=config)
    if runs:
        midas.warm_up(KEY, runs=runs)
    return midas


@pytest.fixture(scope="module")
def midas() -> MidasSystem:
    return make_midas()


class TestFederationConfig:
    def test_defaults_are_valid(self):
        config = FederationConfig()
        assert config.strategy == "dream-incremental"
        assert config.cache_capacity >= 1
        assert config.serving_backend == "threaded"
        assert config.shard_workers is None

    def test_sharded_backend_accepted(self):
        config = FederationConfig(serving_backend="sharded", shard_workers=3)
        assert config.shard_workers == 3

    #: One row per rejection path (field, bad value, message pattern):
    #: the serving fields introduced with the sharded backend plus the
    #: pre-existing cache/worker validators.
    REJECTED_FIELDS = [
        ("cache_capacity", 0, "cache_capacity"),
        ("cache_capacity", -1, "cache_capacity"),
        ("cache_ttl_seconds", 0, "cache_ttl_seconds"),
        ("cache_ttl_seconds", -0.5, "cache_ttl_seconds"),
        ("max_fit_workers", 0, "max_fit_workers"),
        ("max_fit_workers", -4, "max_fit_workers"),
        ("shard_workers", 0, "shard_workers"),
        ("shard_workers", -2, "shard_workers"),
        ("shard_rpc_timeout", 0, "shard_rpc_timeout"),
        ("shard_rpc_timeout", -1.5, "shard_rpc_timeout"),
        ("serving_backend", "", "serving_backend"),
        ("serving_backend", None, "serving_backend"),
        ("serving_backend", "no-such-backend", "unknown serving backend"),
        ("ingest_queue_depth", 0, "ingest_queue_depth"),
        ("ingest_queue_depth", -8, "ingest_queue_depth"),
        ("ingest_batch_max", 0, "ingest_batch_max"),
        ("ingest_batch_max", -1, "ingest_batch_max"),
        ("ingest_flush_ms", 0, "ingest_flush_ms"),
        ("ingest_flush_ms", -25.0, "ingest_flush_ms"),
        ("ingest_overflow", "drop", "ingest_overflow"),
        ("ingest_overflow", "", "ingest_overflow"),
        ("ingest_segment_max", 0, "ingest_segment_max"),
        ("ingest_segment_max", -3, "ingest_segment_max"),
        ("ingest_pipeline", "yes", "ingest_pipeline"),
        ("ingest_pipeline", 1, "ingest_pipeline"),
        ("rebalance", RebalanceConfig(), "rebalance requires"),
        ("rebalance", "every-tick", "rebalance must be"),
        ("governance", "audit-everything", "governance must be"),
        ("governance", 7, "governance must be"),
    ]

    @pytest.mark.parametrize(
        "field,value,pattern",
        REJECTED_FIELDS,
        ids=[_rejection_id(f, v) for f, v, _ in REJECTED_FIELDS],
    )
    def test_rejection_paths(self, field, value, pattern):
        with pytest.raises(GatewayConfigError, match=pattern):
            FederationConfig(**{field: value})

    def test_unknown_serving_backend_lists_available(self):
        from repro.federation import UnknownServingBackendError

        with pytest.raises(UnknownServingBackendError) as info:
            FederationConfig(serving_backend="fleet-of-zeppelins")
        assert info.value.name == "fleet-of-zeppelins"
        assert "threaded" in info.value.available
        assert "sharded" in info.value.available

    def test_rebalance_on_threaded_names_field_and_backends(self):
        # Satellite guarantee: the rejection tells the user *which*
        # field clashed and what serving backends exist, in the same
        # style as UnknownServingBackendError.
        with pytest.raises(GatewayConfigError) as info:
            FederationConfig(rebalance=RebalanceConfig())
        message = str(info.value)
        assert "serving_backend='sharded'" in message
        assert "serving_backend='threaded'" in message
        assert "threaded" in message and "sharded" in message
        assert info.value.phase == "configure"

    def test_governance_field_accepts_config_and_none(self):
        assert FederationConfig().governance is None
        config = FederationConfig(governance=GovernanceConfig())
        assert config.governance.permissive

    def test_bad_thresholds_rejected(self):
        with pytest.raises(GatewayConfigError, match="r2_required"):
            FederationConfig(r2_required=1.5)
        with pytest.raises(GatewayConfigError, match="max_window"):
            FederationConfig(max_window=2)
        with pytest.raises(GatewayConfigError, match="optimizer_algorithm"):
            FederationConfig(optimizer_algorithm="tabu")
        with pytest.raises(GatewayConfigError, match="exact_limit"):
            FederationConfig(exact_limit=0)
        with pytest.raises(GatewayConfigError, match="metrics"):
            FederationConfig(metrics=())
        # Cross-field: a size watermark above the queue bound could
        # never fire, so it is refused eagerly.
        with pytest.raises(GatewayConfigError, match="could never fire"):
            FederationConfig(ingest_queue_depth=8, ingest_batch_max=9)

    def test_config_errors_are_structured_and_compatible(self):
        with pytest.raises(FederationError) as info:
            FederationConfig(cache_capacity=0)
        error = info.value
        assert error.phase == "configure"
        assert error.template is None
        assert "phase=configure" in str(error)
        # Old-style handlers keep working.
        assert isinstance(error, ValidationError)


class TestStrategyRegistry:
    def test_builtins_registered(self):
        names = available_strategies()
        assert {"dream-incremental", "dream-batch", "bml"} <= set(names)

    def test_dream_incremental_honours_cache_config(self):
        config = FederationConfig(
            cache_capacity=7, cache_ttl_seconds=30.0, r2_required=0.9, max_window=10
        )
        strategy = create_strategy(config)
        assert isinstance(strategy, DreamStrategy)
        assert strategy.incremental
        assert strategy.r2_required == 0.9
        assert strategy.max_window == 10
        assert strategy.engine_cache.capacity == 7
        assert strategy.engine_cache.ttl_seconds == 30.0

    def test_dream_batch_backend(self):
        strategy = create_strategy(FederationConfig(strategy="dream-batch"))
        assert isinstance(strategy, DreamStrategy)
        assert not strategy.incremental

    def test_bml_backend_with_window(self):
        strategy = create_strategy(
            FederationConfig(strategy="bml", strategy_options={"window_multiple": 2})
        )
        assert isinstance(strategy, BmlStrategy)
        assert strategy.name == "BML_2N"
        with pytest.raises(GatewayConfigError, match="window_multiple"):
            create_strategy(
                FederationConfig(
                    strategy="bml", strategy_options={"window_multiple": 0}
                )
            )

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(UnknownStrategyError) as info:
            create_strategy(FederationConfig(strategy="oracle-ml"))
        assert info.value.name == "oracle-ml"
        assert "dream-incremental" in str(info.value)
        assert isinstance(info.value, ValidationError)

    def test_duplicate_registration_refused(self):
        with pytest.raises(GatewayConfigError, match="already registered"):
            register_strategy("dream-incremental", lambda config: None)

    def test_custom_backend_selected_by_config(self):
        marker = {}

        def factory(config):
            marker["options"] = dict(config.strategy_options)
            return DreamStrategy(r2_required=config.r2_required, max_window=10)

        register_strategy("custom-test-backend", factory)
        try:
            midas = MidasSystem(
                patient_count=300,
                seed=5,
                config=FederationConfig(
                    strategy="custom-test-backend", strategy_options={"tag": 1}
                ),
            )
            assert isinstance(midas.gateway.strategy, DreamStrategy)
            assert midas.gateway.strategy.max_window == 10
            assert marker["options"] == {"tag": 1}
        finally:
            unregister_strategy("custom-test-backend")


class TestEnvelopes:
    def test_submit_request_validation(self):
        with pytest.raises(EnvelopeError):
            SubmitRequest("")
        with pytest.raises(EnvelopeError):
            SubmitRequest(KEY, tick=-1)

    def test_observe_request_validation(self):
        with pytest.raises(EnvelopeError):
            ObserveRequest(KEY, candidate_index=-2)
        with pytest.raises(EnvelopeError) as info:
            ObserveRequest("", {})
        assert isinstance(info.value, ValidationError)


class TestErrorTaxonomy:
    def test_unknown_template(self, midas):
        with pytest.raises(UnknownTemplateError) as info:
            midas.gateway.submit(SubmitRequest("no-such-template"))
        assert info.value.template == "no-such-template"
        assert info.value.phase == "validate"
        assert isinstance(info.value, ValidationError)

    def test_duplicate_template(self, midas):
        with pytest.raises(DuplicateTemplateError) as info:
            midas.gateway.register_template(MEDICAL_QUERIES[KEY])
        assert info.value.template == KEY
        assert info.value.phase == "register"

    def test_insufficient_history(self):
        fresh = make_midas(runs=0)
        with pytest.raises(InsufficientHistoryError) as info:
            fresh.gateway.submit(SubmitRequest(KEY, {"min_age": 30}))
        assert info.value.template == KEY
        assert info.value.phase == "estimate"
        # Old-style handlers keep working.
        assert isinstance(info.value, EstimationError)
        with pytest.raises(InsufficientHistoryError):
            fresh.gateway.session(KEY)

    def test_too_short_history_is_typed_too(self):
        fresh = make_midas(runs=0)
        fresh.gateway.observe(ObserveRequest(KEY, {"min_age": 10}))
        # Non-empty but below the minimum window: still the typed error,
        # not a bare EstimationError leaking from the fit.
        with pytest.raises(InsufficientHistoryError) as info:
            fresh.gateway.submit(SubmitRequest(KEY, {"min_age": 30}))
        assert info.value.template == KEY


class TestGatewayFunctional:
    def test_submit_returns_typed_report(self, midas):
        policy = UserPolicy(weights=(0.5, 0.5))
        report = midas.gateway.submit(SubmitRequest(KEY, {"min_age": 30}, policy))
        assert report.template == KEY
        assert report.candidate_count == 24
        assert set(report.predicted_costs) == {"time", "money"}
        assert set(report.measured_costs) == {"time", "money"}
        assert set(report.errors) == {"time", "money"}
        assert report.predicted == report.result.chosen.objectives
        assert report.cost_model.strategy == "dream"
        assert not report.pinned
        assert report.executed
        assert KEY in report.describe()

    def test_observe_rotates_through_the_qep_space(self):
        midas = make_midas(runs=0)
        first = midas.gateway.observe(ObserveRequest(KEY, {"min_age": 10}))
        second = midas.gateway.observe(ObserveRequest(KEY, {"min_age": 10}))
        assert first.candidate.describe() != second.candidate.describe()
        assert second.history_size == 2
        assert second.history_version > first.history_version
        assert second.tick == first.tick + 1

    def test_observe_candidate_index_bounds_checked(self, midas):
        with pytest.raises(EnvelopeError, match="out of range"):
            midas.gateway.observe(
                ObserveRequest(KEY, {"min_age": 10}, candidate_index=10_000)
            )

    def test_explicit_ticks_keep_auto_ticks_monotone(self):
        midas = make_midas(runs=0)
        explicit = midas.gateway.observe(
            ObserveRequest(KEY, {"min_age": 10}, tick=500)
        )
        auto = midas.gateway.observe(ObserveRequest(KEY, {"min_age": 10}))
        assert explicit.tick == 500
        assert auto.tick == 501

    def test_refresh_and_model(self, midas):
        models = midas.gateway.refresh([KEY])
        assert KEY in models
        assert midas.gateway.model(KEY).training_size >= 3
        with pytest.raises(UnknownTemplateError):
            midas.gateway.refresh(["nope"])

    def test_templates_listing(self, midas):
        assert midas.gateway.templates() == tuple(sorted(MEDICAL_QUERIES))

    def test_serving_stats_surface(self, midas):
        stats = midas.gateway.serving_stats
        assert stats.templates == len(MEDICAL_QUERIES)
        assert stats.fits >= 1
        # Gateway observes/submissions are counted as observations.
        assert stats.observations >= 12


class TestPredictionErrorSemantics:
    """Satellite: zero measured costs must never drop a requested metric."""

    def _result(self, predicted, measured):
        from repro.engines.metrics import ExecutionMetrics
        from repro.engines.simulate import QueryExecution
        from repro.ires.platform import SubmissionResult
        from repro.moqp.problem import Candidate

        execution = QueryExecution(
            tick=0,
            metrics=ExecutionMetrics(
                execution_time_s=measured[0], intermediate_bytes=measured[1],
                monetary_cost_usd=1.0,
            ),
            profile=None,
            clusters={},
            load_factor=1.0,
        )
        return SubmissionResult(
            request=None,
            cost_model=None,
            candidate_count=1,
            pareto_set=[],
            chosen=Candidate(None, tuple(predicted)),
            execution=execution,
        )

    def test_zero_measured_nonzero_predicted_is_inf(self):
        result = self._result(predicted=(2.0, 5.0), measured=(4.0, 0.0))
        errors = result.prediction_error(("time", "intermediate"))
        assert errors["time"] == pytest.approx(0.5)
        assert errors["intermediate"] == float("inf")

    def test_zero_measured_zero_predicted_is_exact(self):
        result = self._result(predicted=(2.0, 0.0), measured=(4.0, 0.0))
        errors = result.prediction_error(("time", "intermediate"))
        assert errors["intermediate"] == 0.0

    def test_every_requested_metric_reported(self):
        result = self._result(predicted=(2.0, 5.0), measured=(0.0, 0.0))
        errors = result.prediction_error(("time", "intermediate"))
        assert set(errors) == {"time", "intermediate"}

    def test_plan_only_result_raises(self):
        from repro.ires.platform import SubmissionResult
        from repro.moqp.problem import Candidate

        result = SubmissionResult(
            request=None, cost_model=None, candidate_count=1,
            pareto_set=[], chosen=Candidate(None, (1.0,)), execution=None,
        )
        with pytest.raises(EstimationError, match="not executed"):
            result.prediction_error(("time",))


class TestMoqpAlgorithmObservability:
    """The exact -> nsga2 degradation is recorded, not silent."""

    def test_exact_reported_by_default(self, midas):
        report = midas.gateway.submit(SubmitRequest(KEY, {"min_age": 40}))
        assert report.moqp_algorithm == "exact"
        assert report.moqp_exact_fallback is False

    def test_fallback_recorded_on_report(self):
        midas = make_midas(
            seed=11,
            config=FederationConfig(
                strategy="dream-incremental",
                r2_required=0.8,
                max_window=24,
                exact_limit=2,
            ),
        )
        report = midas.gateway.submit(SubmitRequest(KEY, {"min_age": 40}))
        assert report.candidate_count > 2
        assert report.moqp_algorithm == "nsga2"
        assert report.moqp_exact_fallback is True

    def test_default_limit_covers_example31(self):
        from repro.federation import DEFAULT_EXACT_LIMIT
        from repro.ires import vm_configuration_count
        from repro.ires.optimizer import DEFAULT_EXACT_LIMIT as ENGINE_LIMIT

        assert DEFAULT_EXACT_LIMIT >= vm_configuration_count(70, 260)
        # The federation constant restates the engine-room one (so
        # configuring the gateway needs no engine import); they must not
        # drift apart.
        assert DEFAULT_EXACT_LIMIT == ENGINE_LIMIT


class TestSessionApi:
    def test_pin_is_stable_until_repin(self):
        midas = make_midas(seed=7)
        gateway = midas.gateway
        with gateway.session(KEY) as session:
            pinned = session.model
            version = session.pinned_version
            assert not session.stale
            midas.warm_up(KEY, runs=2)  # concurrent-ish history movement
            assert session.model is pinned
            assert session.pinned_version == version
            assert session.stale
            refreshed = session.repin()
            assert refreshed is not pinned
            assert session.pinned_version > version
        assert session.closed

    def test_closed_session_refuses_use(self, midas):
        session = midas.gateway.session(KEY)
        session.close()
        with pytest.raises(SessionStateError) as info:
            session.submit(SubmitRequest(KEY, {"min_age": 30}))
        assert info.value.phase == "session"
        with pytest.raises(SessionStateError):
            session.repin()

    def test_session_rejects_other_templates(self, midas):
        with midas.gateway.session(KEY) as session:
            with pytest.raises(EnvelopeError, match="pinned to"):
                session.submit(
                    SubmitRequest("medical-lab-followup", {"testname": "glucose"})
                )

    def test_submit_many_shares_model_and_enumeration(self, midas):
        weights = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
        with midas.gateway.session(KEY) as session:
            batch = session.submit_many(
                [
                    SubmitRequest(KEY, {"min_age": 30}, UserPolicy(weights=w))
                    for w in weights
                ],
                execute=False,
            )
            assert isinstance(batch, BatchReport)
            assert len(batch) == 3
            assert batch.enumerations == 1  # same params -> one QEP space
            assert batch.cost_model is session.model
            for report in batch:
                assert report.pinned
                assert report.cost_model is batch.cost_model
                assert not report.executed
                assert report.measured_costs is None and report.errors is None

    def test_plan_only_batch_leaves_history_untouched(self, midas):
        before = midas.gateway.history(KEY).version
        with midas.gateway.session(KEY) as session:
            session.submit_many(
                [SubmitRequest(KEY, {"min_age": 30})], execute=False
            )
        assert midas.gateway.history(KEY).version == before

    def test_executed_batch_appends_in_order(self):
        midas = make_midas(seed=9)
        before = midas.gateway.history(KEY).size
        batch = midas.gateway.submit_many(
            [SubmitRequest(KEY, {"min_age": a}) for a in (20, 40)]
        )
        assert midas.gateway.history(KEY).size == before + 2
        assert batch.enumerations == 2  # distinct params -> distinct spaces
        assert batch[1].tick == batch[0].tick + 1

    def test_submit_many_rejects_empty_batch(self, midas):
        with pytest.raises(EnvelopeError, match="at least one"):
            midas.gateway.submit_many([])

    def test_mixed_template_batch_rejected_before_any_execution(self, midas):
        sizes = {
            key: midas.gateway.history(key).size for key in midas.gateway.templates()
        }
        with pytest.raises(EnvelopeError, match="batch contains"):
            midas.gateway.submit_many(
                [
                    SubmitRequest(KEY, {"min_age": 30}),
                    SubmitRequest("medical-lab-followup", {"testname": "glucose"}),
                ]
            )
        for key, size in sizes.items():  # nothing executed partially
            assert midas.gateway.history(key).size == size


class TestOracleEquivalence:
    """Acceptance: the gateway surface adds zero numeric drift over the
    old ``IReSPlatform.submit`` path on a scripted drift scenario."""

    SEED = 13
    POLICIES = (
        UserPolicy(weights=(0.5, 0.5)),
        UserPolicy(weights=(1.0, 0.0)),
        UserPolicy(weights=(0.2, 0.8)),
    )

    def _profile(self, observe, candidates_of, rng, runs: int, tick0: int):
        """The shared exploratory script, expressed over either surface."""
        template = MEDICAL_QUERIES[KEY]
        for run in range(runs):
            params = template.sample_params(rng)
            space = candidates_of(params)
            candidate = space[int(rng.integers(0, len(space)))]
            observe(params, candidate, tick0 + run)

    def test_scripted_scenario_matches_old_platform_path(self):
        # Two identical worlds (same data, same simulator seed, same rng
        # scripts); A is driven through the old platform API, B through
        # the gateway envelopes.
        midas_a = MidasSystem(patient_count=300, seed=self.SEED)
        midas_b = MidasSystem(patient_count=300, seed=self.SEED)
        platform = midas_a.gateway.engine  # the old surface
        gateway = midas_b.gateway

        rng_a = RngStream(99, "oracle")
        rng_b = RngStream(99, "oracle")
        self._profile(
            lambda params, candidate, tick: platform.observe(
                KEY, params, candidate, tick
            ),
            lambda params: platform.candidates_for(KEY, params)[1],
            rng_a, runs=14, tick0=0,
        )
        self._profile(
            lambda params, candidate, tick: gateway.observe(
                ObserveRequest(KEY, params, tick=tick), candidate=candidate
            ),
            lambda params: gateway.candidates(KEY, params),
            rng_b, runs=14, tick0=0,
        )

        # Interleaved drift + single submissions (the default path).
        template = MEDICAL_QUERIES[KEY]
        for i, policy in enumerate(self.POLICIES):
            tick = 100 + 10 * i
            result = platform.submit(KEY, {"min_age": 25 + i}, policy, tick)
            report = gateway.submit(
                SubmitRequest(KEY, {"min_age": 25 + i}, policy, tick=tick)
            )
            assert (
                report.cost_model.training_size == result.cost_model.training_size
            ), "DREAM window diverged"
            assert report.chosen.describe() == result.chosen_candidate.describe()
            for got, want in zip(report.predicted, result.predicted):
                assert abs(got - want) < 1e-9
            assert report.measured_costs["time"] == pytest.approx(
                result.execution.metrics.execution_time_s, rel=1e-12
            )
            # More drift between submissions.
            self._profile(
                lambda params, candidate, t: platform.observe(
                    KEY, params, candidate, t
                ),
                lambda params: platform.candidates_for(KEY, params)[1],
                rng_a, runs=3, tick0=tick + 1,
            )
            self._profile(
                lambda params, candidate, t: gateway.observe(
                    ObserveRequest(KEY, params, t),
                    candidate=candidate,
                ),
                lambda params: gateway.candidates(KEY, params),
                rng_b, runs=3, tick0=tick + 1,
            )

        # Pinned batch: session.submit_many vs the old path with the
        # platform's own pinned snapshot threaded through submit().
        pinned = platform.serving.model(KEY)
        batch_requests = [
            SubmitRequest(KEY, {"min_age": 35}, policy, tick=200 + i)
            for i, policy in enumerate(self.POLICIES)
        ] + [SubmitRequest(KEY, {"min_age": 55}, self.POLICIES[0], tick=203)]
        old_results = [
            platform.submit(
                request.template,
                request.params,
                request.policy,
                request.tick,
                cost_model=pinned,
            )
            for request in batch_requests
        ]
        with gateway.session(KEY) as session:
            batch = session.submit_many(batch_requests)
        assert batch.enumerations == 2  # two distinct query instances
        for report, result in zip(batch, old_results):
            assert (
                report.cost_model.training_size == result.cost_model.training_size
            )
            assert report.chosen.describe() == result.chosen_candidate.describe()
            for got, want in zip(report.predicted, result.predicted):
                assert abs(got - want) < 1e-9
            assert report.measured_costs["money"] == pytest.approx(
                result.execution.metrics.monetary_cost_usd, rel=1e-12
            )
        # Both worlds logged the same executions throughout.
        history_a = platform.history(KEY)
        history_b = gateway.history(KEY)
        assert history_a.size == history_b.size
        assert np.array_equal(history_a.feature_matrix(), history_b.feature_matrix())
        for metric in history_a.metric_names:
            assert np.array_equal(history_a.targets(metric), history_b.targets(metric))


class TestCliDemo:
    def test_demo_quick_runs(self, capsys):
        from repro.__main__ import main

        assert main(["demo", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Pinned-session policy sweep" in out
        assert "enumerations performed: 1" in out

    def test_demo_ingest_batch_prints_front_door_counters(self, capsys):
        from repro.__main__ import main

        assert main(["demo", "--quick", "--ingest-batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "Front-door ingest burst" in out
        # 32 streamed-burst rows + 8 awaited ingest_async rows.
        assert "Ingest counters: admitted=40" in out
        assert "rejected=0" in out and "flushes=3 (size=2" in out
        assert "streaming    :" in out and "asyncio      : awaited 8" in out


@pytest.mark.slow
class TestSessionPinningConcurrency:
    """Satellite: pinned snapshots under concurrent observes."""

    OBSERVERS = 3
    TICKS_PER_OBSERVER = 10

    def test_pinned_snapshot_bitwise_stable_under_concurrent_observes(self):
        midas = make_midas(seed=21, runs=12)
        gateway = midas.gateway
        probe = RngStream(3, "pin-probe").uniform(
            5.0, 200.0, size=(64, len(gateway.history(KEY).feature_names))
        )

        session = gateway.session(KEY)
        pinned_version = session.pinned_version
        baseline = {
            metric: column.copy()
            for metric, column in session.estimate_batch(probe).items()
        }

        template = MEDICAL_QUERIES[KEY]
        start = threading.Barrier(self.OBSERVERS + 1)
        failures = []

        def observer(worker: int):
            rng = RngStream(77, "pin-observer", str(worker))
            start.wait()
            for _ in range(self.TICKS_PER_OBSERVER):
                params = template.sample_params(rng)
                try:
                    gateway.observe(ObserveRequest(KEY, params))
                except Exception as error:  # pragma: no cover - failure path
                    failures.append(error)

        threads = [
            threading.Thread(target=observer, args=(i,))
            for i in range(self.OBSERVERS)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        # While the observers hammer the history, the pinned snapshot
        # must answer bit-for-bit identically, every time.
        for _ in range(50):
            predictions = session.estimate_batch(probe)
            for metric, column in predictions.items():
                if not np.array_equal(column, baseline[metric]):
                    failures.append(f"pinned prediction drifted for {metric}")
        for thread in threads:
            thread.join()
        assert not failures

        # The history moved past the pin...
        moved = self.OBSERVERS * self.TICKS_PER_OBSERVER
        assert gateway.history(KEY).version == pinned_version + moved
        assert session.stale
        final = session.estimate_batch(probe)
        for metric, column in final.items():
            assert np.array_equal(column, baseline[metric])

        # ...and unpinning picks up the newer model.
        old_model = session.model
        refreshed = session.repin()
        assert refreshed is not old_model
        assert session.pinned_version == pinned_version + moved
        session.close()
        report = gateway.submit(SubmitRequest(KEY, {"min_age": 30}))
        assert report.cost_model is not old_model
        unpinned = gateway.model(KEY)
        assert unpinned.training_size == unpinned.training_size  # sanity
        assert gateway.serving_stats.fits >= 2
