"""Property tests for the rank-one incremental PRESS statistic.

The satellite guarantee: ``RecursiveLeastSquares(track_press=True)``
reproduces ``MultipleLinearRegression.press_r_squared_`` to 1e-9 at
every window size — through rank-one carries on well-conditioned
windows and through the exact-recompute fallback on near-rank-deficient
ones (the MIDAS constant-engine-indicator case).  Seeds are derived
with :func:`repro.common.rng.derive_seed`, so Hypothesis explores a
stable, process-independent space of regression problems.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EstimationError
from repro.common.rng import RngStream, derive_seed
from repro.ml import MultipleLinearRegression, RecursiveLeastSquares

PRESS_TOLERANCE = 1e-9


def regression_stream(seed: int, n: int, dimension: int, indicator: bool):
    """A random regression problem; optionally the last feature is a
    near-constant engine indicator (MIDAS: one engine almost always
    wins), which makes small windows rank-deficient."""
    rng = RngStream(derive_seed(seed, "press-property"), "data")
    features = rng.uniform(-5.0, 5.0, size=(n, dimension))
    if indicator and dimension >= 1:
        features[:, -1] = (rng.random(n) < 0.08).astype(float)
    slopes = rng.uniform(-2.0, 2.0, size=dimension)
    targets = 1.5 + features @ slopes + rng.normal(0.0, 0.5, size=n)
    return features, targets


class TestIncrementalPressEqualsBatch:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        dimension=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=1, max_value=25),
        indicator=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_press_matches_batch_across_growing_windows(
        self, seed, dimension, extra, indicator
    ):
        n = dimension + 2 + extra
        features, targets = regression_stream(seed, n, dimension, indicator)
        rls = RecursiveLeastSquares(dimension, track_press=True)
        for i in range(n):
            rls.update(features[i], targets[i])
            if i + 1 < dimension + 2:
                continue
            batch = MultipleLinearRegression().fit(features[: i + 1], targets[: i + 1])
            assert rls.press_r_squared_tracked() == pytest.approx(
                batch.press_r_squared_, abs=PRESS_TOLERANCE
            )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_press_survives_downdates(self, seed):
        """Sliding the window (downdate) invalidates the carry; the next
        query must still agree with a batch fit of the remaining rows."""
        dimension, n, drop = 2, 14, 4
        features, targets = regression_stream(seed, n, dimension, indicator=False)
        rls = RecursiveLeastSquares(dimension, track_press=True)
        for i in range(n):
            rls.update(features[i], targets[i])
        assert rls.press_r_squared_tracked() == pytest.approx(
            MultipleLinearRegression().fit(features, targets).press_r_squared_,
            abs=PRESS_TOLERANCE,
        )
        for i in range(drop):
            rls.downdate(features[i], targets[i])
        batch = MultipleLinearRegression().fit(features[drop:], targets[drop:])
        assert rls.press_r_squared_tracked() == pytest.approx(
            batch.press_r_squared_, abs=PRESS_TOLERANCE
        )

    def test_constant_indicator_window_takes_exact_path(self):
        """A fully constant indicator column keeps the normal matrix
        singular: the tracked statistic must equal the batch fit, which
        exercises the pinv fallback of the recompute path."""
        rng = RngStream(7, "constant-indicator")
        n, dimension = 12, 3
        features = rng.uniform(0.0, 10.0, size=(n, dimension))
        features[:, -1] = 1.0  # the MIDAS constant engine indicator
        targets = 2.0 + features[:, 0] * 0.5 + rng.normal(0.0, 0.1, size=n)
        rls = RecursiveLeastSquares(dimension, track_press=True)
        for i in range(n):
            rls.update(features[i], targets[i])
            if i + 1 < dimension + 2:
                continue
            batch = MultipleLinearRegression().fit(features[: i + 1], targets[: i + 1])
            assert rls.press_r_squared_tracked() == pytest.approx(
                batch.press_r_squared_, abs=PRESS_TOLERANCE
            )

    def test_carry_actually_engages(self):
        """Guard against silently recomputing every step: on a well-
        conditioned stream the carried vectors must stay valid across
        updates once materialised."""
        features, targets = regression_stream(3, 20, 2, indicator=False)
        rls = RecursiveLeastSquares(2, track_press=True)
        for i in range(6):
            rls.update(features[i], targets[i])
        rls.press_r_squared_tracked()  # materialises the carry
        assert rls._press_valid
        rls.update(features[6], targets[6])
        assert rls._press_valid  # carried through, not invalidated

    def test_tracked_query_requires_opt_in_and_data(self):
        with pytest.raises(EstimationError, match="track_press"):
            RecursiveLeastSquares(2).press_r_squared_tracked()
        with pytest.raises(EstimationError, match="no observations"):
            RecursiveLeastSquares(2, track_press=True).press_r_squared_tracked()

    def test_downdate_of_unknown_row_is_rejected(self):
        features, targets = regression_stream(1, 6, 2, indicator=False)
        rls = RecursiveLeastSquares(2, track_press=True)
        for i in range(6):
            rls.update(features[i], targets[i])
        with pytest.raises(EstimationError, match="never folded"):
            rls.downdate([99.0, 99.0], 1.0)

    def test_copy_carries_tracking_state(self):
        features, targets = regression_stream(2, 10, 2, indicator=False)
        rls = RecursiveLeastSquares(2, track_press=True)
        for i in range(8):
            rls.update(features[i], targets[i])
        rls.press_r_squared_tracked()
        clone = rls.copy()
        clone.update(features[8], targets[8])
        batch = MultipleLinearRegression().fit(features[:9], targets[:9])
        assert clone.press_r_squared_tracked() == pytest.approx(
            batch.press_r_squared_, abs=PRESS_TOLERANCE
        )
        # The original is untouched by the clone's update.
        original_batch = MultipleLinearRegression().fit(features[:8], targets[:8])
        assert rls.press_r_squared_tracked() == pytest.approx(
            original_batch.press_r_squared_, abs=PRESS_TOLERANCE
        )


class TestUntrackedPathUnchanged:
    def test_untracked_press_signature_still_works(self):
        """The explicit-window ``press_r_squared(X, y)`` form stays the
        compatibility path for callers that do not track rows."""
        features, targets = regression_stream(5, 12, 2, indicator=False)
        rls = RecursiveLeastSquares(2)
        tracked = RecursiveLeastSquares(2, track_press=True)
        for i in range(12):
            rls.update(features[i], targets[i])
            tracked.update(features[i], targets[i])
        assert rls.press_r_squared(features, targets) == pytest.approx(
            tracked.press_r_squared_tracked(), abs=PRESS_TOLERANCE
        )
        assert np.allclose(rls.coefficients, tracked.coefficients)
