"""Streaming results on the batched front door.

Tickets resolve per *segment*, not per flush — these suites pin the
observable consequences:

* mid-flush resolution — earlier segments' tickets are done (reports,
  ``wait()``, callbacks) while a later segment is still executing;
* ``ingest_segment_max`` — size cuts subdivide a flush purely for
  streaming granularity, counted in ``IngestBatch.segments`` and
  ``IngestStats.segments``/``streamed_items``;
* done-callbacks — fire in admission order with resolved tickets,
  immediately when registered after resolution, and a raising callback
  never strands the flush or later callbacks;
* ``FrontDoor.as_completed`` / ``gateway.ingest_iter`` — admission-order
  streaming consumption, bitwise-equal to the sequential replay;
* pipelined flush (``ingest_pipeline=True``) — overlapped prefits keep
  the deterministic mixed-traffic case bitwise-equal to the sequential
  oracle on both backends (the property-level proof lives in
  ``tests/test_sharded_properties.py``).
"""

import threading

import pytest

from repro.common.rng import RngStream
from repro.federation import (
    FederationConfig,
    FrontDoor,
    ObserveRequest,
    SubmitRequest,
)
from repro.midas import MEDICAL_QUERIES, MidasSystem

from tests.helpers import (
    assert_gateway_outcomes_equal,
    assert_report_pair_equal,
    build_gateway_traffic,
    gateway_config,
    run_sequential,
    run_streamed,
)

KEY = "medical-demographics"
KEY2 = "medical-severe-cases"


def make_midas(
    seed: int = 5, runs: int = 10, config: FederationConfig | None = None
) -> MidasSystem:
    midas = MidasSystem(patient_count=300, seed=seed, config=config)
    if runs:
        midas.warm_up(KEY, runs=runs)
    return midas


def observe_request(rng: RngStream, key: str = KEY) -> ObserveRequest:
    return ObserveRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


def submit_request(rng: RngStream, key: str = KEY) -> SubmitRequest:
    return SubmitRequest(key, MEDICAL_QUERIES[key].sample_params(rng))


class TestSegmentStreaming:
    def test_first_segment_resolves_while_second_executes(self):
        # observe, observe, submit(KEY): the submit's template already
        # appended within the flush, so the flush cuts into two segments
        # — and segment one's tickets must be done *before* the submit
        # runs, not at flush end.
        midas = make_midas(seed=31)
        gateway = midas.gateway
        rng = RngStream(7, "stream")
        t1 = gateway.ingest(observe_request(rng))
        t2 = gateway.ingest(observe_request(rng))
        t3 = gateway.ingest(submit_request(rng))
        seen = {}
        inner_submit = gateway.submit

        def spying_submit(request):
            seen["earlier_done"] = (t1.done, t2.done)
            seen["own_done"] = t3.done
            return inner_submit(request)

        gateway.submit = spying_submit
        try:
            batch = gateway.drain()
        finally:
            del gateway.submit
        assert batch.segments == 2
        assert seen["earlier_done"] == (True, True)
        assert seen["own_done"] is False
        assert t1.report is batch.reports[0]
        assert t3.done and t3.report is batch.reports[2]
        assert t1.resolved_at is not None and t1.resolved_at >= t1.admitted_at
        stats = gateway.ingest_stats()
        assert stats.segments == 2
        # Only the non-final segment streamed ahead of the flush end.
        assert stats.streamed_items == 2
        gateway.close()

    def test_segment_max_subdivides_for_streaming(self):
        midas = make_midas(
            seed=32, config=FederationConfig(ingest_segment_max=1)
        )
        gateway = midas.gateway
        rng = RngStream(8, "segment-max")
        for _ in range(3):
            gateway.ingest(observe_request(rng))
        batch = gateway.drain()
        assert batch.segments == 3
        assert batch.failed == 0
        stats = gateway.ingest_stats()
        assert stats.segments == 3
        assert stats.streamed_items == 2
        gateway.close()

    def test_single_segment_flush_streams_nothing(self):
        midas = make_midas(seed=33)
        gateway = midas.gateway
        rng = RngStream(9, "one-segment")
        gateway.ingest(observe_request(rng))
        gateway.ingest(observe_request(rng))
        batch = gateway.drain()
        assert batch.segments == 1
        assert gateway.ingest_stats().streamed_items == 0
        gateway.close()


class TestDoneCallbacks:
    def test_callbacks_fire_in_admission_order_with_resolved_tickets(self):
        midas = make_midas(seed=41, config=FederationConfig(ingest_segment_max=2))
        gateway = midas.gateway
        rng = RngStream(11, "callbacks")
        fired = []
        tickets = []
        for _ in range(5):
            ticket = gateway.ingest(observe_request(rng))
            ticket.add_done_callback(
                lambda t: fired.append((t.seq, t.done, t.report is not None))
            )
            tickets.append(ticket)
        gateway.drain()
        assert [seq for seq, _done, _has in fired] == [t.seq for t in tickets]
        assert all(done and has_report for _seq, done, has_report in fired)
        gateway.close()

    def test_callback_registered_after_done_fires_immediately(self):
        midas = make_midas(seed=42)
        gateway = midas.gateway
        rng = RngStream(12, "late-callback")
        ticket = gateway.ingest(observe_request(rng))
        gateway.drain()
        fired = []
        ticket.add_done_callback(lambda t: fired.append(t.report))
        assert fired == [ticket.report]
        gateway.close()

    def test_raising_callback_never_strands_flush_or_later_callbacks(self):
        midas = make_midas(seed=43)
        gateway = midas.gateway
        rng = RngStream(13, "bad-callback")
        first = gateway.ingest(observe_request(rng))
        second = gateway.ingest(observe_request(rng))
        fired = []
        first.add_done_callback(lambda t: (_ for _ in ()).throw(RuntimeError("boom")))
        first.add_done_callback(lambda t: fired.append("after-raise"))
        second.add_done_callback(lambda t: fired.append("second"))
        batch = gateway.drain()
        assert batch.failed == 0
        assert fired == ["after-raise", "second"]
        gateway.close()


class TestAsCompleted:
    def test_yields_in_admission_order_resolved(self):
        midas = make_midas(seed=51, config=FederationConfig(ingest_segment_max=1))
        gateway = midas.gateway
        rng = RngStream(14, "as-completed")
        tickets = [gateway.ingest(observe_request(rng)) for _ in range(4)]
        drainer = threading.Thread(target=gateway.drain)
        drainer.start()
        try:
            order = [
                (ticket.seq, ticket.done)
                for ticket in FrontDoor.as_completed(tickets, timeout=30.0)
            ]
        finally:
            drainer.join(timeout=30.0)
        assert order == [(t.seq, True) for t in tickets]
        gateway.close()

    def test_total_timeout_raises(self):
        midas = make_midas(seed=52)
        gateway = midas.gateway
        rng = RngStream(15, "timeout")
        ticket = gateway.ingest(observe_request(rng))
        with pytest.raises(TimeoutError, match="unresolved"):
            list(FrontDoor.as_completed([ticket], timeout=0.05))
        gateway.close()  # final flush resolves the ticket
        assert ticket.done


class TestIngestIter:
    def test_matches_sequential_replay(self):
        streamed = make_midas(seed=61)
        sequential = make_midas(seed=61)
        rng_a = RngStream(16, "iter")
        rng_b = RngStream(16, "iter")
        script = ["observe", "observe", "submit", "observe", "submit"]
        requests_a = [
            observe_request(rng_a) if op == "observe" else submit_request(rng_a)
            for op in script
        ]
        requests_b = [
            observe_request(rng_b) if op == "observe" else submit_request(rng_b)
            for op in script
        ]
        try:
            iter_reports = list(streamed.gateway.ingest_iter(requests_a))
            seq_reports = [
                sequential.gateway.submit(r)
                if isinstance(r, SubmitRequest)
                else sequential.gateway.observe(r)
                for r in requests_b
            ]
            assert len(iter_reports) == len(seq_reports)
            for position, (left, right) in enumerate(zip(seq_reports, iter_reports)):
                assert_report_pair_equal(left, right, position)
        finally:
            streamed.gateway.close()
            sequential.gateway.close()

    def test_yields_watermark_flush_results_before_admitting_the_rest(self):
        midas = make_midas(
            seed=62, config=FederationConfig(ingest_batch_max=2)
        )
        gateway = midas.gateway
        rng = RngStream(17, "lazy-iter")
        admitted = {"n": 0}

        def requests():
            for _ in range(5):
                admitted["n"] += 1
                yield observe_request(rng)

        stream = gateway.ingest_iter(requests())
        first = next(stream)
        # The size watermark flushed after two admissions; the first
        # report surfaced then, not after the full five were admitted.
        assert admitted["n"] == 2
        rest = list(stream)
        assert admitted["n"] == 5
        assert first.tick < rest[0].tick
        assert len(rest) == 4
        gateway.close()


class TestPipelinedFlush:
    @pytest.mark.parametrize("backend", ["threaded", "sharded"])
    def test_pipelined_flush_matches_sequential_oracle(self, backend):
        script = [
            (0, "observe"), (0, "observe"), (1, "observe"), (0, "submit"),
            (1, "observe"), (0, "observe"), (1, "observe"), (0, "submit"),
            (1, "observe"), (0, "observe"), (1, "observe"), (1, "observe"),
        ]
        traffic = build_gateway_traffic(script, seed=63)
        sequential = run_sequential(traffic, backend, seed=63)
        pipelined = run_streamed(
            traffic,
            backend,
            seed=63,
            config=gateway_config(
                backend, ingest_pipeline=True, ingest_segment_max=2
            ),
        )
        assert_gateway_outcomes_equal(sequential, pipelined)

    def test_pipeline_actually_overlaps_prefits(self):
        # segment_max=2 cuts [obs K, obs K | sub K2, obs K2 | ...]: the
        # next segment's submit template (KEY2) is untouched by the
        # current segment, so its prefit is safe to overlap — observed
        # via the helper thread's name, never via timing.
        config = FederationConfig(ingest_pipeline=True, ingest_segment_max=2)
        midas = make_midas(seed=64, config=config)
        midas.warm_up(KEY2, runs=10)
        gateway = midas.gateway
        rng = RngStream(18, "overlap")
        prefit_threads = set()
        inner_prefit = gateway._prefit_for_flush

        def spying_prefit(keys):
            prefit_threads.add(threading.current_thread().name)
            return inner_prefit(keys)

        gateway._prefit_for_flush = spying_prefit
        try:
            for _ in range(3):
                gateway.ingest(observe_request(rng, KEY))
                gateway.ingest(observe_request(rng, KEY))
                gateway.ingest(submit_request(rng, KEY2))
                gateway.ingest(observe_request(rng, KEY2))
            batch = gateway.drain()
        finally:
            del gateway._prefit_for_flush
        assert batch.failed == 0
        assert batch.segments >= 2
        assert any(
            name.startswith("frontdoor-prefit") for name in prefit_threads
        ), prefit_threads
        gateway.close()
