"""Tests for the MOEA/D extension optimizer."""

import pytest

from repro.common.errors import ValidationError
from repro.moqp.moead import Moead, MoeadConfig, tchebycheff
from repro.moqp.pareto import hypervolume_2d, pareto_front_indices
from repro.moqp.problem import EnumeratedProblem
from repro.moqp.wsm import normalise_objectives

from tests.test_moqp import concave_problem


class TestTchebycheff:
    def test_at_ideal_is_zero(self):
        assert tchebycheff((1.0, 2.0), (0.5, 0.5), [1.0, 2.0]) == 0.0

    def test_max_weighted_distance(self):
        value = tchebycheff((3.0, 2.0), (1.0, 1.0), [0.0, 0.0])
        assert value == pytest.approx(3.0)

    def test_zero_weight_floored(self):
        value = tchebycheff((3.0, 2.0), (0.0, 1.0), [0.0, 0.0])
        assert value > 0


class TestMoead:
    def test_returns_nondominated(self):
        front = Moead(MoeadConfig(seed=3)).optimise(concave_problem())
        objectives = [c.objectives for c in front]
        assert pareto_front_indices(objectives) == list(range(len(objectives)))

    def test_deterministic_under_seed(self):
        a = Moead(MoeadConfig(seed=5)).optimise(concave_problem())
        b = Moead(MoeadConfig(seed=5)).optimise(concave_problem())
        assert [c.objectives for c in a] == [c.objectives for c in b]

    def test_covers_front_hypervolume(self):
        problem = concave_problem()
        exact = problem.evaluate_all()
        vectors = [c.objectives for c in exact]
        normalised = normalise_objectives(vectors)
        reference = (1.1, 1.1)
        exact_hv = hypervolume_2d(
            [normalised[i] for i in pareto_front_indices(vectors)], reference
        )
        front = Moead(MoeadConfig(subproblems=40, generations=40, seed=3)).optimise(
            concave_problem()
        )
        index = {c.payload: i for i, c in enumerate(exact)}
        approx_hv = hypervolume_2d(
            [normalised[index[c.payload]] for c in front], reference
        )
        assert approx_hv >= 0.80 * exact_hv

    def test_spreads_along_front(self):
        front = Moead(MoeadConfig(subproblems=40, generations=40, seed=3)).optimise(
            concave_problem()
        )
        # Decomposition should find both extremes of the front region.
        xs = [c.objectives[0] for c in front]
        assert max(xs) - min(xs) > 0.4

    def test_rejects_three_objectives(self):
        problem = EnumeratedProblem([0, 1, 2], lambda i: (i, i, i), 3)
        with pytest.raises(ValidationError, match="biobjective"):
            Moead().optimise(problem)

    def test_rejects_tiny_config(self):
        with pytest.raises(ValidationError):
            Moead(MoeadConfig(subproblems=1))

    def test_small_problem(self):
        problem = EnumeratedProblem([0, 1], lambda i: (float(i), 1.0 - i), 2)
        front = Moead(MoeadConfig(subproblems=5, generations=5)).optimise(problem)
        assert 1 <= len(front) <= 2
