"""Tests for the IReS platform: interface, modelling, enumerator, pipeline."""

import pytest

from repro.cloud.federation import paper_federation
from repro.cloud.variability import ConstantLoad
from repro.common.errors import (
    EstimationError,
    PlanError,
    ValidationError,
)
from repro.engines.simulate import MultiEngineSimulator
from repro.ires import (
    BmlStrategy,
    Deployment,
    DreamStrategy,
    Interface,
    IReSPlatform,
    MultiObjectiveOptimizer,
    OptimizerConfig,
    QepEnumerator,
    UserPolicy,
    vm_configuration_count,
)
from repro.ires.enumerator import vm_configuration_space
from repro.ml.selection import ObservationWindow
from repro.plans.physical import EnginePlacement
from repro.tpch import TPCH_QUERIES, TpchDataset
from repro.workloads.tpch_runner import (
    TPCH_DEPLOYMENT,
    TpchFederationConfig,
    TpchFederationWorkload,
)


@pytest.fixture(scope="module")
def workload() -> TpchFederationWorkload:
    return TpchFederationWorkload(
        TpchFederationConfig(
            scale_mib=100,
            physical_scale_factor=0.0005,
            queries=("q12",),
            drift="none",
            fixed_execution=None,  # exercise engine-indicator features
        )
    )


class TestUserPolicy:
    def test_defaults(self):
        policy = UserPolicy()
        assert policy.metrics == ("time", "money")

    def test_weight_arity_checked(self):
        with pytest.raises(ValidationError):
            UserPolicy(metrics=("time",), weights=(0.5, 0.5))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            UserPolicy(weights=(-0.5, 1.5))

    def test_all_zero_rejected(self):
        with pytest.raises(ValidationError):
            UserPolicy(weights=(0.0, 0.0))

    def test_constraint_arity(self):
        with pytest.raises(ValidationError):
            UserPolicy(constraints=(1.0,))

    def test_reweighted(self):
        policy = UserPolicy().reweighted((0.9, 0.1))
        assert policy.weights == (0.9, 0.1)


class TestDeployment:
    def make(self) -> Deployment:
        return Deployment(dict(TPCH_DEPLOYMENT))

    def test_site_and_engine_lookup(self):
        deployment = self.make()
        assert deployment.site_of("orders") == "cloud-a"
        assert deployment.engine_of("lineitem") == "postgresql"

    def test_unknown_table(self):
        with pytest.raises(PlanError, match="not deployed"):
            self.make().site_of("nation")

    def test_execution_options_deduplicated(self):
        options = self.make().execution_options(("orders", "part"))
        assert len(options) == 1  # both tables on hive/cloud-a

    def test_execution_options_cross_engine(self):
        options = self.make().execution_options(("orders", "lineitem"))
        engines = {o.engine for o in options}
        assert engines == {"hive", "postgresql"}

    def test_placement_for(self):
        execution = EnginePlacement("hive", "cloud-a")
        placement = self.make().placement_for(execution)
        assert placement.execution == execution
        assert placement.for_table("orders").engine == "hive"


class TestInterface:
    def test_receive_validates_tables(self, workload):
        interface = Interface(workload.dataset.catalog, workload.deployment)
        sql = TPCH_QUERIES["q12"].render(
            {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        request = interface.receive(sql)
        assert request.tables == ("lineitem", "orders")

    def test_undeployed_table_rejected(self, workload):
        interface = Interface(workload.dataset.catalog, workload.deployment)
        with pytest.raises(PlanError, match="not deployed"):
            interface.receive("select n_name from nation")


class TestEnumerator:
    def test_candidate_count(self, workload):
        template = TPCH_QUERIES["q12"]
        request, candidates = workload.platform().candidates_for(
            "q12", {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        # 2 execution engines x 4 node options (cloud-a) x 3 (cloud-b).
        assert len(candidates) == 2 * 4 * 3

    def test_feature_names_include_engine_indicator(self, workload):
        names = workload.enumerator.feature_names(("orders", "lineitem"))
        assert any(name.startswith("exec_") for name in names)
        assert "size_orders_mib" in names
        assert "nodes_cloud-a" in names

    def test_fixed_execution_drops_indicator(self):
        wl = TpchFederationWorkload(
            TpchFederationConfig(queries=("q12",), fixed_execution=("hive", "cloud-a"))
        )
        names = wl.enumerator.feature_names(("orders", "lineitem"))
        assert not any(name.startswith("exec_") for name in names)

    def test_candidates_have_all_features(self, workload):
        _, candidates = workload.platform().candidates_for(
            "q12", {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        names = set(workload.enumerator.feature_names(("orders", "lineitem")))
        for candidate in candidates[:5]:
            assert set(candidate.features) == names

    def test_sizes_shrink_with_sampling(self, workload):
        template = TPCH_QUERIES["q12"]
        from repro.plans.binder import plan_sql
        from repro.plans.optimizer import optimize

        sql = template.render({"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994})
        plan = optimize(plan_sql(sql, workload.dataset.catalog))
        full = workload.enumerator.enumerate(
            "q12", plan, workload.dataset.logical_stats, template.tables
        )
        sampled_stats = {
            name: stats.sampled(0.5)
            for name, stats in workload.dataset.logical_stats.items()
        }
        half = workload.enumerator.enumerate("q12", plan, sampled_stats, template.tables)
        assert half[0].features["size_orders_mib"] < full[0].features["size_orders_mib"]


class TestExample31Numbers:
    def test_paper_configuration_count(self):
        assert vm_configuration_count() == 18_200
        assert vm_configuration_count(70, 260) == 70 * 260

    def test_configuration_space_size(self):
        assert len(vm_configuration_space(5, 4)) == 20

    def test_rejects_empty_pool(self):
        with pytest.raises(ValidationError):
            vm_configuration_count(0, 10)


class TestModellingStrategies:
    def test_dream_strategy_reports_r2(self, workload):
        history = workload.build_history("q12", 40)
        fitted = DreamStrategy(r2_required=0.8).fit(history)
        assert fitted.strategy == "dream"
        assert set(fitted.r_squared) == {"time", "money"}
        assert fitted.training_size >= 6

    def test_bml_strategy_reports_winners(self, workload):
        history = workload.build_history("q12", 40)
        fitted = BmlStrategy(ObservationWindow(2)).fit(history)
        assert fitted.strategy == "BML_2N"
        assert set(fitted.winners) == {"time", "money"}

    def test_predictions_are_finite(self, workload):
        history = workload.build_history("q12", 40)
        fitted = DreamStrategy().fit(history)
        x = fitted.model.features_dict_to_vector(history.observations[-1].features)
        prediction = fitted.predict(x)
        assert all(v == v for v in prediction.values())  # not NaN


class TestPlatformPipeline:
    @pytest.fixture(scope="class")
    def platform(self):
        wl = TpchFederationWorkload(
            TpchFederationConfig(
                scale_mib=100,
                queries=("q12",),
                drift="none",
                fixed_execution=None,
            )
        )
        platform = wl.platform(DreamStrategy(r2_required=0.8))
        template = TPCH_QUERIES["q12"]
        from repro.common.rng import RngStream

        rng = RngStream(3, "warmup")
        for tick in range(12):
            params = template.sample_params(rng)
            _, candidates = platform.candidates_for("q12", params)
            candidate = candidates[int(rng.integers(0, len(candidates)))]
            platform.observe("q12", params, candidate, tick)
        return platform

    def test_submit_full_pipeline(self, platform):
        result = platform.submit(
            "q12",
            {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994},
            UserPolicy(weights=(0.5, 0.5)),
            tick=50,
        )
        assert result.candidate_count == 24
        assert len(result.pareto_set) >= 1
        assert result.execution.metrics.execution_time_s > 0
        assert len(result.predicted) == 2

    def test_submit_requires_history(self, workload):
        platform = workload.platform()
        with pytest.raises(EstimationError, match="no execution history"):
            platform.submit(
                "q12",
                {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994},
                UserPolicy(),
                tick=0,
            )

    def test_chosen_plan_respects_time_weight(self, platform):
        # With all weight on time, the chosen plan's predicted time must
        # be minimal within the Pareto set.
        result = platform.submit(
            "q12",
            {"shipmode1": "RAIL", "shipmode2": "AIR", "year": 1995},
            UserPolicy(weights=(1.0, 0.0)),
            tick=60,
        )
        times = [c.objectives[0] for c in result.pareto_set]
        assert result.predicted[0] == pytest.approx(min(times))

    def test_duplicate_template_rejected(self, platform):
        with pytest.raises(ValidationError, match="already registered"):
            platform.register_template(TPCH_QUERIES["q12"])

    def test_unknown_template(self, platform):
        with pytest.raises(ValidationError, match="unknown template"):
            platform.submit("q99", {}, UserPolicy(), 0)

    def test_history_grows_with_submissions(self, platform):
        before = platform.history("q12").size
        platform.submit(
            "q12",
            {"shipmode1": "MAIL", "shipmode2": "FOB", "year": 1996},
            UserPolicy(),
            tick=70,
        )
        assert platform.history("q12").size == before + 1

    def test_prediction_error_computable(self, platform):
        result = platform.submit(
            "q12",
            {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1997},
            UserPolicy(),
            tick=80,
        )
        errors = result.prediction_error(("time", "money"))
        assert set(errors) <= {"time", "money"}
        assert all(v >= 0 for v in errors.values())


class TestOptimizerConfig:
    def test_bad_algorithm(self):
        with pytest.raises(ValidationError):
            OptimizerConfig(algorithm="tabu")

    def test_exact_fallback_to_nsga(self, workload):
        history = workload.build_history("q12", 30)
        fitted = DreamStrategy().fit(history)
        _, candidates = workload.platform().candidates_for(
            "q12", {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        optimizer = MultiObjectiveOptimizer(OptimizerConfig(algorithm="exact", exact_limit=4))
        search = optimizer.pareto_search(candidates, fitted, ("time", "money"))
        assert search.pareto_set  # fell back to NSGA-II without error
        assert search.algorithm == "exact"
        assert search.algorithm_used == "nsga2"
        assert search.exact_fallback is True

    def test_exact_within_limit_records_no_fallback(self, workload):
        history = workload.build_history("q12", 30)
        fitted = DreamStrategy().fit(history)
        _, candidates = workload.platform().candidates_for(
            "q12", {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        search = MultiObjectiveOptimizer().pareto_search(
            candidates, fitted, ("time", "money")
        )
        assert search.algorithm_used == "exact"
        assert search.exact_fallback is False

    def test_default_exact_limit_covers_example31(self):
        from repro.ires.optimizer import DEFAULT_EXACT_LIMIT

        assert OptimizerConfig().exact_limit == DEFAULT_EXACT_LIMIT
        assert DEFAULT_EXACT_LIMIT >= vm_configuration_count(70, 260)

    def test_nsga_g_path(self, workload):
        history = workload.build_history("q12", 30)
        fitted = DreamStrategy().fit(history)
        _, candidates = workload.platform().candidates_for(
            "q12", {"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994}
        )
        optimizer = MultiObjectiveOptimizer(OptimizerConfig(algorithm="nsga-g"))
        front = optimizer.pareto_set(candidates, fitted, ("time", "money"))
        assert front
