"""Tests for the engine simulators and multi-engine federation simulator."""

import pytest

from repro.cloud import CloudProvider, Cluster, find_instance
from repro.cloud.federation import paper_federation
from repro.cloud.variability import ConstantLoad
from repro.common.errors import ExecutionError
from repro.common.rng import RngStream
from repro.common.units import MIB
from repro.engines import (
    HiveEngine,
    MultiEngineSimulator,
    PostgresEngine,
    SparkEngine,
    default_engines,
    engine_by_name,
    schedule_tasks,
)
from repro.engines.simulation import split_into_tasks
from repro.plans.binder import plan_sql
from repro.plans.optimizer import optimize
from repro.plans.physical import (
    EnginePlacement,
    OperatorProfile,
    Placement,
    profile_plan,
)
from repro.tpch import TpchDataset, TPCH_QUERIES


def make_cluster(nodes=2, instance="a1.xlarge") -> Cluster:
    return Cluster("cloud-a", find_instance(CloudProvider.AMAZON, instance), nodes)


def scan_op(bytes_=100 * MIB, rows=1_000_000, engine="hive", site="cloud-a"):
    return OperatorProfile("scan", engine, site, rows, bytes_, rows, bytes_, "t")


def join_op(in_bytes=50 * MIB, in_rows=500_000, out_rows=100_000, engine="hive", site="cloud-a"):
    return OperatorProfile("join", engine, site, in_rows, in_bytes, out_rows, out_rows * 50.0)


class TestTaskScheduler:
    def test_waves(self):
        timeline = schedule_tasks([1.0] * 10, slots=4)
        assert timeline.makespan_s == pytest.approx(3.0)
        assert timeline.wave_count == 3

    def test_single_slot_serialises(self):
        timeline = schedule_tasks([1.0, 2.0, 3.0], slots=1)
        assert timeline.makespan_s == pytest.approx(6.0)

    def test_more_slots_than_tasks(self):
        timeline = schedule_tasks([5.0, 1.0], slots=8)
        assert timeline.makespan_s == pytest.approx(5.0)

    def test_straggler_dominates(self):
        timeline = schedule_tasks([1.0, 1.0, 1.0, 10.0], slots=4)
        assert timeline.makespan_s == pytest.approx(10.0)

    def test_utilisation_bounds(self):
        timeline = schedule_tasks([1.0] * 8, slots=4)
        assert 0.0 < timeline.slot_utilisation(4) <= 1.0

    def test_empty(self):
        assert schedule_tasks([], slots=2).makespan_s == 0.0

    def test_zero_slots_rejected(self):
        with pytest.raises(ExecutionError):
            schedule_tasks([1.0], slots=0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ExecutionError):
            schedule_tasks([-1.0], slots=1)

    def test_split_into_tasks(self):
        tasks = split_into_tasks(130 * MIB, 64 * MIB)
        assert len(tasks) == 3
        assert sum(tasks) == pytest.approx(130 * MIB)

    def test_split_zero_bytes(self):
        assert split_into_tasks(0, 64 * MIB) == []


class TestEngineModels:
    def test_more_nodes_is_faster_hive(self):
        engine = HiveEngine()
        ops = [scan_op(bytes_=2000 * MIB, rows=20_000_000), join_op()]
        small = engine.base_time(ops, make_cluster(2)).total_s
        large = engine.base_time(ops, make_cluster(8)).total_s
        assert large < small

    def test_more_data_is_slower(self):
        for engine in (HiveEngine(), PostgresEngine(), SparkEngine()):
            small = engine.base_time([scan_op(bytes_=10 * MIB, rows=100_000)], make_cluster()).total_s
            large = engine.base_time([scan_op(bytes_=1000 * MIB, rows=10_000_000)], make_cluster()).total_s
            assert large > small, engine.name

    def test_hive_startup_dominates_small_inputs(self):
        engine = HiveEngine()
        times = engine.base_time([scan_op(bytes_=1 * MIB, rows=1000), join_op(1 * MIB, 1000, 10)], make_cluster())
        assert times.startup_s > times.scan_s + times.cpu_s

    def test_postgres_fastest_on_small_inputs(self):
        ops = [scan_op(bytes_=10 * MIB, rows=100_000), join_op(10 * MIB, 100_000, 1000)]
        cluster = make_cluster(2)
        pg = PostgresEngine().base_time(ops, cluster).total_s
        hive = HiveEngine().base_time(ops, cluster).total_s
        spark = SparkEngine().base_time(ops, cluster).total_s
        assert pg < spark < hive

    def test_hive_scales_better_than_postgres(self):
        """Distributed engines gain more from nodes than single-node PG."""
        ops = [scan_op(bytes_=4000 * MIB, rows=40_000_000)]
        hive_gain = (
            HiveEngine().base_time(ops, make_cluster(1)).total_s
            / HiveEngine().base_time(ops, make_cluster(8)).total_s
        )
        pg_gain = (
            PostgresEngine().base_time(ops, make_cluster(1)).total_s
            / PostgresEngine().base_time(ops, make_cluster(8)).total_s
        )
        assert hive_gain > pg_gain

    def test_postgres_spills_on_memory_pressure(self):
        engine = PostgresEngine()
        small_mem = Cluster("s", find_instance(CloudProvider.MICROSOFT, "B1S"), 1)
        big_mem = Cluster("s", find_instance(CloudProvider.MICROSOFT, "B8MS"), 1)
        ops = [join_op(in_bytes=3000 * MIB, in_rows=10_000_000, out_rows=100_000, engine="postgresql")]
        assert engine.base_time(ops, small_mem).total_s > engine.base_time(ops, big_mem).total_s

    def test_empty_operator_list(self):
        for engine in default_engines().values():
            assert engine.base_time([], make_cluster()).total_s == 0.0

    def test_energy_scales_with_duration_and_cores(self):
        engine = SparkEngine()
        assert engine.energy_joules(10, make_cluster(2)) < engine.energy_joules(10, make_cluster(4))
        assert engine.energy_joules(10, make_cluster(2)) < engine.energy_joules(20, make_cluster(2))

    def test_registry(self):
        assert engine_by_name("hive").name == "hive"
        assert engine_by_name("POSTGRESQL").name == "postgresql"
        with pytest.raises(ExecutionError):
            engine_by_name("oracle")


class TestMultiEngineSimulator:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = TpchDataset(scale_mib=100, physical_scale_factor=0.0005)
        fed = paper_federation()
        placement = Placement(
            tables={
                "orders": EnginePlacement("hive", "cloud-a"),
                "lineitem": EnginePlacement("postgresql", "cloud-b"),
                "customer": EnginePlacement("postgresql", "cloud-b"),
                "part": EnginePlacement("hive", "cloud-a"),
            },
            execution=EnginePlacement("hive", "cloud-a"),
        )
        clusters = {
            "cloud-a": fed.provision("cloud-a", "a1.xlarge", 3),
            "cloud-b": fed.provision("cloud-b", "B2S", 2),
        }
        sql = TPCH_QUERIES["q12"].render({"shipmode1": "MAIL", "shipmode2": "SHIP", "year": 1994})
        plan = optimize(plan_sql(sql, ds.catalog))
        return ds, fed, placement, clusters, plan

    def test_deterministic_under_seed(self, setup):
        ds, fed, placement, clusters, plan = setup
        runs_a = [
            MultiEngineSimulator(fed, load=ConstantLoad(), seed=5)
            .execute(plan, ds.logical_stats, placement, clusters, t)
            .metrics.execution_time_s
            for t in range(3)
        ]
        runs_b = [
            MultiEngineSimulator(fed, load=ConstantLoad(), seed=5)
            .execute(plan, ds.logical_stats, placement, clusters, t)
            .metrics.execution_time_s
            for t in range(3)
        ]
        assert runs_a == runs_b

    def test_noise_varies_between_runs(self, setup):
        ds, fed, placement, clusters, plan = setup
        sim = MultiEngineSimulator(fed, load=ConstantLoad(), seed=5)
        a = sim.execute(plan, ds.logical_stats, placement, clusters, 0).metrics
        b = sim.execute(plan, ds.logical_stats, placement, clusters, 1).metrics
        assert a.execution_time_s != b.execution_time_s

    def test_load_multiplies_time(self, setup):
        ds, fed, placement, clusters, plan = setup
        calm = MultiEngineSimulator(fed, load=ConstantLoad(1.0), noise_sigma=1e-9, seed=5)
        busy = MultiEngineSimulator(fed, load=ConstantLoad(2.0), noise_sigma=1e-9, seed=5)
        t_calm = calm.execute(plan, ds.logical_stats, placement, clusters, 0).metrics
        t_busy = busy.execute(plan, ds.logical_stats, placement, clusters, 0).metrics
        assert t_busy.execution_time_s == pytest.approx(2 * t_calm.execution_time_s, rel=1e-6)

    def test_cross_cloud_transfer_recorded(self, setup):
        ds, fed, placement, clusters, plan = setup
        sim = MultiEngineSimulator(fed, load=ConstantLoad(), seed=5)
        record = sim.execute(plan, ds.logical_stats, placement, clusters, 0)
        assert record.profile.transfers, "lineitem must move cloud-b -> cloud-a"
        assert record.metrics.breakdown["transfer_s"] > 0

    def test_money_includes_egress(self, setup):
        ds, fed, placement, clusters, plan = setup
        sim = MultiEngineSimulator(fed, load=ConstantLoad(), noise_sigma=1e-9, seed=5)
        # Executing at cloud-a moves only the *filtered* lineitem rows
        # (small); executing at cloud-b moves the unfiltered orders table
        # (large).  Egress pricing must therefore favour cloud-a.
        base = sim.base_metrics(
            profile_plan(optimize(plan), ds.logical_stats, placement), clusters
        )
        colocated = Placement(tables=placement.tables, execution=EnginePlacement("postgresql", "cloud-b"))
        base_colocated = sim.base_metrics(
            profile_plan(optimize(plan), ds.logical_stats, colocated), clusters
        )
        moved_a = sum(t.payload_bytes for t in profile_plan(optimize(plan), ds.logical_stats, placement).transfers)
        moved_b = sum(t.payload_bytes for t in profile_plan(optimize(plan), ds.logical_stats, colocated).transfers)
        assert moved_a < moved_b
        assert base.monetary_cost_usd < base_colocated.monetary_cost_usd

    def test_missing_cluster_raises(self, setup):
        ds, fed, placement, _clusters, plan = setup
        sim = MultiEngineSimulator(fed, seed=5)
        with pytest.raises(ExecutionError, match="no cluster"):
            sim.execute(plan, ds.logical_stats, placement, {}, 0)

    def test_metrics_vector(self, setup):
        ds, fed, placement, clusters, plan = setup
        sim = MultiEngineSimulator(fed, seed=5)
        metrics = sim.execute(plan, ds.logical_stats, placement, clusters, 0).metrics
        vector = metrics.as_vector(("time", "money", "intermediate", "energy"))
        assert len(vector) == 4
        assert vector[0] > 0 and vector[1] > 0
