"""Governance plane: identity, policy compilation, enforcement, audit.

Four layers:

1. Validation — ``Principal``, ``DataPolicy`` and ``GovernanceConfig``
   reject garbage eagerly (bad attributes, unknown effects, the
   restricted-wildcard contradiction, duplicate rule ids).
2. Compilation — ``PolicyEngine.constraint_for`` turns declarative rules
   into the right ``PlanConstraint`` (required/excluded sites, fatal
   rules, principal scoping, signatures).
3. Enforcement — the gateway never returns a plan a rule forbids:
   restricted datasets pin candidate enumeration and Pareto fronts to
   the storage site, denials raise ``PolicyViolationError`` (phase
   ``govern``, rule ids attached) from submit, observe, candidates and
   the batched front door alike.
4. Audit — the hash-chained log records every envelope, survives
   verification, detects tampering, and is summarised by
   ``gateway.audit_report()``.
"""

import dataclasses

import pytest

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.federation import (
    DataPolicy,
    FederationConfig,
    GovernanceConfig,
    ObserveRequest,
    PolicyViolationError,
    Principal,
    RebalanceConfig,
    SubmitRequest,
    verify_chain,
)
from repro.governance.audit import GENESIS_HASH, AuditLog, AuditRecord, record_hash
from repro.governance.policy import PlanConstraint, PolicyEngine
from repro.ires.deployment import Deployment
from repro.midas import MEDICAL_QUERIES, MidasSystem
from repro.midas.system import DEFAULT_DEPLOYMENT

CROSS_SITE_KEY = "medical-severe-cases"  # patient@cloud-a + labresult@cloud-b

CLINICIAN = Principal("dr-adams", "clinician", "cloud-a")
RESEARCHER = Principal("lab-ext-7", "researcher", "cloud-b", purpose="research")


def governed_config(*policies, **overrides) -> FederationConfig:
    return FederationConfig(
        max_window=24, governance=GovernanceConfig(policies=policies, **overrides)
    )


def make_governed_midas(config: FederationConfig, runs: int = 10) -> MidasSystem:
    midas = MidasSystem(patient_count=250, seed=11, config=config)
    if runs:
        midas.warm_up(CROSS_SITE_KEY, runs=runs, principal=CLINICIAN)
    return midas


def sample_params(key: str = CROSS_SITE_KEY, salt: str = "governance-test"):
    return MEDICAL_QUERIES[key].sample_params(RngStream(3, salt))


# ---------------------------------------------------------------------------
# 1. Validation


class TestPrincipal:
    def test_attributes_normalised_subject_verbatim(self):
        principal = Principal("Dr-Adams", " Clinician ", "CLOUD-A", "Treatment")
        assert principal.subject == "Dr-Adams"
        assert principal.role == "clinician"
        assert principal.site == "cloud-a"
        assert principal.purpose == "treatment"
        assert "Dr-Adams" in principal.describe()

    @pytest.mark.parametrize("field", ["subject", "role", "site", "purpose"])
    @pytest.mark.parametrize("bad", ["", None, 7])
    def test_bad_attributes_rejected(self, field, bad):
        values = dict(subject="s", role="r", site="x", purpose="p")
        values[field] = bad
        with pytest.raises(ValidationError, match=f"Principal.{field}"):
            Principal(**values)


class TestDataPolicy:
    def test_auto_rule_id_encodes_effect_pair_and_scope(self):
        rule = DataPolicy("patient", "cloud-a", "restricted")
        assert rule.rule_id == "restricted:patient@cloud-a"
        scoped = DataPolicy(
            "*", "cloud-b", "deny", roles=("researcher",), purposes=("research",)
        )
        assert scoped.rule_id == "deny:*@cloud-b|roles=researcher|purposes=research"

    def test_names_normalised(self):
        rule = DataPolicy(" Patient ", "CLOUD-A", "restricted", roles=("Admin",))
        assert rule.dataset == "patient"
        assert rule.site == "cloud-a"
        assert rule.roles == ("admin",)

    def test_unknown_effect_rejected(self):
        with pytest.raises(ValidationError, match="effect"):
            DataPolicy("patient", "cloud-a", "redact")

    def test_restricted_needs_concrete_site(self):
        # restricted(*): "rows may not leave every site at once" admits
        # no plan, so the contradiction is refused at construction.
        with pytest.raises(ValidationError, match="concrete site"):
            DataPolicy("patient", "*", "restricted")

    @pytest.mark.parametrize("field", ["dataset", "site"])
    def test_empty_names_rejected(self, field):
        values = dict(dataset="patient", site="cloud-a", effect="deny")
        values[field] = ""
        with pytest.raises(ValidationError, match=f"DataPolicy.{field}"):
            DataPolicy(**values)

    def test_empty_scope_tuple_rejected(self):
        with pytest.raises(ValidationError, match="roles"):
            DataPolicy("patient", "cloud-a", "deny", roles=())

    def test_scoped_rules_never_match_anonymous(self):
        scoped = DataPolicy("*", "cloud-b", "deny", roles=("researcher",))
        assert not scoped.applies_to(None)
        assert scoped.applies_to(RESEARCHER)
        assert not scoped.applies_to(CLINICIAN)
        purpose_scoped = DataPolicy("*", "cloud-b", "deny", purposes=("research",))
        assert purpose_scoped.applies_to(RESEARCHER)
        assert not purpose_scoped.applies_to(CLINICIAN)
        unscoped = DataPolicy("*", "cloud-b", "deny")
        assert unscoped.applies_to(None) and unscoped.applies_to(CLINICIAN)

    def test_matches_wildcards(self):
        rule = DataPolicy("*", "cloud-b", "deny")
        assert rule.matches("labresult", "cloud-b")
        assert rule.matches("anything", "CLOUD-B")
        assert not rule.matches("labresult", "cloud-a")


class TestGovernanceConfig:
    def test_default_is_permissive(self):
        config = GovernanceConfig()
        assert config.permissive and config.audit

    def test_rules_or_identity_requirement_break_permissiveness(self):
        assert not GovernanceConfig(require_identity=True).permissive
        assert not GovernanceConfig(
            policies=(DataPolicy("patient", "cloud-a", "restricted"),)
        ).permissive

    def test_duplicate_rule_ids_rejected(self):
        rule = DataPolicy("patient", "cloud-a", "restricted")
        with pytest.raises(ValidationError, match="duplicate rule_id"):
            GovernanceConfig(policies=(rule, rule))

    def test_non_policy_rules_rejected(self):
        with pytest.raises(ValidationError, match="DataPolicy"):
            GovernanceConfig(policies=("deny everything",))


# ---------------------------------------------------------------------------
# 2. Compilation


@pytest.fixture(scope="module")
def deployment() -> Deployment:
    return Deployment(dict(DEFAULT_DEPLOYMENT))


CROSS_SITE_TABLES = ("patient", "labresult")


def compile_constraint(deployment, principal, *policies, tables=CROSS_SITE_TABLES):
    engine = PolicyEngine(GovernanceConfig(policies=policies))
    return engine.constraint_for(principal, tables, deployment)


class TestPolicyEngine:
    def test_no_rules_is_unrestricted(self, deployment):
        constraint = compile_constraint(deployment, CLINICIAN)
        assert constraint.unrestricted and not constraint.impossible
        assert constraint.permits("cloud-a") and constraint.permits("cloud-b")

    def test_restricted_pins_execution_to_storage_site(self, deployment):
        constraint = compile_constraint(
            deployment, None, DataPolicy("patient", "cloud-a", "restricted")
        )
        assert constraint.required_sites == frozenset({"cloud-a"})
        assert constraint.permits("cloud-a")
        assert not constraint.permits("cloud-b")
        assert not constraint.impossible

    def test_two_restricted_sites_admit_no_plan(self, deployment):
        constraint = compile_constraint(
            deployment,
            None,
            DataPolicy("patient", "cloud-a", "restricted"),
            DataPolicy("labresult", "cloud-b", "restricted"),
        )
        assert constraint.impossible
        assert not constraint.permits("cloud-a")

    def test_deny_on_storage_site_is_fatal(self, deployment):
        constraint = compile_constraint(
            deployment, None, DataPolicy("labresult", "cloud-b", "deny")
        )
        assert constraint.impossible and constraint.fatal
        assert constraint.rule_ids == ("deny:labresult@cloud-b",)

    def test_wildcard_deny_excludes_site_from_execution(self, deployment):
        # Only cloud-a tables participate, so deny(*@cloud-b) is not
        # fatal: it merely forbids executing over there.
        constraint = compile_constraint(
            deployment,
            None,
            DataPolicy("*", "cloud-b", "deny"),
            tables=("patient", "imagingstudy"),
        )
        assert constraint.excluded_sites == frozenset({"cloud-b"})
        assert not constraint.impossible
        assert constraint.permits("cloud-a") and not constraint.permits("cloud-b")

    def test_wildcard_deny_is_fatal_when_site_holds_data(self, deployment):
        constraint = compile_constraint(
            deployment, None, DataPolicy("*", "cloud-b", "deny")
        )
        assert constraint.impossible and constraint.fatal

    def test_scoped_rule_skipped_for_unmatched_principals(self, deployment):
        rule = DataPolicy("*", "cloud-b", "deny", roles=("researcher",))
        assert compile_constraint(deployment, CLINICIAN, rule).unrestricted
        assert compile_constraint(deployment, None, rule).unrestricted
        assert compile_constraint(deployment, RESEARCHER, rule).impossible

    def test_signature_is_order_insensitive_and_cacheable(self, deployment):
        left = PlanConstraint(required_sites=frozenset({"b", "a"}))
        right = PlanConstraint(required_sites=frozenset({"a", "b"}))
        assert left.signature == right.signature == (("a", "b"), (), False)
        fatal = compile_constraint(
            deployment, None, DataPolicy("labresult", "cloud-b", "deny")
        )
        assert fatal.signature[2] is True


# ---------------------------------------------------------------------------
# 3. Enforcement through the gateway


@pytest.fixture(scope="module")
def governed() -> MidasSystem:
    """One governed stack: restricted(patient@cloud-a) for clinicians,
    deny(*@cloud-b) for researchers, anonymous callers unconstrained,
    audit on."""
    midas = make_governed_midas(
        governed_config(
            DataPolicy("patient", "cloud-a", "restricted", roles=("clinician",)),
            DataPolicy("*", "cloud-b", "deny", roles=("researcher",)),
        )
    )
    yield midas
    midas.gateway.close()


class TestGatewayEnforcement:
    def test_candidates_filtered_to_required_site(self, governed):
        candidates = governed.gateway.candidates(
            CROSS_SITE_KEY, sample_params(), principal=CLINICIAN
        )
        assert candidates
        assert {c.execution.site for c in candidates} == {"cloud-a"}
        # The restricted rule is clinician-scoped, so an anonymous
        # caller still enumerates the full cross-site space.
        open_space = governed.gateway.candidates(CROSS_SITE_KEY, sample_params())
        assert {c.execution.site for c in open_space} == {"cloud-a", "cloud-b"}

    def test_pareto_front_never_leaves_restricted_site(self, governed):
        report = governed.query(
            CROSS_SITE_KEY, sample_params(), principal=CLINICIAN
        )
        sites = {c.payload.execution.site for c in report.pareto_set}
        assert sites == {"cloud-a"}
        assert report.chosen.execution.site == "cloud-a"

    def test_denied_submit_raises_typed_error(self, governed):
        with pytest.raises(PolicyViolationError) as info:
            governed.query(CROSS_SITE_KEY, sample_params(), principal=RESEARCHER)
        error = info.value
        assert error.phase == "govern"
        assert error.template == CROSS_SITE_KEY
        assert error.subject == RESEARCHER.subject
        assert error.rule_ids == ("deny:*@cloud-b|roles=researcher",)
        assert "cloud-b" in str(error)

    def test_denied_observe_raises_typed_error(self, governed):
        with pytest.raises(PolicyViolationError) as info:
            governed.gateway.observe(
                ObserveRequest(CROSS_SITE_KEY, sample_params(), principal=RESEARCHER)
            )
        assert info.value.phase == "govern"

    def test_explicit_forbidden_candidate_rejected(self, governed):
        params = sample_params()
        forbidden = [
            c
            for c in governed.gateway.candidates(CROSS_SITE_KEY, params)
            if c.execution.site != "cloud-a"
        ]
        assert forbidden  # anonymous enumeration still spans both sites
        with pytest.raises(PolicyViolationError, match="forbids"):
            governed.gateway.observe(
                ObserveRequest(CROSS_SITE_KEY, params, principal=CLINICIAN),
                candidate=forbidden[0],
            )

    def test_session_cache_keyed_by_constraint_signature(self, governed):
        params = sample_params()
        with governed.gateway.session(CROSS_SITE_KEY) as session:
            constrained = session.submit(
                SubmitRequest(CROSS_SITE_KEY, params, principal=CLINICIAN),
                execute=False,
            )
            open_plan = session.submit(
                SubmitRequest(CROSS_SITE_KEY, params), execute=False
            )
            # Same SQL, different admissible spaces: two cache entries,
            # and the constrained one is strictly smaller.
            assert len(session._enumerations) == 2
            assert constrained.candidate_count < open_plan.candidate_count
        sites = {c.payload.execution.site for c in constrained.pareto_set}
        assert sites == {"cloud-a"}

    def test_front_door_isolates_denials_per_item(self, governed):
        gateway = governed.gateway
        params = sample_params()
        gateway.ingest(SubmitRequest(CROSS_SITE_KEY, params, principal=CLINICIAN))
        gateway.ingest(SubmitRequest(CROSS_SITE_KEY, params, principal=RESEARCHER))
        gateway.ingest(ObserveRequest(CROSS_SITE_KEY, params, principal=CLINICIAN))
        batch = gateway.drain()
        kinds = [
            None if error is None else type(error).__name__
            for error in batch.errors
        ]
        assert kinds == [None, "PolicyViolationError", None]

    def test_require_identity_denies_anonymous(self):
        midas = make_governed_midas(
            governed_config(require_identity=True), runs=0
        )
        try:
            with pytest.raises(PolicyViolationError) as info:
                midas.query(CROSS_SITE_KEY, sample_params())
            assert info.value.rule_ids == ("identity-required",)
            with pytest.raises(PolicyViolationError):
                midas.gateway.observe(
                    ObserveRequest(CROSS_SITE_KEY, sample_params())
                )
        finally:
            midas.gateway.close()


# ---------------------------------------------------------------------------
# 4. Audit


class TestAuditChain:
    def test_chain_links_and_verifies(self, monkeypatch):
        monkeypatch.setattr("repro.governance.audit.time_fn", lambda: 1234.5)
        log = AuditLog()
        log.append("submit", template="q1", subject="alice", tick=0)
        log.append("observe", template="q1", tick=1)
        log.append("denial", template="q2", subject="bob", outcome="denied")
        records = log.records()
        assert [r.seq for r in records] == [0, 1, 2]
        assert records[0].prev_hash == GENESIS_HASH
        assert records[1].prev_hash == records[0].hash
        assert log.verify() and verify_chain(records)
        assert log.head_hash == records[-1].hash
        assert len(log) == 3
        assert all(r.at == 1234.5 for r in records)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            AuditLog().append("gossip")

    def test_tampering_detected(self):
        log = AuditLog()
        for tick in range(4):
            log.append("observe", template="q", tick=tick)
        records = list(log.records())
        assert verify_chain(records)
        # Rewriting history: flip one field of a middle record.
        forged = dataclasses.replace(records[1], outcome="denied")
        assert not verify_chain(records[:1] + [forged] + records[2:])
        # Dropping a record breaks the dense sequence.
        assert not verify_chain(records[:1] + records[2:])
        # Reordering breaks the hash linkage.
        assert not verify_chain([records[0], records[2], records[1], records[3]])
        # record_hash pins every payload field, including prev_hash.
        assert record_hash(records[2]) == records[2].hash
        assert record_hash(forged) != records[1].hash

    def test_records_snapshot_is_immutable_tuple(self):
        log = AuditLog()
        log.append("submit", template="q")
        snapshot = log.records()
        assert isinstance(snapshot, tuple)
        log.append("observe", template="q")
        assert len(snapshot) == 1 and len(log.records()) == 2


class TestGatewayAudit:
    def test_every_envelope_recorded(self, governed):
        report = governed.gateway.audit_report()
        assert report.enabled and report.chain_valid
        assert report.length == len(report.records) > 0
        assert report.submits > 0
        assert report.observes > 0  # warm-up observes
        assert report.flushes > 0  # the drain() in the front-door test
        assert report.denials > 0  # the researcher denials
        counted = (
            report.submits
            + report.observes
            + report.flushes
            + report.rebalances
            + report.denials
        )
        assert counted == report.length
        assert "intact" in report.describe()

    def test_denial_records_name_subject_and_rules(self, governed):
        denials = [
            r for r in governed.gateway.audit_report().records
            if r.kind == "denial"
        ]
        assert denials
        assert any(r.subject == RESEARCHER.subject for r in denials)
        assert any("deny:*@cloud-b" in r.detail for r in denials)
        assert all(r.outcome == "denied" for r in denials)

    def test_report_limit_truncates_records_not_counts(self, governed):
        full = governed.gateway.audit_report()
        tail = governed.gateway.audit_report(limit=2)
        assert len(tail.records) == 2
        assert tail.records == full.records[-2:]
        assert tail.length == full.length and tail.submits == full.submits
        empty = governed.gateway.audit_report(limit=0)
        assert empty.records == () and empty.length == full.length

    def test_audit_log_verifies_live(self, governed):
        log = governed.gateway.audit_log
        assert log is not None and log.verify()

    def test_audit_disabled_keeps_no_log(self):
        midas = make_governed_midas(governed_config(audit=False), runs=8)
        try:
            midas.query(CROSS_SITE_KEY, sample_params(), principal=CLINICIAN)
            assert midas.gateway.audit_log is None
            report = midas.gateway.audit_report()
            assert not report.enabled
            assert report.length == 0 and report.head_hash == GENESIS_HASH
            assert report.chain_valid  # vacuously: nothing to tamper with
            assert "disabled" in report.describe()
        finally:
            midas.gateway.close()

    def test_ungoverned_gateway_reports_disabled_audit(self):
        midas = MidasSystem(patient_count=250, seed=11)
        try:
            assert not midas.gateway.audit_report().enabled
            assert midas.gateway.audit_log is None
        finally:
            midas.gateway.close()

    def test_rebalance_cycles_are_audited(self):
        config = FederationConfig(
            max_window=24,
            serving_backend="sharded",
            shard_workers=2,
            rebalance=RebalanceConfig(),
            governance=GovernanceConfig(),
        )
        midas = make_governed_midas(config, runs=8)
        try:
            midas.gateway.rebalance()
            report = midas.gateway.audit_report()
            assert report.rebalances >= 1
            cycle = [r for r in report.records if r.kind == "rebalance"][-1]
            assert cycle.outcome == "ok" and cycle.detail
            assert report.chain_valid
        finally:
            midas.gateway.close()
