"""Scalar-vs-vectorized equivalence for the numpy-native MOQP engine.

The vectorized kernels (`pareto_front_indices`, `fast_non_dominated_sort`,
`crowding_distance`, `grid_cells`) must reproduce their retained scalar
oracles *exactly* — same indices, same front order, bitwise-identical
crowding — over point clouds with duplicates, exact per-axis ties,
single-point and all-identical fronts, and ``inf`` objectives (PR 3's
``prediction_error`` inf sentinel can reach objective space).  Seeded
NSGA-II / NSGA-G runs must return fronts identical to the pre-PR scalar
implementations, which are embedded here verbatim as oracles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.moqp import (
    Candidate,
    EnumeratedProblem,
    Nsga2,
    Nsga2Config,
    NsgaG,
    NsgaGConfig,
    dominated_by_any,
    pareto_dominance_matrix,
    pareto_front_indices,
    pareto_front_indices_py,
)
from repro.moqp.dominance import pareto_dominates
from repro.moqp.nsga2 import (
    crowding_distance,
    crowding_distance_py,
    fast_non_dominated_sort,
    fast_non_dominated_sort_py,
)
from repro.moqp.nsga_g import grid_cell, grid_cells
from repro.moqp.pareto import hypervolume_2d, spread_2d

INF = float("inf")

# Coordinates drawn from a small grid force duplicates and exact
# per-axis ties; the explicit inf alternative injects the PR 3 sentinel.
coordinate = st.one_of(
    st.integers(min_value=0, max_value=4).map(float),
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.just(INF),
)
clouds = st.integers(min_value=1, max_value=3).flatmap(
    lambda d: st.lists(
        st.tuples(*([coordinate] * d)), min_size=1, max_size=40
    )
)


class TestParetoFrontEquivalence:
    @given(clouds)
    @settings(max_examples=200)
    def test_matches_scalar_oracle(self, points):
        assert pareto_front_indices(points) == pareto_front_indices_py(points)

    @given(st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=60))
    def test_blocked_scan_matches_oracle(self, points):
        # A tiny block size exercises the block boundaries hard.
        assert (
            pareto_front_indices(points, block_size=3)
            == pareto_front_indices_py(points)
        )

    def test_empty(self):
        assert pareto_front_indices([]) == []

    def test_single_point(self):
        assert pareto_front_indices([(3, 3)]) == [0]

    def test_all_identical_points_all_kept(self):
        points = [(2.0, 2.0)] * 7
        assert pareto_front_indices(points) == list(range(7))
        assert pareto_front_indices_py(points) == list(range(7))

    def test_duplicates_on_front_kept(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front_indices(points) == [0, 1]

    def test_exact_ties_per_axis(self):
        points = [(1, 5), (1, 4), (1, 4), (2, 4), (0, 6)]
        assert pareto_front_indices(points) == pareto_front_indices_py(points)

    def test_inf_objectives(self):
        points = [(INF, 0.0), (0.0, INF), (INF, INF), (1.0, 1.0), (INF, 0.0)]
        assert pareto_front_indices(points) == pareto_front_indices_py(points)

    def test_ragged_rejected(self):
        with pytest.raises(ValidationError):
            pareto_front_indices([(1.0, 2.0), (1.0,), (0.0, 0.0)])

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValidationError):
            pareto_front_indices([(), ()])

    def test_single_empty_vector_matches_oracle(self):
        # The scalar oracle never compares a lone point, so a single
        # zero-length vector passes; with two or more it raises.  The
        # vectorized path mirrors that contract exactly.
        assert pareto_front_indices([()]) == pareto_front_indices_py([()]) == [0]
        with pytest.raises(ValidationError):
            pareto_front_indices_py([(), ()])

    def test_example31_scale_front(self):
        # A deterministic pseudo-cost surface over a big grid: the
        # vectorized scan at thousands of points equals the O(n²) oracle.
        rng = np.random.default_rng(7)
        n = 3000
        vcpus = rng.integers(1, 71, size=n).astype(float)
        memory = rng.integers(1, 261, size=n).astype(float)
        time = 100.0 / vcpus + 2.0 / memory
        money = 0.05 * vcpus + 0.01 * memory
        points = list(zip(time.tolist(), money.tolist()))
        assert pareto_front_indices(points) == pareto_front_indices_py(points)


class TestDominanceKernel:
    @given(clouds)
    @settings(max_examples=100)
    def test_matrix_matches_pairwise(self, points):
        matrix = np.asarray(points, dtype=float).reshape(len(points), -1)
        kernel = pareto_dominance_matrix(matrix, matrix)
        for i, a in enumerate(points):
            for j, b in enumerate(points):
                assert kernel[i, j] == pareto_dominates(a, b)

    def test_dominated_by_any_blockwise(self):
        rng = np.random.default_rng(3)
        points = rng.integers(0, 5, size=(57, 2)).astype(float)
        expected = np.array(
            [
                any(
                    pareto_dominates(tuple(o), tuple(p))
                    for k, o in enumerate(points)
                    if k != j
                )
                for j, p in enumerate(points)
            ]
        )
        # Self-pairs never dominate, so others == points is safe.
        got = dominated_by_any(points, points, block_size=5)
        assert np.array_equal(got, expected)


class TestSortEquivalence:
    @given(clouds)
    @settings(max_examples=200)
    def test_fronts_and_order_match_scalar(self, points):
        assert fast_non_dominated_sort(points) == fast_non_dominated_sort_py(points)

    def test_empty(self):
        assert fast_non_dominated_sort([]) == []

    def test_known_layers(self):
        objectives = [(1, 1), (2, 2), (1, 2), (2, 1), (3, 3)]
        fronts = fast_non_dominated_sort(objectives)
        assert fronts == fast_non_dominated_sort_py(objectives)
        assert fronts[0] == [0]

    def test_front_order_depends_on_last_dominator(self):
        # Crafted so a later index enters the next front before an
        # earlier one — the scalar append-order quirk the vectorized
        # sort must replicate.
        objectives = [(0.0, 3.0), (3.0, 0.0), (4.0, 1.0), (1.0, 4.0)]
        assert (
            fast_non_dominated_sort(objectives)
            == fast_non_dominated_sort_py(objectives)
        )


class TestCrowdingEquivalence:
    @given(clouds)
    @settings(max_examples=100)
    def test_bitwise_identical_per_front(self, points):
        for front in fast_non_dominated_sort_py(points):
            fast = crowding_distance(points, front)
            slow = crowding_distance_py(points, front)
            assert set(fast) == set(slow)
            for member in fast:
                a, b = fast[member], slow[member]
                assert a == b or (np.isnan(a) and np.isnan(b))

    def test_small_fronts_all_infinite(self):
        points = [(0.0, 1.0), (1.0, 0.0)]
        assert crowding_distance(points, [0, 1]) == {0: INF, 1: INF}

    def test_degenerate_axis_skipped(self):
        points = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]
        front = [0, 1, 2, 3]
        assert crowding_distance(points, front) == crowding_distance_py(points, front)


class TestGridCells:
    @given(st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=30))
    def test_matches_scalar_grid_cell(self, points):
        finite = [p for p in points if all(np.isfinite(v) for v in p)]
        if not finite:
            return
        matrix = np.asarray(finite, dtype=float)
        lows = [min(p[axis] for p in finite) for axis in range(2)]
        highs = [max(p[axis] for p in finite) for axis in range(2)]
        cells = grid_cells(matrix, np.asarray(lows), np.asarray(highs), 8)
        for row, point in zip(map(tuple, cells.tolist()), finite):
            assert row == grid_cell(point, lows, highs, 8)

    def test_inf_objectives_clamped_deterministically(self):
        # The scalar grid_cell raises on float('inf') -> int; the
        # vectorized path clamps instead: +inf lands in the top cell.
        points = np.array([[1.0, 2.0], [INF, 3.0], [2.0, INF], [3.0, 1.0]])
        lows = points.min(axis=0)
        highs = points.max(axis=0)  # inf highs -> inf spans
        cells = grid_cells(points, lows, highs, 8)
        assert cells[1, 0] == 7 and cells[2, 1] == 7
        assert cells[0, 0] == 0 and cells[3, 1] == 0
        assert cells.min() >= 0 and cells.max() <= 7

    def test_inf_objectives_finite_span_clamped(self):
        points = np.array([[1.0, 0.0], [INF, 1.0], [2.0, 2.0]])
        cells = grid_cells(
            points, np.array([1.0, 0.0]), np.array([2.0, 2.0]), 4
        )
        assert cells[1, 0] == 3  # +inf over a finite span -> top cell
        assert cells.min() >= 0 and cells.max() <= 3


# ---------------------------------------------------------------------------
# Pre-PR NSGA implementations, embedded verbatim as seeded-run oracles.
# ---------------------------------------------------------------------------


class _OracleNsga2:
    """The scalar NSGA-II exactly as it was before vectorization."""

    def __init__(self, config):
        self.config = config

    def optimise(self, problem):
        config = self.config
        rng = RngStream(config.seed, "nsga2")
        population_size = min(config.population_size, problem.size)
        population = list(
            int(i)
            for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, problem, rng)
            population = self._environmental_selection(
                population + offspring, problem, population_size
            )
        objectives = [problem.objectives(i) for i in population]
        first_front = fast_non_dominated_sort_py(objectives)[0]
        unique = {}
        for position in first_front:
            index = population[position]
            unique[index] = problem.evaluated(index)
        return list(unique.values())

    def _make_offspring(self, population, problem, rng):
        config = self.config
        objectives = [problem.objectives(i) for i in population]
        fronts = fast_non_dominated_sort_py(objectives)
        rank = {}
        crowding = {}
        for front_rank, front in enumerate(fronts):
            distances = crowding_distance_py(objectives, front)
            for member in front:
                rank[member] = front_rank
                crowding[member] = distances[member]

        def tournament():
            a, b = rng.integers(0, len(population), size=2)
            a, b = int(a), int(b)
            if rank[a] != rank[b]:
                return population[a] if rank[a] < rank[b] else population[b]
            return population[a] if crowding[a] >= crowding[b] else population[b]

        offspring = []
        while len(offspring) < len(population):
            parent_a = tournament()
            parent_b = tournament()
            if rng.random() < config.crossover_probability:
                low, high = sorted((parent_a, parent_b))
                child = int(rng.integers(low, high + 1))
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    @staticmethod
    def _environmental_selection(merged, problem, population_size):
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort_py(objectives)
        selected = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            distances = crowding_distance_py(objectives, front)
            remaining = sorted(front, key=lambda i: distances[i], reverse=True)
            selected.extend(remaining[: population_size - len(selected)])
            break
        return [merged[i] for i in selected]


class _OracleNsgaG:
    """The scalar NSGA-G exactly as it was before vectorization."""

    def __init__(self, config):
        self.config = config

    def optimise(self, problem):
        config = self.config
        rng = RngStream(config.seed, "nsga-g")
        population_size = min(config.population_size, problem.size)
        population = list(
            int(i)
            for i in rng.choice(problem.size, size=population_size, replace=False)
        )
        for _generation in range(config.generations):
            offspring = self._make_offspring(population, problem, rng)
            population = self._grid_selection(
                population + offspring, problem, population_size, rng
            )
        objectives = [problem.objectives(i) for i in population]
        first = fast_non_dominated_sort_py(objectives)[0]
        unique = {}
        for position in first:
            unique[population[position]] = problem.evaluated(population[position])
        return list(unique.values())

    def _make_offspring(self, population, problem, rng):
        config = self.config
        objectives = [problem.objectives(i) for i in population]
        fronts = fast_non_dominated_sort_py(objectives)
        rank = {}
        for front_rank, front in enumerate(fronts):
            for member in front:
                rank[member] = front_rank

        def tournament():
            a, b = (int(x) for x in rng.integers(0, len(population), size=2))
            return population[a] if rank[a] <= rank[b] else population[b]

        offspring = []
        while len(offspring) < len(population):
            parent_a, parent_b = tournament(), tournament()
            if rng.random() < config.crossover_probability:
                low, high = sorted((parent_a, parent_b))
                child = int(rng.integers(low, high + 1))
            else:
                child = parent_a
            if rng.random() < config.mutation_probability:
                child = int(rng.integers(0, problem.size))
            offspring.append(child)
        return offspring

    def _grid_selection(self, merged, problem, population_size, rng):
        merged = list(dict.fromkeys(merged))
        objectives = [problem.objectives(i) for i in merged]
        fronts = fast_non_dominated_sort_py(objectives)
        selected = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front)
                continue
            needed = population_size - len(selected)
            selected.extend(self._pick_from_grid(front, objectives, needed, rng))
            break
        return [merged[i] for i in selected]

    def _pick_from_grid(self, front, objectives, needed, rng):
        dimension = len(objectives[front[0]])
        lows = [min(objectives[i][axis] for i in front) for axis in range(dimension)]
        highs = [max(objectives[i][axis] for i in front) for axis in range(dimension)]
        cells = {}
        for member in front:
            key = grid_cell(objectives[member], lows, highs, self.config.grid_divisions)
            cells.setdefault(key, []).append(member)
        for members in cells.values():
            rng.shuffle(members)
        picked = []
        ordered_cells = sorted(cells.values(), key=len)
        while len(picked) < needed:
            progressed = False
            for members in ordered_cells:
                if members:
                    picked.append(members.pop())
                    progressed = True
                    if len(picked) == needed:
                        break
            if not progressed:
                break
        return picked


def rugged_problem(size: int = 300) -> EnumeratedProblem:
    """A discrete biobjective problem with duplicates and plateaus."""

    def evaluate(i: int):
        x = i / (size - 1)
        # Quantised second objective: exact ties across many candidates.
        rough = round((1 - x**0.5) ** 2 * 8) / 8 + 0.002 * ((i * 7919) % 13)
        return (round(x * 50) / 50, rough)

    return EnumeratedProblem(list(range(size)), evaluate, 2)


def matrix_backed(size: int = 300) -> EnumeratedProblem:
    """Same surface as :func:`rugged_problem`, via the batch backend."""
    scalar = rugged_problem(size)

    def evaluate_batch(indices):
        return np.array([scalar._evaluate(i) for i in indices], dtype=float)

    return EnumeratedProblem(
        list(range(size)), scalar._evaluate, 2, evaluate_batch=evaluate_batch
    )


class TestSeededNsgaEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 99])
    def test_nsga2_fronts_identical_to_pre_pr(self, seed):
        config = Nsga2Config(population_size=24, generations=20, seed=seed)
        new = Nsga2(config).optimise(matrix_backed())
        old = _OracleNsga2(config).optimise(rugged_problem())
        assert [(c.payload, c.objectives) for c in new] == [
            (c.payload, c.objectives) for c in old
        ]

    @pytest.mark.parametrize("seed", [9, 23, 51])
    def test_nsga_g_fronts_identical_to_pre_pr(self, seed):
        config = NsgaGConfig(population_size=24, generations=20, seed=seed)
        new = NsgaG(config).optimise(matrix_backed())
        old = _OracleNsgaG(config).optimise(rugged_problem())
        assert [(c.payload, c.objectives) for c in new] == [
            (c.payload, c.objectives) for c in old
        ]

    def test_nsga2_scalar_problem_unchanged(self):
        # Problems without a batch backend still work and still match.
        config = Nsga2Config(population_size=16, generations=12, seed=5)
        new = Nsga2(config).optimise(rugged_problem())
        old = _OracleNsga2(config).optimise(rugged_problem())
        assert [c.payload for c in new] == [c.payload for c in old]


class TestEnumeratedProblemMatrixBackend:
    def test_objectives_matrix_batches_and_caches(self):
        calls = []

        def evaluate_batch(indices):
            calls.append(list(indices))
            return np.array([[float(i), float(-i)] for i in indices])

        problem = EnumeratedProblem(
            list(range(10)), lambda i: (float(i), float(-i)), 2,
            evaluate_batch=evaluate_batch,
        )
        matrix = problem.objectives_matrix([3, 1, 3, 7])
        assert matrix.shape == (4, 2)
        assert calls == [[3, 1, 7]]  # deduplicated, order-preserving
        assert problem.evaluation_count == 3
        # Cache hits: no second batch call, scalar lookups agree.
        problem.objectives_matrix([1, 7])
        assert calls == [[3, 1, 7]]
        assert problem.objectives(3) == (3.0, -3.0)

    def test_single_objective_routes_through_batch(self):
        calls = []

        def evaluate_batch(indices):
            calls.append(list(indices))
            return np.array([[float(i)] for i in indices])

        problem = EnumeratedProblem(
            [0, 1, 2], lambda i: (float(i),), 1, evaluate_batch=evaluate_batch
        )
        assert problem.objectives(2) == (2.0,)
        assert calls == [[2]]
        assert all(isinstance(v, float) for v in problem.objectives(2))

    def test_bad_batch_shape_rejected(self):
        problem = EnumeratedProblem(
            [0, 1], lambda i: (1.0, 2.0), 2,
            evaluate_batch=lambda indices: np.zeros((len(list(indices)), 3)),
        )
        with pytest.raises(ValidationError):
            problem.objectives_matrix([0, 1])

    def test_scalar_fallback_without_backend(self):
        problem = EnumeratedProblem([0, 1, 2], lambda i: (float(i), 1.0), 2)
        matrix = problem.objectives_matrix([2, 0])
        assert matrix.tolist() == [[2.0, 1.0], [0.0, 1.0]]
        assert problem.evaluation_count == 2

    def test_evaluate_all_uses_batch(self):
        calls = []

        def evaluate_batch(indices):
            calls.append(list(indices))
            return np.array([[float(i), 0.0] for i in indices])

        problem = EnumeratedProblem(
            list(range(5)), lambda i: (float(i), 0.0), 2,
            evaluate_batch=evaluate_batch,
        )
        evaluated = problem.evaluate_all()
        assert len(evaluated) == 5
        assert calls == [[0, 1, 2, 3, 4]]
        assert all(isinstance(c, Candidate) for c in evaluated)


class TestDegenerateIndicators:
    def test_hypervolume_single_point_front(self):
        assert hypervolume_2d([(1, 1)], (2, 2)) == pytest.approx(1.0)

    def test_hypervolume_all_identical_front(self):
        assert hypervolume_2d([(1, 1)] * 5, (2, 2)) == pytest.approx(1.0)

    def test_hypervolume_degenerate_vertical_front(self):
        # All x equal: only the lowest-y point contributes area.
        assert hypervolume_2d([(1, 0), (1, 1), (1, 2)], (2, 3)) == pytest.approx(3.0)

    def test_hypervolume_inf_point_contributes_nothing(self):
        assert hypervolume_2d([(INF, 0.0), (0.0, INF)], (1.0, 1.0)) == 0.0

    def test_hypervolume_empty(self):
        assert hypervolume_2d([], (1.0, 1.0)) == 0.0

    def test_spread_degenerate_fronts(self):
        assert spread_2d([]) == 0.0
        assert spread_2d([(3.0, 4.0)]) == 0.0
        assert spread_2d([(1.0, 1.0)] * 4) == 0.0
        assert spread_2d([(0.0, 0.0), (2.0, 3.0)]) == pytest.approx(5.0)

    def test_spread_inf_front_is_inf(self):
        assert spread_2d([(0.0, 0.0), (INF, 1.0)]) == INF
