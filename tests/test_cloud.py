"""Tests for the cloud federation substrate."""

import pytest

from repro.cloud import (
    AMAZON_INSTANCES,
    BillingPolicy,
    CloudFederation,
    CloudProvider,
    Cluster,
    MICROSOFT_INSTANCES,
    NetworkModel,
    PAPER_TABLE1_CATALOG,
    PricingModel,
    find_instance,
    instance_catalog,
)
from repro.cloud.federation import paper_federation
from repro.cloud.network import INTER_PROVIDER_LINK, LOCAL_LINK, LinkSpec
from repro.common.errors import CloudError
from repro.common.units import GIB, MIB


class TestTable1Catalog:
    """The catalog must reproduce the paper's Table 1 verbatim."""

    def test_amazon_rows(self):
        expected = [
            ("a1.medium", 1, 2, 0.0049),
            ("a1.large", 2, 4, 0.0098),
            ("a1.xlarge", 4, 8, 0.0197),
            ("a1.2xlarge", 8, 16, 0.0394),
            ("a1.4xlarge", 16, 32, 0.0788),
        ]
        actual = [
            (i.name, i.vcpus, i.memory_gib, i.price_per_hour) for i in AMAZON_INSTANCES
        ]
        assert actual == expected

    def test_amazon_storage_is_ebs_only(self):
        assert all(i.storage_description == "EBS-Only" for i in AMAZON_INSTANCES)

    def test_microsoft_rows(self):
        expected = [
            ("B1S", 1, 1, 2, 0.011),
            ("B1MS", 1, 2, 4, 0.021),
            ("B2S", 2, 4, 8, 0.042),
            ("B2MS", 2, 8, 16, 0.084),
            ("B4MS", 4, 16, 32, 0.166),
            ("B8MS", 8, 32, 64, 0.333),
        ]
        actual = [
            (i.name, i.vcpus, i.memory_gib, i.storage_gib, i.price_per_hour)
            for i in MICROSOFT_INSTANCES
        ]
        assert actual == expected

    def test_paper_catalog_order(self):
        assert len(PAPER_TABLE1_CATALOG) == 11
        assert PAPER_TABLE1_CATALOG[0].provider is CloudProvider.AMAZON
        assert PAPER_TABLE1_CATALOG[-1].provider is CloudProvider.MICROSOFT

    def test_find_instance_case_insensitive(self):
        assert find_instance(CloudProvider.MICROSOFT, "b2s").name == "B2S"

    def test_find_instance_unknown(self):
        with pytest.raises(CloudError):
            find_instance(CloudProvider.AMAZON, "m5.large")

    def test_google_catalog_exists_for_figure1(self):
        assert len(instance_catalog(CloudProvider.GOOGLE)) >= 3

    def test_amazon_cheaper_than_microsoft_at_same_shape(self):
        # The paper's observation: Amazon instance prices are lower, but
        # exclude storage.
        a1_large = find_instance(CloudProvider.AMAZON, "a1.large")
        b2s = find_instance(CloudProvider.MICROSOFT, "B2S")
        assert a1_large.vcpus == b2s.vcpus
        assert a1_large.price_per_hour < b2s.price_per_hour
        assert not a1_large.includes_storage and b2s.includes_storage


class TestCluster:
    def make(self, count=3) -> Cluster:
        return Cluster("site", find_instance(CloudProvider.AMAZON, "a1.xlarge"), count)

    def test_totals(self):
        cluster = self.make(3)
        assert cluster.total_vcpus == 12
        assert cluster.total_memory_gib == 24
        assert cluster.price_per_hour == pytest.approx(3 * 0.0197)

    def test_resized(self):
        assert self.make(3).resized(5).node_count == 5

    def test_zero_nodes_rejected(self):
        with pytest.raises(CloudError):
            self.make(0)


class TestPricing:
    def test_per_second_billing(self):
        pricing = PricingModel(billing=BillingPolicy.PER_SECOND, minimum_billed_seconds=0)
        cluster = Cluster("s", find_instance(CloudProvider.AMAZON, "a1.medium"), 1)
        assert pricing.compute_cost(cluster, 3600) == pytest.approx(0.0049)
        assert pricing.compute_cost(cluster, 1800) == pytest.approx(0.0049 / 2)

    def test_per_hour_billing_rounds_up(self):
        pricing = PricingModel(billing=BillingPolicy.PER_HOUR)
        cluster = Cluster("s", find_instance(CloudProvider.AMAZON, "a1.medium"), 1)
        assert pricing.compute_cost(cluster, 10) == pytest.approx(0.0049)
        assert pricing.compute_cost(cluster, 3601) == pytest.approx(0.0098)

    def test_minimum_billed_seconds(self):
        pricing = PricingModel(minimum_billed_seconds=60)
        cluster = Cluster("s", find_instance(CloudProvider.AMAZON, "a1.medium"), 1)
        assert pricing.compute_cost(cluster, 1) == pricing.compute_cost(cluster, 60)

    def test_zero_duration_costs_nothing(self):
        pricing = PricingModel()
        cluster = Cluster("s", find_instance(CloudProvider.AMAZON, "a1.medium"), 1)
        assert pricing.compute_cost(cluster, 0) == 0.0

    def test_egress_inter_vs_intra(self):
        pricing = PricingModel()
        assert pricing.egress_cost(GIB, True) == pytest.approx(0.09)
        assert pricing.egress_cost(GIB, False) == pytest.approx(0.01)

    def test_storage_prorated(self):
        pricing = PricingModel()
        month_s = 30 * 24 * 3600
        assert pricing.storage_cost(GIB, month_s) == pytest.approx(0.10)

    def test_query_cost_combines(self):
        pricing = PricingModel(minimum_billed_seconds=0)
        cluster = Cluster("s", find_instance(CloudProvider.AMAZON, "a1.medium"), 1)
        cost = pricing.query_cost([cluster], 3600, inter_cloud_bytes=GIB)
        assert cost == pytest.approx(0.0049 + 0.09)


class TestNetwork:
    def test_local_link_is_fast(self):
        model = NetworkModel()
        assert model.link("a", "a").bandwidth_bytes_per_s == LOCAL_LINK.bandwidth_bytes_per_s

    def test_unknown_pair_defaults_to_wan(self):
        model = NetworkModel()
        assert model.link("a", "b") == INTER_PROVIDER_LINK

    def test_override(self):
        model = NetworkModel()
        custom = LinkSpec(10 * MIB, 0.5)
        model.set_link("a", "b", custom)
        assert model.link("a", "b") == custom

    def test_transfer_time_zero_bytes(self):
        assert LinkSpec(MIB, 0.1).transfer_time(0) == 0.0

    def test_transfer_time_includes_rtt(self):
        link = LinkSpec(MIB, 0.1)
        assert link.transfer_time(MIB) == pytest.approx(1.1)


class TestFederation:
    def test_paper_federation_sites(self):
        fed = paper_federation()
        assert {s.name for s in fed.sites()} == {"cloud-a", "cloud-b", "cloud-c"}
        assert fed.site("cloud-a").provider is CloudProvider.AMAZON
        assert fed.site("cloud-b").provider is CloudProvider.MICROSOFT

    def test_duplicate_site_rejected(self):
        fed = CloudFederation()
        fed.add_site("x", CloudProvider.AMAZON)
        with pytest.raises(CloudError):
            fed.add_site("x", CloudProvider.GOOGLE)

    def test_unknown_site(self):
        with pytest.raises(CloudError, match="unknown site"):
            CloudFederation().site("nowhere")

    def test_provision_uses_provider_catalog(self):
        fed = paper_federation()
        cluster = fed.provision("cloud-b", "B2MS", 4)
        assert cluster.instance_type.provider is CloudProvider.MICROSOFT
        assert cluster.node_count == 4

    def test_provision_wrong_catalog_rejected(self):
        fed = paper_federation()
        with pytest.raises(CloudError):
            fed.provision("cloud-b", "a1.medium", 1)  # Amazon type on Azure

    def test_cross_provider_transfer_slower(self):
        fed = paper_federation()
        same = fed.transfer_time(100 * MIB, "cloud-a", "cloud-a")
        cross = fed.transfer_time(100 * MIB, "cloud-a", "cloud-b")
        assert cross > same

    def test_crosses_provider(self):
        fed = paper_federation()
        assert fed.crosses_provider("cloud-a", "cloud-b")
        assert not fed.crosses_provider("cloud-a", "cloud-a")


class TestVariability:
    def test_constant_load(self):
        from repro.cloud import ConstantLoad

        load = ConstantLoad(1.5)
        assert load.factor(0) == load.factor(1000) == 1.5

    def test_ar1_deterministic_under_seed(self):
        from repro.cloud import Ar1LoadProcess
        from repro.common.rng import RngStream

        a = Ar1LoadProcess(RngStream(1, "load")).series(50)
        b = Ar1LoadProcess(RngStream(1, "load")).series(50)
        assert a == b

    def test_ar1_positive_and_floored(self):
        from repro.cloud import Ar1LoadProcess
        from repro.common.rng import RngStream

        load = Ar1LoadProcess(RngStream(2, "load"), sigma=0.5, floor=0.25)
        assert all(f >= 0.25 for f in load.series(500))

    def test_ar1_random_access_consistent(self):
        from repro.cloud import Ar1LoadProcess
        from repro.common.rng import RngStream

        load = Ar1LoadProcess(RngStream(3, "load"))
        later = load.factor(20)
        assert load.factor(20) == later  # memoised, not redrawn

    def test_diurnal_period(self):
        from repro.cloud import DiurnalLoadProcess

        load = DiurnalLoadProcess(period_ticks=100, amplitude=0.3)
        assert load.factor(0) == pytest.approx(load.factor(100))
        assert max(load.series(100)) <= 1.3 + 1e-9
        assert min(load.series(100)) >= 0.7 - 1e-9

    def test_regime_shift_piecewise_constant(self):
        from repro.cloud import RegimeShiftProcess
        from repro.common.rng import RngStream

        load = RegimeShiftProcess(RngStream(4, "load"), mean_regime_length=50)
        series = load.series(300)
        changes = sum(1 for a, b in zip(series, series[1:]) if a != b)
        assert 0 < changes < 60  # piecewise constant with a few shifts

    def test_composite_multiplies(self):
        from repro.cloud import CompositeLoadProcess, ConstantLoad

        load = CompositeLoadProcess([ConstantLoad(2.0), ConstantLoad(0.5)])
        assert load.factor(7) == pytest.approx(1.0)
