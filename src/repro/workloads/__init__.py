"""Workload runners: build execution histories for the experiments."""

from repro.workloads.tpch_runner import (
    TpchFederationConfig,
    TpchFederationWorkload,
)
from repro.workloads.drift import drift_scenario, DRIFT_SCENARIOS

__all__ = [
    "TpchFederationConfig",
    "TpchFederationWorkload",
    "drift_scenario",
    "DRIFT_SCENARIOS",
]
