"""Named drift scenarios for experiments and ablations."""

from __future__ import annotations

from typing import Callable

from repro.cloud.variability import (
    Ar1LoadProcess,
    CompositeLoadProcess,
    ConstantLoad,
    DiurnalLoadProcess,
    LoadProcess,
    RegimeShiftProcess,
    default_federation_load,
)
from repro.common.errors import ValidationError
from repro.common.rng import RngStream


def _none(rng: RngStream) -> LoadProcess:
    return ConstantLoad(1.0)


def _mild(rng: RngStream) -> LoadProcess:
    return Ar1LoadProcess(rng.child("ar1"), phi=0.99, sigma=0.02)


def _paper(rng: RngStream) -> LoadProcess:
    return default_federation_load(rng)


def _harsh(rng: RngStream) -> LoadProcess:
    return CompositeLoadProcess(
        [
            Ar1LoadProcess(rng.child("ar1"), phi=0.97, sigma=0.10),
            DiurnalLoadProcess(period_ticks=120, amplitude=0.25),
            RegimeShiftProcess(rng.child("regime"), mean_regime_length=80, low=0.5, high=3.0),
        ]
    )


DRIFT_SCENARIOS: dict[str, Callable[[RngStream], LoadProcess]] = {
    "none": _none,
    "mild": _mild,
    "paper": _paper,
    "harsh": _harsh,
}


def drift_scenario(name: str, rng: RngStream) -> LoadProcess:
    """Instantiate a named drift scenario."""
    try:
        factory = DRIFT_SCENARIOS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DRIFT_SCENARIOS))
        raise ValidationError(f"unknown drift scenario {name!r}; one of: {known}") from None
    return factory(rng)
