"""TPC-H federation workload: the setup behind Tables 3 and 4.

Reproduces the paper's experimental frame (§4.1-4.2): TPC-H data split
across a two-engine federation — Hive on cloud A holds ``orders`` and
``part``; PostgreSQL on cloud B holds ``lineitem`` and ``customer`` — so
each of Q12/Q13/Q14/Q17 joins two tables living in *different* engines.
The runner executes a stream of parameter-randomised query instances on
randomly drawn QEPs (cluster sizes + execution engine), logging
(features, measured costs) into one :class:`ExecutionHistory` per query,
under a drifting load.

All platform access goes through the
:class:`~repro.federation.FederationGateway`: :meth:`gateway` builds one
over this workload's environment, and :meth:`build_history` drives the
profiling runs through the gateway's ``observe`` envelope (with sampled
per-run statistics), so the workload exercises exactly the surface real
callers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.federation import CloudFederation, paper_federation
from repro.common.rng import RngStream
from repro.core.history import ExecutionHistory
from repro.engines.simulate import MultiEngineSimulator
from repro.federation import FederationConfig, FederationGateway, ObserveRequest
from repro.ires.deployment import Deployment
from repro.ires.enumerator import QepEnumerator
from repro.ires.executor import Executor
from repro.plans.physical import EnginePlacement
from repro.tpch.dataset import TpchDataset
from repro.tpch.queries import TPCH_QUERIES
from repro.workloads.drift import drift_scenario

#: The fixed table deployment (every paper query becomes cross-engine).
TPCH_DEPLOYMENT = {
    "orders": EnginePlacement("hive", "cloud-a"),
    "part": EnginePlacement("hive", "cloud-a"),
    "lineitem": EnginePlacement("postgresql", "cloud-b"),
    "customer": EnginePlacement("postgresql", "cloud-b"),
}


@dataclass(frozen=True)
class TpchFederationConfig:
    """Knobs of the Tables 3/4 workload."""

    scale_mib: float = 100.0
    physical_scale_factor: float = 0.0005
    queries: tuple[str, ...] = ("q12", "q13", "q14", "q17")
    seed: int = 7
    drift: str = "paper"
    noise_sigma: float = 0.05
    instance_types: dict = field(
        default_factory=lambda: {"cloud-a": "a1.xlarge", "cloud-b": "B2S"}
    )
    node_options: dict = field(
        default_factory=lambda: {"cloud-a": [2, 4, 6, 8], "cloud-b": [2, 3, 4]}
    )
    metrics: tuple[str, ...] = ("time", "money")
    #: Use the incremental (version-cached, rank-one-update) DREAM
    #: backend in :meth:`TpchFederationWorkload.gateway`.  The batch
    #: reference estimator remains available for oracle comparisons.
    incremental_estimation: bool = True
    #: IReS-style profiling varies input sizes: each run executes over a
    #: sampled fraction of the dataset drawn from this range, so the
    #: size -> cost relationship is observable in the history.
    sample_fraction_range: tuple[float, float] = (0.3, 1.0)
    #: IReS models are per engine: the MRE histories profile a fixed
    #: execution placement (engine, site), giving the paper's L = 4
    #: feature vector (two sizes + two node counts).  None = mix engines
    #: and add indicator features.
    fixed_execution: tuple[str, str] | None = ("hive", "cloud-a")

    def federation_config(self) -> FederationConfig:
        """The gateway configuration this workload implies."""
        return FederationConfig(
            strategy=(
                "dream-incremental" if self.incremental_estimation else "dream-batch"
            ),
            metrics=self.metrics,
        )


class TpchFederationWorkload:
    """Builds per-query execution histories on the simulated federation."""

    def __init__(self, config: TpchFederationConfig | None = None):
        self.config = config or TpchFederationConfig()
        cfg = self.config
        self.dataset = TpchDataset(
            cfg.scale_mib, physical_scale_factor=cfg.physical_scale_factor, seed=cfg.seed
        )
        self.federation: CloudFederation = paper_federation()
        self.deployment = Deployment(dict(TPCH_DEPLOYMENT))
        fixed = (
            EnginePlacement(*cfg.fixed_execution)
            if cfg.fixed_execution is not None
            else None
        )
        self.enumerator = QepEnumerator(
            self.federation,
            self.deployment,
            cfg.instance_types,
            cfg.node_options,
            fixed_execution=fixed,
        )
        load = drift_scenario(cfg.drift, RngStream(cfg.seed, "workload-load"))
        self.simulator = MultiEngineSimulator(
            self.federation, load=load, noise_sigma=cfg.noise_sigma, seed=cfg.seed
        )
        self.executor = Executor(self.simulator)
        self._param_rng = RngStream(cfg.seed, "workload-params")
        self._choice_rng = RngStream(cfg.seed, "workload-choice")

    # ------------------------------------------------------------------

    def gateway(
        self,
        config: FederationConfig | None = None,
        strategy=None,
        queries: tuple[str, ...] | None = None,
    ) -> FederationGateway:
        """A federation gateway over this workload's environment.

        Registers the configured query templates; ``strategy`` is the
        engine-room escape hatch for a pre-built strategy instance.
        """
        cfg = self.config
        gateway = FederationGateway(
            catalog=self.dataset.catalog,
            stats=self.dataset.logical_stats,
            deployment=self.deployment,
            enumerator=self.enumerator,
            simulator=self.simulator,
            config=config or cfg.federation_config(),
            strategy=strategy,
        )
        for key in cfg.queries if queries is None else queries:
            gateway.register_template(TPCH_QUERIES[key], cfg.metrics)
        return gateway

    def build_history(self, query_key: str, runs: int) -> ExecutionHistory:
        """Run ``runs`` randomised executions of one query template.

        Each run draws fresh query parameters and a random QEP from the
        space enumerated over *sampled* statistics (exploration, as IReS
        profiling would), executes it at the next tick and logs the
        observation — all through a dedicated gateway, so the logged
        history is exactly what the serving stack would have seen.
        """
        cfg = self.config
        template = TPCH_QUERIES[query_key]
        gateway = self.gateway(queries=(query_key,))
        low, high = cfg.sample_fraction_range
        for tick in range(runs):
            params = template.sample_params(self._param_rng)
            fraction = float(self._choice_rng.uniform(low, high))
            stats = {
                name: table_stats.sampled(fraction)
                for name, table_stats in self.dataset.logical_stats.items()
            }
            candidates = gateway.candidates(query_key, params, stats=stats)
            candidate = candidates[int(self._choice_rng.integers(0, len(candidates)))]
            gateway.observe(
                ObserveRequest(query_key, params, tick=tick),
                candidate=candidate,
                stats=stats,
            )
        return gateway.history(query_key)

    def build_all_histories(self, runs: int) -> dict[str, ExecutionHistory]:
        return {key: self.build_history(key, runs) for key in self.config.queries}

    def platform(self, strategy=None):
        """The engine room of a fresh gateway (white-box/legacy access)."""
        return self.gateway(strategy=strategy).engine
