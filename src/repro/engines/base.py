"""Execution-engine base class and shared cost vocabulary.

An engine turns the slice of a :class:`~repro.plans.physical.PlanProfile`
that runs on it, plus the cluster it is provisioned on, into a
deterministic *base* execution time with a breakdown.  Engines do not
know about load or noise — the multi-engine simulator owns those — so the
same engine object can serve both "actual" runs and what-if estimation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cloud.vm import Cluster
from repro.common.units import MIB
from repro.plans.physical import OperatorProfile

#: Average active power per vCPU, for the energy metric (watts).
WATTS_PER_VCPU = 12.0


@dataclass(frozen=True)
class EngineParameters:
    """Tunable cost coefficients of a simulated engine."""

    startup_fixed_s: float
    startup_per_node_s: float
    scan_bytes_per_s_per_core: float
    cpu_s_per_row: float
    join_cpu_s_per_row: float
    sort_cpu_s_per_row: float
    shuffle_bytes_per_s_per_node: float
    split_bytes: float
    #: Parallel efficiency: effective cores = cores ** alpha.
    parallel_alpha: float = 0.9
    #: Multiplier applied when a stage's working set exceeds memory.
    spill_factor: float = 1.0
    #: Fraction of cluster memory usable as working set.
    memory_fraction: float = 0.6


@dataclass(frozen=True)
class TimeBreakdown:
    startup_s: float = 0.0
    scan_s: float = 0.0
    cpu_s: float = 0.0
    shuffle_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.startup_s + self.scan_s + self.cpu_s + self.shuffle_s

    def as_dict(self) -> dict:
        return {
            "startup_s": self.startup_s,
            "scan_s": self.scan_s,
            "cpu_s": self.cpu_s,
            "shuffle_s": self.shuffle_s,
        }


class ExecutionEngine(ABC):
    """A simulated database engine."""

    #: Engine identifier used in placements ("hive", "postgresql", "spark").
    name: str = "abstract"

    def __init__(self, parameters: EngineParameters):
        self.parameters = parameters

    @abstractmethod
    def base_time(self, operators: list[OperatorProfile], cluster: Cluster) -> TimeBreakdown:
        """Deterministic execution time of ``operators`` on ``cluster``."""

    # Shared helpers ------------------------------------------------------

    def effective_cores(self, cluster: Cluster) -> float:
        return max(1.0, cluster.total_vcpus ** self.parameters.parallel_alpha)

    def startup_time(self, cluster: Cluster) -> float:
        return (
            self.parameters.startup_fixed_s
            + self.parameters.startup_per_node_s * cluster.node_count
        )

    def spill_multiplier(self, working_set_bytes: float, cluster: Cluster) -> float:
        budget = cluster.total_memory_gib * 1024 * MIB * self.parameters.memory_fraction
        if working_set_bytes > budget > 0:
            return self.parameters.spill_factor
        return 1.0

    def cpu_time(self, operators: list[OperatorProfile], cluster: Cluster) -> float:
        """Row-processing time across all operators, divided over cores."""
        params = self.parameters
        total = 0.0
        for op in operators:
            if op.kind in ("scan", "filter", "project"):
                total += op.input_rows * params.cpu_s_per_row
            elif op.kind == "join":
                total += op.input_rows * params.join_cpu_s_per_row
                total += op.output_rows * params.cpu_s_per_row
            elif op.kind in ("aggregate", "distinct"):
                total += op.input_rows * params.join_cpu_s_per_row
            elif op.kind == "sort":
                rows = max(op.input_rows, 2.0)
                total += rows * math.log2(rows) * params.sort_cpu_s_per_row
        return total / self.effective_cores(cluster)

    def energy_joules(self, duration_s: float, cluster: Cluster) -> float:
        return duration_s * cluster.total_vcpus * WATTS_PER_VCPU

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"
