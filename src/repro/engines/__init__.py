"""Simulated execution engines: Hive, PostgreSQL and Spark.

The paper's testbed runs queries across Hive and PostgreSQL (with Spark
available) on a private cloud.  Here each engine is an analytic +
event-driven cost simulator: given a costed plan profile
(:mod:`repro.plans.physical`) and a provisioned cluster it produces a
deterministic *base* execution time; the multi-engine simulator layers
load drift and stochastic noise on top to produce the "measured" costs
that DREAM and the baselines learn from.
"""

from repro.engines.metrics import ExecutionMetrics
from repro.engines.base import EngineParameters, ExecutionEngine
from repro.engines.hive import HiveEngine
from repro.engines.postgres import PostgresEngine
from repro.engines.spark import SparkEngine
from repro.engines.registry import default_engines, engine_by_name
from repro.engines.simulation import TaskTimeline, schedule_tasks
from repro.engines.simulate import MultiEngineSimulator, QueryExecution

__all__ = [
    "ExecutionMetrics",
    "EngineParameters",
    "ExecutionEngine",
    "HiveEngine",
    "PostgresEngine",
    "SparkEngine",
    "default_engines",
    "engine_by_name",
    "TaskTimeline",
    "schedule_tasks",
    "MultiEngineSimulator",
    "QueryExecution",
]
