"""Multi-engine federation simulator.

Combines the per-engine base times of a plan profile with wide-area
transfers, the federation's load process and multiplicative measurement
noise, producing the "measured" :class:`ExecutionMetrics` a real IReS
deployment would log.  It is the ground truth of every experiment.

Determinism: given the same master seed, the same sequence of
``execute(..)`` calls yields the same metrics, because load and noise
draw from named :class:`~repro.common.rng.RngStream` streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.federation import CloudFederation
from repro.cloud.variability import ConstantLoad, LoadProcess
from repro.cloud.vm import Cluster
from repro.common.errors import ExecutionError
from repro.common.rng import RngStream
from repro.engines.base import ExecutionEngine
from repro.engines.metrics import ExecutionMetrics
from repro.engines.registry import default_engines
from repro.plans.logical import LogicalPlan
from repro.plans.physical import Placement, PlanProfile, profile_plan
from repro.plans.statistics import TableStats


@dataclass(frozen=True)
class QueryExecution:
    """The record of one simulated run (what IReS would log)."""

    tick: int
    metrics: ExecutionMetrics
    profile: PlanProfile
    clusters: dict[str, Cluster]
    load_factor: float


class MultiEngineSimulator:
    """Executes plan profiles across a federation's engines."""

    def __init__(
        self,
        federation: CloudFederation,
        engines: dict[str, ExecutionEngine] | None = None,
        load: LoadProcess | None = None,
        noise_sigma: float = 0.10,
        seed: int = 7,
    ):
        self.federation = federation
        self.engines = engines if engines is not None else default_engines()
        self.load = load or ConstantLoad()
        self.noise_sigma = noise_sigma
        self._noise_rng = RngStream(seed, "simulator", "noise")

    # ------------------------------------------------------------------

    def rng_state(self) -> dict:
        """The noise stream's PCG64 state — a small JSON-serialisable
        dict.  Journaled per observation by the durability subsystem so
        a recovered simulator resumes the *same* noise sequence (the
        restart-equivalence oracle needs measured costs, not just
        histories, to line up bitwise)."""
        return self._noise_rng.generator.bit_generator.state

    def restore_rng_state(self, state: dict) -> None:
        """Restore a state previously captured by :meth:`rng_state`."""
        self._noise_rng.generator.bit_generator.state = state

    def execute(
        self,
        plan: LogicalPlan,
        stats: dict[str, TableStats],
        placement: Placement,
        clusters: dict[str, Cluster],
        tick: int,
    ) -> QueryExecution:
        """Simulate one run at time ``tick`` and return its record."""
        profile = profile_plan(plan, stats, placement)
        base = self.base_metrics(profile, clusters)
        load_factor = self.load.factor(tick)
        noise = float(self._noise_rng.lognormal(0.0, self.noise_sigma))
        measured_time = base.execution_time_s * load_factor * noise
        measured = ExecutionMetrics(
            execution_time_s=measured_time,
            monetary_cost_usd=self._money(profile, clusters, measured_time),
            intermediate_bytes=base.intermediate_bytes,
            energy_joules=base.energy_joules * load_factor * noise,
            breakdown=dict(base.breakdown),
        )
        return QueryExecution(tick, measured, profile, dict(clusters), load_factor)

    def base_metrics(
        self, profile: PlanProfile, clusters: dict[str, Cluster]
    ) -> ExecutionMetrics:
        """Deterministic (no load, no noise) metrics of a profile.

        This is also what an oracle with perfect knowledge of the cost
        model — but not of the load — would predict.
        """
        total_time = 0.0
        total_energy = 0.0
        breakdown: dict[str, float] = {}
        for engine_site in profile.participating():
            engine = self._engine(engine_site.engine)
            cluster = self._cluster(clusters, engine_site.site)
            operators = profile.operators_at(engine_site.engine, engine_site.site)
            times = engine.base_time(operators, cluster)
            total_time += times.total_s
            total_energy += engine.energy_joules(times.total_s, cluster)
            for key, value in times.as_dict().items():
                breakdown[key] = breakdown.get(key, 0.0) + value

        transfer_s = 0.0
        for transfer in profile.transfers:
            transfer_s += self.federation.transfer_time(
                transfer.payload_bytes, transfer.from_site, transfer.to_site
            )
        breakdown["transfer_s"] = transfer_s
        total_time += transfer_s

        money = self._money(profile, clusters, total_time)
        return ExecutionMetrics(
            execution_time_s=total_time,
            monetary_cost_usd=money,
            intermediate_bytes=profile.intermediate_bytes(),
            energy_joules=total_energy,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------

    def _engine(self, name: str) -> ExecutionEngine:
        try:
            return self.engines[name]
        except KeyError:
            known = ", ".join(sorted(self.engines))
            raise ExecutionError(f"unknown engine {name!r}; registered: {known}") from None

    @staticmethod
    def _cluster(clusters: dict[str, Cluster], site: str) -> Cluster:
        try:
            return clusters[site]
        except KeyError:
            known = ", ".join(sorted(clusters))
            raise ExecutionError(
                f"no cluster provisioned at site {site!r}; have: {known}"
            ) from None

    def _money(
        self, profile: PlanProfile, clusters: dict[str, Cluster], duration_s: float
    ) -> float:
        inter = 0.0
        intra = 0.0
        for transfer in profile.transfers:
            if self.federation.crosses_provider(transfer.from_site, transfer.to_site):
                inter += transfer.payload_bytes
            else:
                intra += transfer.payload_bytes
        participating_sites = {p.site for p in profile.participating()}
        held = [clusters[site] for site in participating_sites if site in clusters]
        return self.federation.pricing.query_cost(held, duration_s, inter, intra)
