"""Hive engine simulator: MapReduce-style staged execution.

Hive compiles a query into a chain of MapReduce jobs.  Each *stage* pays a
job-submission latency, reads its input from HDFS in fixed-size splits
scheduled as task waves over the cluster's slots, shuffles its output, and
materialises intermediate results back to HDFS (read + write), which is
why Hive dominates the other engines on small inputs and catches up only
on very large scans.
"""

from __future__ import annotations

from repro.cloud.vm import Cluster
from repro.common.units import MIB
from repro.engines.base import EngineParameters, ExecutionEngine, TimeBreakdown
from repro.engines.simulation import schedule_tasks, split_into_tasks
from repro.plans.physical import OperatorProfile

#: Calibrated for the paper's testbed class: burstable cloud VMs with
#: remote (EBS-only) storage, where sequential scan I/O is tens of MiB/s
#: and job-submission overhead is seconds.
HIVE_PARAMETERS = EngineParameters(
    startup_fixed_s=1.4,
    startup_per_node_s=0.15,
    scan_bytes_per_s_per_core=10 * MIB,
    cpu_s_per_row=1.2e-6,
    join_cpu_s_per_row=2.5e-6,
    sort_cpu_s_per_row=3.0e-7,
    shuffle_bytes_per_s_per_node=25 * MIB,
    split_bytes=64 * MIB,
    parallel_alpha=0.88,
    spill_factor=1.6,
    memory_fraction=0.5,
)

#: Factor on intermediate bytes for the HDFS materialisation between jobs.
HDFS_MATERIALISE_FACTOR = 2.0


class HiveEngine(ExecutionEngine):
    """MapReduce-staged engine (see module docstring)."""

    name = "hive"

    def __init__(self, parameters: EngineParameters = HIVE_PARAMETERS):
        super().__init__(parameters)

    def base_time(self, operators: list[OperatorProfile], cluster: Cluster) -> TimeBreakdown:
        params = self.parameters
        stages = self._stage_count(operators)
        if stages == 0:
            return TimeBreakdown()

        startup = stages * self.startup_time(cluster)

        # Map phase: every scan's bytes arrive as HDFS splits run in waves.
        slots = max(1, cluster.total_vcpus)
        scan_s = 0.0
        for op in operators:
            if op.kind != "scan":
                continue
            per_task = [
                split / params.scan_bytes_per_s_per_core
                for split in split_into_tasks(op.input_bytes, params.split_bytes)
            ]
            scan_s += schedule_tasks(per_task, slots).makespan_s

        cpu_s = self.cpu_time(operators, cluster)

        # Shuffle + HDFS materialisation between jobs.
        intermediate = sum(
            op.output_bytes
            for op in operators
            if op.kind in ("join", "aggregate", "sort", "distinct")
        )
        shuffle_rate = params.shuffle_bytes_per_s_per_node * cluster.node_count
        shuffle_s = intermediate * HDFS_MATERIALISE_FACTOR / shuffle_rate

        working_set = max(
            (op.input_bytes for op in operators if op.kind in ("join", "aggregate", "sort")),
            default=0.0,
        )
        spill = self.spill_multiplier(working_set, cluster)
        return TimeBreakdown(
            startup_s=startup,
            scan_s=scan_s * spill,
            cpu_s=cpu_s * spill,
            shuffle_s=shuffle_s * spill,
        )

    @staticmethod
    def _stage_count(operators: list[OperatorProfile]) -> int:
        """One MR job per shuffle-inducing operator, minimum one."""
        if not operators:
            return 0
        shuffling = sum(
            1 for op in operators if op.kind in ("join", "aggregate", "sort", "distinct")
        )
        return max(1, shuffling)
