"""Execution metrics: the cost vector of MOQP.

The paper's cost metrics are execution time and monetary cost (§2.3,
Example 2.1), with intermediate-data size and energy mentioned as further
objectives (§2.4).  All four are carried so the multi-objective optimizer
has a real vector to work with.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExecutionMetrics:
    """The measured (or predicted) costs of one query execution."""

    execution_time_s: float
    monetary_cost_usd: float
    intermediate_bytes: float = 0.0
    energy_joules: float = 0.0
    #: Optional decomposition of the time (scan/cpu/shuffle/transfer/startup).
    breakdown: dict = field(default_factory=dict, compare=False)

    def as_vector(self, metrics: tuple[str, ...] = ("time", "money")) -> tuple[float, ...]:
        """The metric vector in a fixed order, for Pareto comparisons."""
        lookup = {
            "time": self.execution_time_s,
            "money": self.monetary_cost_usd,
            "intermediate": self.intermediate_bytes,
            "energy": self.energy_joules,
        }
        return tuple(lookup[m] for m in metrics)

    def scaled(self, factor: float) -> "ExecutionMetrics":
        """Scale time-derived quantities (load/noise application)."""
        return ExecutionMetrics(
            execution_time_s=self.execution_time_s * factor,
            monetary_cost_usd=self.monetary_cost_usd,
            intermediate_bytes=self.intermediate_bytes,
            energy_joules=self.energy_joules * factor,
            breakdown=dict(self.breakdown),
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"time={self.execution_time_s:.2f}s money=${self.monetary_cost_usd:.4f} "
            f"intermediate={self.intermediate_bytes / (1024 * 1024):.1f}MiB"
        )


#: The metric names understood by :meth:`ExecutionMetrics.as_vector`.
METRIC_NAMES = ("time", "money", "intermediate", "energy")
