"""Spark engine simulator: in-memory DAG execution.

Spark pays one driver/executor start-up for the whole query, runs stages
as task waves like Hive but with much smaller per-stage overhead, keeps
intermediates in memory (spilling only under pressure), and shuffles over
the cluster network without HDFS round-trips.
"""

from __future__ import annotations

from repro.cloud.vm import Cluster
from repro.common.units import MIB
from repro.engines.base import EngineParameters, ExecutionEngine, TimeBreakdown
from repro.engines.simulation import schedule_tasks, split_into_tasks
from repro.plans.physical import OperatorProfile

#: Calibrated like Hive's parameters: remote-volume I/O on burstable VMs.
SPARK_PARAMETERS = EngineParameters(
    startup_fixed_s=1.0,
    startup_per_node_s=0.08,
    scan_bytes_per_s_per_core=14 * MIB,
    cpu_s_per_row=5.0e-7,
    join_cpu_s_per_row=1.1e-6,
    sort_cpu_s_per_row=1.4e-7,
    shuffle_bytes_per_s_per_node=60 * MIB,
    split_bytes=32 * MIB,
    parallel_alpha=0.92,
    spill_factor=1.8,
    memory_fraction=0.6,
)


class SparkEngine(ExecutionEngine):
    """In-memory DAG engine (see module docstring)."""

    name = "spark"

    def __init__(self, parameters: EngineParameters = SPARK_PARAMETERS):
        super().__init__(parameters)

    def base_time(self, operators: list[OperatorProfile], cluster: Cluster) -> TimeBreakdown:
        if not operators:
            return TimeBreakdown()
        params = self.parameters
        slots = max(1, cluster.total_vcpus)

        scan_s = 0.0
        for op in operators:
            if op.kind != "scan":
                continue
            per_task = [
                split / params.scan_bytes_per_s_per_core
                for split in split_into_tasks(op.input_bytes, params.split_bytes)
            ]
            scan_s += schedule_tasks(per_task, slots).makespan_s

        cpu_s = self.cpu_time(operators, cluster)

        shuffle_bytes = sum(
            op.output_bytes
            for op in operators
            if op.kind in ("join", "aggregate", "sort", "distinct")
        )
        shuffle_s = shuffle_bytes / (
            params.shuffle_bytes_per_s_per_node * cluster.node_count
        )

        working_set = shuffle_bytes + sum(
            op.input_bytes for op in operators if op.kind == "join"
        )
        spill = self.spill_multiplier(working_set, cluster)

        return TimeBreakdown(
            startup_s=self.startup_time(cluster),
            scan_s=scan_s,
            cpu_s=cpu_s * spill,
            shuffle_s=shuffle_s * spill,
        )
