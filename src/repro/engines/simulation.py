"""Event-driven task scheduling.

Distributed engines run stages as waves of tasks over a fixed pool of
slots.  :func:`schedule_tasks` reproduces that behaviour: tasks are
assigned FIFO to the earliest-free slot (a heap of slot-free times), which
yields the classic wave pattern — e.g. 10 equal tasks on 4 slots finish in
3 waves, and stragglers lengthen the makespan exactly as they do on a real
cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import ExecutionError


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement in the timeline."""

    task_index: int
    slot: int
    start_s: float
    end_s: float


@dataclass
class TaskTimeline:
    """The result of scheduling a stage."""

    tasks: list[ScheduledTask] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max((t.end_s for t in self.tasks), default=0.0)

    @property
    def wave_count(self) -> int:
        """Distinct start times — equal-duration tasks start in waves."""
        return len({round(t.start_s, 9) for t in self.tasks})

    def slot_utilisation(self, slots: int) -> float:
        """Busy time over slots x makespan (1.0 = perfectly packed)."""
        if not self.tasks or slots <= 0:
            return 0.0
        busy = sum(t.end_s - t.start_s for t in self.tasks)
        denominator = slots * self.makespan_s
        return busy / denominator if denominator > 0 else 0.0


def schedule_tasks(durations: Sequence[float], slots: int) -> TaskTimeline:
    """Assign tasks FIFO to the earliest-available of ``slots`` slots."""
    if slots < 1:
        raise ExecutionError(f"need at least one slot, got {slots}")
    if any(d < 0 for d in durations):
        raise ExecutionError("task durations must be non-negative")
    timeline = TaskTimeline()
    # Heap of (free_at, slot_index); stable tie-break on slot index.
    heap = [(0.0, slot) for slot in range(slots)]
    heapq.heapify(heap)
    for index, duration in enumerate(durations):
        free_at, slot = heapq.heappop(heap)
        end = free_at + duration
        timeline.tasks.append(ScheduledTask(index, slot, free_at, end))
        heapq.heappush(heap, (end, slot))
    return timeline


def split_into_tasks(total_bytes: float, split_bytes: float) -> list[float]:
    """Split a byte volume into per-task volumes of at most ``split_bytes``."""
    if total_bytes <= 0:
        return []
    if split_bytes <= 0:
        raise ExecutionError(f"split_bytes must be > 0, got {split_bytes}")
    full_tasks = int(total_bytes // split_bytes)
    tail = total_bytes - full_tasks * split_bytes
    tasks = [split_bytes] * full_tasks
    if tail > 1e-9:
        tasks.append(tail)
    return tasks
