"""Engine registry: name -> engine instance."""

from __future__ import annotations

from repro.common.errors import ExecutionError
from repro.engines.base import ExecutionEngine
from repro.engines.hive import HiveEngine
from repro.engines.postgres import PostgresEngine
from repro.engines.spark import SparkEngine


def default_engines() -> dict[str, ExecutionEngine]:
    """The three engines of the paper's testbed, keyed by name."""
    engines: dict[str, ExecutionEngine] = {}
    for engine in (HiveEngine(), PostgresEngine(), SparkEngine()):
        engines[engine.name] = engine
    return engines


def engine_by_name(name: str, engines: dict[str, ExecutionEngine] | None = None) -> ExecutionEngine:
    pool = engines if engines is not None else default_engines()
    try:
        return pool[name.lower()]
    except KeyError:
        known = ", ".join(sorted(pool))
        raise ExecutionError(f"unknown engine {name!r}; registered: {known}") from None
