"""PostgreSQL engine simulator: single-node pipelined execution.

PostgreSQL runs on one node (extra cluster nodes act as standbys and
contribute only marginal parallel-query benefit), starts almost
instantly, and pipelines operators without materialisation — the opposite
profile of Hive.  Hash joins whose build side exceeds ``work_mem`` spill
to temporary files.
"""

from __future__ import annotations

import math

from repro.cloud.vm import Cluster
from repro.common.units import MIB
from repro.engines.base import EngineParameters, ExecutionEngine, TimeBreakdown
from repro.plans.physical import OperatorProfile

#: Calibrated like Hive's parameters: remote-volume I/O on burstable VMs.
POSTGRES_PARAMETERS = EngineParameters(
    startup_fixed_s=0.03,
    startup_per_node_s=0.0,
    scan_bytes_per_s_per_core=9 * MIB,
    cpu_s_per_row=4.0e-7,
    join_cpu_s_per_row=9.0e-7,
    sort_cpu_s_per_row=1.1e-7,
    shuffle_bytes_per_s_per_node=500 * MIB,  # in-process, effectively memcpy
    split_bytes=8 * MIB,
    parallel_alpha=0.7,
    spill_factor=2.2,
    memory_fraction=0.25,  # work_mem is a slice of system memory
)

#: Upper bound on useful parallel-query workers.
MAX_PARALLEL_WORKERS = 8


class PostgresEngine(ExecutionEngine):
    """Single-node pipelined engine (see module docstring)."""

    name = "postgresql"

    def __init__(self, parameters: EngineParameters = POSTGRES_PARAMETERS):
        super().__init__(parameters)

    def _workers(self, cluster: Cluster) -> float:
        # One primary node does the work; extra nodes add only a sliver of
        # read scaling (e.g. via read replicas), modelled logarithmically.
        per_node = min(cluster.instance_type.vcpus, MAX_PARALLEL_WORKERS)
        replica_boost = 1.0 + 0.25 * math.log2(cluster.node_count) if cluster.node_count > 1 else 1.0
        return per_node ** self.parameters.parallel_alpha * replica_boost

    def base_time(self, operators: list[OperatorProfile], cluster: Cluster) -> TimeBreakdown:
        if not operators:
            return TimeBreakdown()
        params = self.parameters
        workers = self._workers(cluster)

        scan_bytes = sum(op.input_bytes for op in operators if op.kind == "scan")
        scan_s = scan_bytes / (params.scan_bytes_per_s_per_core * workers)

        cpu_s = 0.0
        for op in operators:
            if op.kind in ("scan", "filter", "project"):
                cpu_s += op.input_rows * params.cpu_s_per_row
            elif op.kind == "join":
                build_bytes = op.input_bytes / 2.0
                spill = self.spill_multiplier_single_node(build_bytes, cluster)
                cpu_s += op.input_rows * params.join_cpu_s_per_row * spill
                cpu_s += op.output_rows * params.cpu_s_per_row
            elif op.kind in ("aggregate", "distinct"):
                cpu_s += op.input_rows * params.join_cpu_s_per_row
            elif op.kind == "sort":
                rows = max(op.input_rows, 2.0)
                spill = self.spill_multiplier_single_node(op.input_bytes, cluster)
                cpu_s += rows * math.log2(rows) * params.sort_cpu_s_per_row * spill
        cpu_s /= workers

        return TimeBreakdown(
            startup_s=params.startup_fixed_s,
            scan_s=scan_s,
            cpu_s=cpu_s,
            shuffle_s=0.0,
        )

    def spill_multiplier_single_node(self, working_set_bytes: float, cluster: Cluster) -> float:
        """Spill check against ONE node's memory (not the cluster total)."""
        budget = (
            cluster.instance_type.memory_gib * 1024 * MIB * self.parameters.memory_fraction
        )
        if working_set_bytes > budget > 0:
            return self.parameters.spill_factor
        return 1.0
