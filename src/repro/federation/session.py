"""Gateway sessions: snapshot pinning for long optimizer runs.

Between two executions the serving layer already reuses its per-version
model snapshot, but a *long* optimizer run — a parameter sweep, a
what-if policy comparison, a GA search costing thousands of plans —
spans history changes: its own executions, and concurrent ``observe()``
ticks from other actors, keep advancing the history version, so each
``model()`` call may silently switch models mid-run.  A
:class:`GatewaySession` removes that hazard: it **pins** the template's
fitted snapshot once and plans every submission in the session against
that exact immutable model until the session is closed or explicitly
re-pinned (closing the ROADMAP "snapshot pinning" follow-on).

:meth:`GatewaySession.submit_many` additionally batches: the whole
parameter batch shares the pinned model, and the QEP space is enumerated
(and its feature matrix built) once per *distinct query instance* —
repeat parameters, e.g. a policy/weight sweep over one query, cost one
enumeration total.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.federation.envelopes import BatchReport, SubmitRequest, SubmissionReport
from repro.federation.errors import EnvelopeError, SessionStateError
from repro.ires.enumerator import QepCandidate
from repro.ires.interface import QueryRequest
from repro.ires.modelling import FittedCostModel
from repro.ires.optimizer import MultiObjectiveOptimizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.gateway import FederationGateway


class GatewaySession:
    """A pinned-model working context for one template.

    Usually used as a context manager::

        with gateway.session("q12") as session:
            batch = session.submit_many(requests)

    The pin is taken at construction (requiring a fittable history) and
    released by :meth:`close`; :meth:`repin` refreshes it explicitly.
    """

    def __init__(self, gateway: "FederationGateway", template: str):
        gateway._require_template(template)
        self._gateway = gateway
        self.template = template
        self._closed = False
        self._model: FittedCostModel | None = None
        self._pinned_version: int | None = None
        #: (rendered SQL, governance-constraint signature) -> (request,
        #: candidates, features matrix); the per-batch enumeration cache
        #: (the pinned model fixes the feature order, so the matrix is
        #: reusable too).  The constraint signature keys the cache
        #: because principals may differ across one batch: two callers
        #: with different admissible spaces never share an entry (the
        #: signature is None for unconstrained requests).
        self._enumerations: dict[
            tuple[str, tuple | None],
            tuple[QueryRequest, list[QepCandidate], np.ndarray],
        ] = {}
        self.repin()

    # Lifecycle ------------------------------------------------------------

    def __enter__(self) -> "GatewaySession":
        self._require_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the pin; later submissions through the session fail."""
        self._closed = True
        self._model = None
        self._pinned_version = None
        self._enumerations.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise SessionStateError(
                "session is closed; open a new one with gateway.session()",
                template=self.template,
            )

    # Pinning --------------------------------------------------------------

    def repin(self) -> FittedCostModel:
        """(Re-)pin the current fitted snapshot of the template.

        Invalidates the enumeration cache: a new model may order features
        differently, and cached matrices belong to the old pin.
        """
        self._require_open()
        model, version = self._gateway._pin(self.template)
        self._model = model
        self._pinned_version = version
        self._enumerations.clear()
        return model

    @property
    def model(self) -> FittedCostModel:
        """The pinned snapshot (immutable; stable across observes)."""
        self._require_open()
        return self._model

    @property
    def pinned_version(self) -> int:
        """History version the snapshot was pinned at."""
        self._require_open()
        return self._pinned_version

    @property
    def stale(self) -> bool:
        """True when the history advanced past the pinned version."""
        self._require_open()
        return self._gateway.history(self.template).version != self._pinned_version

    # Submission -----------------------------------------------------------

    def submit(
        self, request: SubmitRequest, *, execute: bool = True
    ) -> SubmissionReport:
        """One submission planned against the pinned snapshot."""
        self._require_open()
        if request.template != self.template:
            raise EnvelopeError(
                f"session is pinned to {self.template!r}, request targets "
                f"{request.template!r}",
                template=request.template,
                phase="session",
            )
        return self._gateway._submit(
            request,
            cost_model=self._model,
            enumerations=self._enumerations,
            pinned=True,
            execute=execute,
        )

    def submit_many(
        self,
        requests: Sequence[SubmitRequest] | Iterable[SubmitRequest],
        *,
        execute: bool = True,
    ) -> BatchReport:
        """Plan (and by default execute) a whole parameter batch.

        One pinned model, one enumeration per distinct query instance.
        ``execute=False`` turns the batch into a pure planning sweep —
        nothing is run, the history does not move.
        """
        self._require_open()
        items = list(requests)
        if not items:
            raise EnvelopeError(
                "submit_many() needs at least one request",
                template=self.template,
                phase="session",
            )
        # Validate the whole batch before touching any state: a foreign
        # template in item k must not let items 0..k-1 execute first.
        for request in items:
            if request.template != self.template:
                raise EnvelopeError(
                    f"session is pinned to {self.template!r}, batch contains "
                    f"a request for {request.template!r}",
                    template=request.template,
                    phase="session",
                )
        before = len(self._enumerations)
        reports = tuple(self.submit(request, execute=execute) for request in items)
        return BatchReport(
            template=self.template,
            reports=reports,
            cost_model=self._model,
            pinned_version=self._pinned_version,
            enumerations=len(self._enumerations) - before,
        )

    # Estimation on the pinned model ---------------------------------------

    def estimate(self, features) -> dict[str, float]:
        """Predicted cost vector from the pinned snapshot (lock-free)."""
        self._require_open()
        return self._model.predict(features)

    def estimate_batch(self, features_matrix) -> dict[str, np.ndarray]:
        """Batched predictions from the pinned snapshot (one matmul per
        metric, unaffected by concurrent ticks)."""
        self._require_open()
        return self._model.predict_batch(features_matrix)

    # ----------------------------------------------------------------------

    def candidate_matrix(self, candidates: list[QepCandidate]) -> np.ndarray:
        """Feature matrix of a candidate set in the pinned model's order."""
        self._require_open()
        return MultiObjectiveOptimizer.candidate_matrix(candidates, self._model)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._closed else f"pinned@v{self._pinned_version}"
        return f"GatewaySession({self.template!r}, {state})"
