"""Backpressured front door: bounded admission, coalesced flushes.

The gateway's single-call surface (:meth:`FederationGateway.submit` /
``observe``) pays one fit RPC per stale template and one envelope per
execution row — exactly the regime where the sharded backend trails the
thread pool.  :class:`FrontDoor` is the batch-first alternative:
requests are *admitted* into a bounded queue (``gateway.ingest()``) and
*executed* later in one coalesced flush (``gateway.drain()``, or
automatically at the size/staleness watermarks), where every stale
template a flush segment touches is refitted through one
``refresh_batch`` call — one ``fit_many`` RPC per shard — instead of N
independent fits.

Equivalence contract
--------------------

A drained batch is **bitwise-identical** to the same requests replayed
sequentially through the single-call surface: same windows, same
predictions, same fit counts (property-tested on both backends).  Two
rules make that hold:

* **Global admission order.**  The simulator draws measurement noise
  from one sequential stream, so flushed items execute in exact
  admission order — batching reorders *fits*, never executions.
* **Segment cuts.**  Within a flush, fits are hoisted to segment
  boundaries: a segment ends just before a submission whose template
  already appended history earlier in the segment (an executed
  observation or submission), because the sequential path would refit
  that template *after* those appends.  Canonical observe-then-submit
  traffic therefore coalesces into a single fit round per flush.

Streaming results
-----------------

Tickets resolve per *segment*, not per flush: as soon as a segment's
items have executed, their tickets carry reports, :meth:`IngestTicket.wait`
unblocks, and registered done-callbacks fire — callers consume early
results while the rest of the flush is still running.  Consumption
surfaces, cheapest first:

* ``ticket.add_done_callback(fn)`` — ``fn(ticket)`` runs on the flush
  thread the moment the ticket resolves (immediately when already
  done).  Callbacks must be quick and must never call back into
  blocking ingest paths; their exceptions are suppressed.
* :meth:`FrontDoor.as_completed` — yield tickets in admission order as
  each resolves.
* ``gateway.ingest_iter(requests)`` — admit lazily, yield reports in
  admission order as segments land, drain the tail.
* ``await gateway.ingest_async(request)`` / ``drain_async()`` — the
  asyncio surface; see below.

Segment granularity follows the fit-coalescing cuts by default;
``FederationConfig(ingest_segment_max=N)`` additionally caps segments
at ``N`` items for finer streaming.  Subdividing preserves the bitwise
contract: within a fit-coalesced segment no submission's template has
earlier appends, so prefitting at any subdivision boundary sees the
exact history (and staleness) the sequential oracle would.

asyncio surface
---------------

``ingest_async``/``drain_async`` bridge ticket events onto the running
event loop: admission is handed to the door's single admission thread
(admission may block on backpressure or inline-run a watermark flush,
so it must not run on the loop), and each ticket completes a
``loop.create_future()`` through a ``loop.call_soon_threadsafe``
done-callback — one waiter *task*, never one thread, per ticket.  The
single admission thread also makes the canonical pattern
deterministic::

    tasks = [asyncio.create_task(gateway.ingest_async(r)) for r in reqs]
    await gateway.drain_async()          # flushes everything above
    reports = await asyncio.gather(*tasks)

tasks admit in creation order (FIFO through one thread) and the drain
queues behind the last admission.  The sync path never touches these
threads — flushes still run on the admitting/draining caller.

Pipelined flush
---------------

With ``FederationConfig(ingest_pipeline=True)``, while segment *k*
executes, a helper thread prefits segment *k+1*'s stale templates —
but only the *safe subset*: templates no item of segment *k* touches,
whose histories therefore cannot change while *k* runs.  The remainder
fit synchronously at the boundary, exactly as before.  Fits never draw
simulator noise and executions stay in admission order, so the overlap
is bitwise-invisible; it only hides fit latency behind execution time.

Backpressure
------------

Admission never silently drops.  At a full queue, ``"reject"`` mode
raises a typed :class:`~repro.federation.errors.IngestOverflowError`
(template + phase + bound); ``"block"`` mode makes the admitting caller
wait — and when no flush is in progress the blocked caller flushes the
queue *itself* (trigger ``"backpressure"``, counted separately from
watermark flushes), so blocking can never deadlock: either a flush is
running (space appears when it finishes) or the blocked thread creates
the space on its own.  Waiters are woken by ``notify_all`` on every
state edge (flush start, flush end, close); the bounded poll is only a
lost-notify guard, not the wake-up mechanism.

Mixing paths: a template's traffic should go through either the front
door or the direct single-call surface at any given time — admitted
items carry admission-time ticks, so a direct auto-ticked call racing a
pending flush on the *same* template could append out of tick order.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.common.errors import EstimationError
from repro.federation.envelopes import (
    BatchObserveRequest,
    IngestBatch,
    IngestStats,
    ObservationReport,
    ObserveRequest,
    SubmissionReport,
    SubmitRequest,
)
from repro.federation.errors import (
    EnvelopeError,
    FederationError,
    IngestAbortedError,
    IngestOverflowError,
    SessionStateError,
)

#: Module-level clock, monkeypatchable in tests (the staleness watermark
#: and blocked-admission bookkeeping read it; same idiom as
#: :data:`repro.core.cache.time_fn`).
time_fn = time.monotonic

#: Upper bound on one blocked wait (admission at a full queue, or a
#: drain waiting out another flush).  Wake-ups are notify-driven — every
#: state edge calls ``notify_all`` — so this poll is only the guard
#: against a lost notify, not the latency floor it used to be.
_BLOCK_POLL_SECONDS = 0.05


class IngestTicket:
    """One admitted request's claim on its future flush outcome.

    Resolved when the item's *segment* completes (streaming — possibly
    well before the rest of its flush): exactly one of :attr:`report` /
    :attr:`error` is set, :attr:`batch_seq` names the flush,
    :attr:`resolved_at` records the resolution time, :meth:`wait`
    unblocks, and done-callbacks fire.
    """

    __slots__ = (
        "seq",
        "template",
        "kind",
        "tick",
        "admitted_at",
        "resolved_at",
        "report",
        "error",
        "batch_seq",
        "_done",
        "_callbacks",
        "_cb_lock",
    )

    def __init__(self, seq: int, template: str, kind: str, tick: int, admitted_at: float):
        self.seq = seq
        self.template = template
        #: ``"submit"`` or ``"observe"``.
        self.kind = kind
        #: Logical tick assigned at admission (global arrival order).
        self.tick = tick
        #: Admission / resolution timestamps on the :data:`time_fn`
        #: clock (time-to-first-report measurements read these).
        self.admitted_at = admitted_at
        self.resolved_at: float | None = None
        self.report: SubmissionReport | ObservationReport | None = None
        self.error: FederationError | None = None
        self.batch_seq: int | None = None
        self._done = threading.Event()
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def result(self) -> SubmissionReport | ObservationReport:
        """The flushed report; raises the item's typed error instead if
        its execution failed, or :class:`SessionStateError` before the
        item's segment has flushed."""
        if not self._done.is_set():
            raise SessionStateError(
                f"ticket {self.seq} is not flushed yet; call drain() "
                "or wait() first",
                template=self.template,
                phase="ingest",
            )
        if self.error is not None:
            raise self.error
        return self.report

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` when this ticket resolves.

        Fires on the flush thread at resolution — or immediately, on the
        registering thread, when the ticket is already done.  Callbacks
        must be quick and must not call blocking ingest paths (they run
        inside the flush); exceptions they raise are suppressed so one
        consumer can never strand another consumer's flush.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        try:
            fn(self)
        except Exception:
            pass

    def _resolve(self, report, error, batch_seq: int) -> None:
        """Stamp the outcome, wake waiters, fire callbacks (in
        registration order, outside every front-door lock)."""
        self.report = report
        self.error = error
        self.batch_seq = batch_seq
        self.resolved_at = time_fn()
        with self._cb_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "done" if self.done else "pending"
        return f"IngestTicket(seq={self.seq}, {self.kind} {self.template!r}, {state})"


class _Item:
    """One queued admission: envelope + admission-time tick + ticket."""

    __slots__ = ("seq", "kind", "request", "tick", "admitted_at", "ticket")

    def __init__(self, seq, kind, request, tick, admitted_at, ticket):
        self.seq = seq
        self.kind = kind
        self.request = request
        self.tick = tick
        self.admitted_at = admitted_at
        self.ticket = ticket


class FrontDoor:
    """The gateway's bounded, batch-coalescing admission layer.

    Constructed lazily by :meth:`FederationGateway.ingest`; all policy
    comes from the gateway's
    :class:`~repro.federation.config.FederationConfig`
    (``ingest_queue_depth``, ``ingest_batch_max``, ``ingest_flush_ms``,
    ``ingest_overflow``, ``ingest_pipeline``, ``ingest_segment_max``).
    Flushes run on the calling thread — the admission that trips a
    watermark, the blocked admission helping itself, or the explicit
    :meth:`drain` — never on a hidden background thread, so tests and
    replays stay deterministic.  The only helper threads are opt-in: one
    admission thread for the asyncio surface and one prefit thread for
    ``ingest_pipeline=True``, both lazily created and both torn down by
    :meth:`close`.
    """

    def __init__(self, gateway):
        self._gateway = gateway
        config = gateway.config
        self.queue_depth: int = config.ingest_queue_depth
        self.batch_max: int = config.ingest_batch_max
        self.flush_ms: float | None = config.ingest_flush_ms
        self.overflow: str = config.ingest_overflow
        self.pipeline: bool = config.ingest_pipeline
        self.segment_max: int | None = config.ingest_segment_max
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._pending: list[_Item] = []
        self._flushing = False
        self._closed = False
        self._seq = 0
        self._batch_seq = 0
        self._admitted = 0
        self._submits = 0
        self._observes = 0
        self._rejected = 0
        self._blocked = 0
        self._flushes = 0
        self._size_flushes = 0
        self._interval_flushes = 0
        self._drain_flushes = 0
        self._backpressure_flushes = 0
        self._items_flushed = 0
        self._max_batch = 0
        self._fit_rounds = 0
        self._peak_depth = 0
        self._segments_run = 0
        self._streamed_items = 0
        self._admit_pool: ThreadPoolExecutor | None = None
        self._prefit_pool: ThreadPoolExecutor | None = None

    # Admission --------------------------------------------------------------

    def ingest(self, request):
        """Admit one envelope; returns its ticket(s), not its result.

        A :class:`BatchObserveRequest` is admitted atomically (all rows
        or none) and returns one ticket per row, in row order.
        """
        if isinstance(request, BatchObserveRequest):
            return self._admit([("observe", row) for row in request.requests])
        if isinstance(request, SubmitRequest):
            return self._admit([("submit", request)])[0]
        if isinstance(request, ObserveRequest):
            return self._admit([("observe", request)])[0]
        raise EnvelopeError(
            "ingest() takes a SubmitRequest, ObserveRequest or "
            f"BatchObserveRequest, got {type(request).__name__}"
        )

    def _admit(self, entries: list[tuple[str, SubmitRequest | ObserveRequest]]):
        if not entries:
            # Defence in depth: BatchObserveRequest already rejects zero
            # rows at construction, but an empty entry list must surface
            # as the typed envelope error, never an IndexError below.
            raise EnvelopeError(
                "cannot admit an empty batch: it carries no rows to "
                "ingest",
                phase="ingest",
            )
        n = len(entries)
        template = entries[0][1].template
        for _kind, request in entries:
            self._gateway._require_template(request.template)
        blocked_counted = False
        tickets = None
        while True:
            job = None
            with self._space:
                self._ensure_open_locked()
                if n > self.queue_depth:
                    self._rejected += n
                    raise IngestOverflowError(
                        f"batch of {n} rows exceeds the whole ingest queue "
                        f"(depth {self.queue_depth}); raise ingest_queue_depth "
                        "or split the batch",
                        template=template,
                        queue_depth=self.queue_depth,
                    )
                if len(self._pending) + n > self.queue_depth:
                    if self.overflow == "reject":
                        self._rejected += n
                        raise IngestOverflowError(
                            f"ingest queue is full ({len(self._pending)}/"
                            f"{self.queue_depth} pending)",
                            template=template,
                            queue_depth=self.queue_depth,
                        )
                    if not blocked_counted:
                        self._blocked += 1
                        blocked_counted = True
                    if not self._flushing and self._pending:
                        # Self-help: nobody is flushing, so the blocked
                        # caller drains the queue itself — blocking can
                        # never deadlock.  Counted under its own trigger
                        # so watermark flushes stay distinguishable from
                        # overflow relief.
                        job = self._take_locked("backpressure")
                    else:
                        # Notify-driven: woken by _take_locked (space
                        # appears at flush *start*), _finalize or
                        # close(); the timeout only guards a lost notify.
                        self._space.wait_for(
                            lambda: self._closed
                            or len(self._pending) + n <= self.queue_depth
                            or (not self._flushing and bool(self._pending)),
                            timeout=_BLOCK_POLL_SECONDS,
                        )
                else:
                    tickets = self._enqueue_locked(entries)
                    trigger = self._trigger_locked()
                    if trigger is not None and not self._flushing:
                        job = self._take_locked(trigger)
            if job is not None:
                self._run_flush(*job)
            if tickets is not None:
                return tickets

    def _enqueue_locked(self, entries) -> list[IngestTicket]:
        now = time_fn()
        tickets = []
        for kind, request in entries:
            seq = self._seq
            self._seq += 1
            tick = self._gateway._resolve_tick(request.tick)
            ticket = IngestTicket(seq, request.template, kind, tick, now)
            self._pending.append(_Item(seq, kind, request, tick, now, ticket))
            tickets.append(ticket)
            if kind == "submit":
                self._submits += 1
            else:
                self._observes += 1
        self._admitted += len(entries)
        self._peak_depth = max(self._peak_depth, len(self._pending))
        return tickets

    def _trigger_locked(self) -> str | None:
        if len(self._pending) >= self.batch_max:
            return "size"
        if (
            self.flush_ms is not None
            and self._pending
            and (time_fn() - self._pending[0].admitted_at) * 1000.0 >= self.flush_ms
        ):
            return "interval"
        return None

    def _take_locked(self, trigger: str) -> tuple[list[_Item], str, int]:
        items = self._pending
        self._pending = []
        self._flushing = True
        # The flush sequence is claimed at *start* so segments can stamp
        # their tickets while the flush is still running; only one flush
        # runs at a time, so the counter stays monotone per flush.
        self._batch_seq += 1
        # Queue space appeared the moment the pending list was taken —
        # wake blocked admissions now, not at flush end.
        self._space.notify_all()
        return items, trigger, self._batch_seq

    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise SessionStateError(
                "ingest front door is closed", phase="ingest"
            )

    # Streaming consumption --------------------------------------------------

    @staticmethod
    def as_completed(tickets, timeout: float | None = None):
        """Yield tickets in admission order as each one resolves.

        Streaming consumption for a caller holding a ticket list: every
        yielded ticket is done (``ticket.result()`` will not block), and
        tickets from an already-executed segment yield while the rest of
        their flush is still running.  ``timeout`` bounds the *total*
        wait across all tickets; exceeding it raises :class:`TimeoutError`.
        """
        deadline = None if timeout is None else time_fn() + timeout
        for ticket in tickets:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time_fn())
            if not ticket.wait(remaining):
                raise TimeoutError(
                    f"ticket {ticket.seq} ({ticket.template!r}) unresolved "
                    f"after {timeout}s"
                )
            yield ticket

    # asyncio surface --------------------------------------------------------

    async def ingest_async(self, request):
        """Admit one envelope from a coroutine and await its report.

        Admission runs on the door's single admission thread (it may
        block on backpressure or inline-run a watermark flush — never on
        the event loop); resolution is bridged back through a
        ``call_soon_threadsafe`` done-callback, so a pending result
        costs one waiter task, not one blocked thread.  Returns the
        report (a list of reports for a :class:`BatchObserveRequest`) or
        raises the item's typed error.
        """
        loop = asyncio.get_running_loop()
        admitted = await self._in_admission_thread(loop, self.ingest, request)
        if isinstance(admitted, list):
            return await asyncio.gather(
                *(self._bridge_ticket(ticket, loop) for ticket in admitted)
            )
        return await self._bridge_ticket(admitted, loop)

    async def drain_async(self) -> IngestBatch:
        """Awaitable :meth:`drain`, queued behind pending admissions.

        Yields to the loop once first, so ``asyncio.create_task``-ed
        ``ingest_async`` calls made just before this call hand their
        admissions to the admission thread ahead of the drain — the
        create-tasks-then-drain pattern flushes all of them.
        """
        await asyncio.sleep(0)
        loop = asyncio.get_running_loop()
        try:
            return await self._in_admission_thread(loop, self.drain)
        except SessionStateError:
            # A racing close() shut the door; its final flush already
            # covered everything admitted, so mirror sync drain()'s
            # idempotent no-op instead of failing the barrier.
            return self.drain()

    def _in_admission_thread(self, loop, fn, *args):
        """Schedule ``fn(*args)`` on the single admission thread.

        One thread keeps concurrent ``ingest_async`` tasks FIFO — tasks
        created in order admit in order, which is what makes the async
        surface replayable under the bitwise-equivalence contract.
        """
        with self._space:
            self._ensure_open_locked()
            if self._admit_pool is None:
                self._admit_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="frontdoor-admit"
                )
            pool = self._admit_pool
        try:
            future = pool.submit(fn, *args)
        except RuntimeError as error:  # pool torn down by a racing close()
            raise SessionStateError(
                "ingest front door is closed", phase="ingest"
            ) from error
        return asyncio.wrap_future(future, loop=loop)

    @staticmethod
    def _bridge_ticket(ticket: IngestTicket, loop) -> asyncio.Future:
        """An asyncio future completed by the ticket's done-callback."""
        future = loop.create_future()

        def complete() -> None:
            if future.cancelled():
                return
            if ticket.error is not None:
                future.set_exception(ticket.error)
            else:
                future.set_result(ticket.report)

        # The callback fires on the flush thread; hop onto the loop.  A
        # closed loop makes call_soon_threadsafe raise — suppressed by
        # the ticket's callback runner, which is exactly right: nobody
        # is left to consume the future.
        ticket.add_done_callback(lambda _t: loop.call_soon_threadsafe(complete))
        return future

    # Flushing ---------------------------------------------------------------

    def drain(self) -> IngestBatch:
        """Flush everything pending and return the batch (a barrier).

        Waits out any in-flight flush first (notify-driven — the waiter
        wakes on the flush's state edge, not on a poll).  With nothing
        pending — including after :meth:`close` — returns an empty batch
        carrying the last flush's sequence number; draining an idle (or
        closed) door is always a safe no-op.
        """
        while True:
            with self._space:
                if self._flushing:
                    self._space.wait_for(
                        lambda: not self._flushing,
                        timeout=_BLOCK_POLL_SECONDS,
                    )
                    continue
                if not self._pending:
                    return IngestBatch(
                        seq=self._batch_seq,
                        trigger="drain",
                        templates=(),
                        submits=0,
                        observes=0,
                        fit_rounds=0,
                        reports=(),
                        errors=(),
                        segments=0,
                    )
                job = self._take_locked("drain")
            return self._run_flush(*job)

    def close(self) -> IngestBatch:
        """Stop admissions, flush what was admitted, reap helper threads.

        Closing first means a racing ``ingest()`` either lands before
        the close (and its item is in the returned batch) or fails with
        the typed closed error — never admitted-then-dropped.  The
        admission and prefit helper threads (if they were ever created)
        are shut down after the final flush.
        """
        with self._space:
            self._closed = True
            self._space.notify_all()
        batch = self.drain()
        for pool in (self._admit_pool, self._prefit_pool):
            if pool is not None:
                pool.shutdown(wait=True)
        self._admit_pool = None
        self._prefit_pool = None
        return batch

    def _run_flush(self, items: list[_Item], trigger: str, seq: int) -> IngestBatch:
        gateway = self._gateway
        reports: list = [None] * len(items)
        errors: list = [None] * len(items)
        fit_rounds = 0
        segments_done = 0
        resolved_until = 0
        bounds = self._segments(items)
        overlap = None  # in-flight prefit of the next segment's safe subset
        prefit_early: set[str] = set()
        completed = False
        try:
            for index, (start, end) in enumerate(bounds):
                segment = items[start:end]
                if overlap is not None:
                    # Harvest the previous segment's overlapped prefit;
                    # an infrastructure failure surfaces here, exactly
                    # where the synchronous prefit would have raised.
                    if overlap.result():
                        fit_rounds += 1
                    overlap = None
                keys: list[str] = []
                for item in segment:
                    key = item.request.template
                    if item.kind == "submit" and key not in prefit_early and key not in keys:
                        keys.append(key)
                if keys and gateway._prefit_for_flush(keys):
                    fit_rounds += 1
                prefit_early = set()
                if self.pipeline and index + 1 < len(bounds):
                    # While this segment executes, prefit the *safe
                    # subset* of the next one: submit templates no item
                    # of this segment touches, so their histories are
                    # frozen for the duration (see module docs).
                    touched = {item.request.template for item in segment}
                    next_start, next_end = bounds[index + 1]
                    safe: list[str] = []
                    for item in items[next_start:next_end]:
                        key = item.request.template
                        if item.kind == "submit" and key not in touched and key not in safe:
                            safe.append(key)
                    if safe:
                        prefit_early = set(safe)
                        overlap = self._prefit_executor().submit(
                            gateway._prefit_for_flush, safe
                        )
                for offset, item in enumerate(segment, start=start):
                    request = replace(item.request, tick=item.tick)
                    try:
                        if item.kind == "submit":
                            reports[offset] = gateway.submit(request)
                        else:
                            reports[offset] = gateway.observe(request)
                    except FederationError as error:
                        errors[offset] = error
                    except EstimationError as error:
                        # Keep the batch's error surface typed even for
                        # engine-room failures outside the taxonomy.
                        wrapped = FederationError(
                            str(error),
                            template=item.request.template,
                            phase="ingest",
                        )
                        wrapped.__cause__ = error
                        errors[offset] = wrapped
                # Streaming: this segment's tickets resolve now, while
                # later segments are still pending.
                segments_done += 1
                self._resolve_segment(
                    items, reports, errors, start, end, seq, streamed=end < len(items)
                )
                resolved_until = end
            completed = True
        except BaseException as error:
            # Infrastructure failure mid-flush (e.g. a shard that died
            # twice): resolve the stranded tickets before propagating so
            # no waiter hangs forever.
            aborted = IngestAbortedError(
                f"ingest flush aborted: {error}", phase="ingest"
            )
            aborted.__cause__ = error
            for offset in range(resolved_until, len(items)):
                if reports[offset] is None and errors[offset] is None:
                    errors[offset] = aborted
            raise
        finally:
            if overlap is not None:
                # Abort path with a prefit still in flight: reap it so
                # no helper-thread RPC races the teardown that usually
                # follows an aborted flush.
                try:
                    overlap.result()
                except BaseException:
                    pass
            batch = self._finalize(
                items, trigger, seq, reports, errors,
                fit_rounds, segments_done, resolved_until,
            )
            if not completed:
                # Durability boundary for the abort path: per-item
                # journal/audit records appended by the partial flush
                # must not sit un-fsynced (fsync="batch") just because
                # the flush died — a crash right after would lose
                # acknowledged work.
                gateway._durability_sync()
        # Governance hook: chain one audit record per non-empty flush
        # (per-item submit/observe/denial records were appended as the
        # items ran above).  Before the rebalance tick, so a cadence
        # cycle's record lands after the flush that triggered it.
        gateway._audit_flush(batch)
        # Elastic-topology control loop: a successful flush is the
        # cadence tick (a no-op unless the gateway was configured with
        # FederationConfig(rebalance=...)).  After _finalize, so the
        # flush flag is already released and tickets are resolved —
        # rebalancing never extends the batch's latency window.
        gateway._auto_rebalance()
        # Durability batch boundary: under fsync="batch" the flush's
        # journaled records reach stable storage here, once per batch
        # instead of once per append.  Last, so the flush-audit and any
        # rebalance topology record make the same sync.
        gateway._durability_sync()
        return batch

    def _prefit_executor(self) -> ThreadPoolExecutor:
        # Only the (single) flush thread reaches this, so no lock: one
        # helper thread total, created on first pipelined flush.
        if self._prefit_pool is None:
            self._prefit_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="frontdoor-prefit"
            )
        return self._prefit_pool

    def _segments(self, items: list[_Item]) -> list[tuple[int, int]]:
        """Cut the flush into fit-coalescible runs (see module docs).

        A segment ends just before a submission whose template already
        appended history within the segment — the sequential oracle
        would refit it *after* those appends, so its fit belongs to the
        next segment's prefit round.  ``ingest_segment_max`` adds size
        cuts on top, purely for streaming granularity: subdividing a
        fit-coalesced run never changes what the prefits see.
        """
        bounds = []
        start = 0
        appended: set[str] = set()
        for index, item in enumerate(items):
            key = item.request.template
            cut = item.kind == "submit" and key in appended
            if (
                not cut
                and self.segment_max is not None
                and index - start >= self.segment_max
            ):
                cut = True
            if cut and index > start:
                bounds.append((start, index))
                start = index
                appended = set()
            # Both kinds append: an observe logs its row, an executed
            # submission logs its measured run.
            appended.add(key)
        bounds.append((start, len(items)))
        return bounds

    def _resolve_segment(
        self, items, reports, errors, start, end, seq, *, streamed: bool
    ) -> None:
        """Resolve one executed segment's tickets (outside all locks —
        done-callbacks run here) and count the stream progress."""
        for index in range(start, end):
            items[index].ticket._resolve(reports[index], errors[index], seq)
        if streamed:
            with self._space:
                self._streamed_items += end - start

    def _finalize(
        self, items, trigger, seq, reports, errors,
        fit_rounds, segments_done, resolved_until,
    ) -> IngestBatch:
        # Stragglers (abort path): segments the flush never reached were
        # stamped with the abort error by _run_flush; resolve them so no
        # waiter hangs.
        for index in range(resolved_until, len(items)):
            items[index].ticket._resolve(reports[index], errors[index], seq)
        with self._space:
            self._flushing = False
            self._flushes += 1
            if trigger == "size":
                self._size_flushes += 1
            elif trigger == "interval":
                self._interval_flushes += 1
            elif trigger == "backpressure":
                self._backpressure_flushes += 1
            else:
                self._drain_flushes += 1
            self._items_flushed += len(items)
            self._max_batch = max(self._max_batch, len(items))
            self._fit_rounds += fit_rounds
            self._segments_run += segments_done
            self._space.notify_all()
        return IngestBatch(
            seq=seq,
            trigger=trigger,
            templates=tuple(sorted({item.request.template for item in items})),
            submits=sum(1 for item in items if item.kind == "submit"),
            observes=sum(1 for item in items if item.kind == "observe"),
            fit_rounds=fit_rounds,
            reports=tuple(reports),
            errors=tuple(errors),
            segments=segments_done,
        )

    # Introspection ----------------------------------------------------------

    def stats(self) -> IngestStats:
        with self._space:
            return IngestStats(
                admitted=self._admitted,
                submits=self._submits,
                observes=self._observes,
                rejected=self._rejected,
                blocked=self._blocked,
                flushes=self._flushes,
                size_flushes=self._size_flushes,
                interval_flushes=self._interval_flushes,
                drain_flushes=self._drain_flushes,
                items_flushed=self._items_flushed,
                max_batch=self._max_batch,
                fit_rounds=self._fit_rounds,
                peak_depth=self._peak_depth,
                pending=len(self._pending),
                backpressure_flushes=self._backpressure_flushes,
                segments=self._segments_run,
                streamed_items=self._streamed_items,
            )

    @property
    def pending(self) -> int:
        with self._space:
            return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FrontDoor(depth={self.queue_depth}, batch_max={self.batch_max}, "
            f"overflow={self.overflow!r}, pending={self.pending})"
        )
