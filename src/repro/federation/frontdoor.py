"""Backpressured front door: bounded admission, coalesced flushes.

The gateway's single-call surface (:meth:`FederationGateway.submit` /
``observe``) pays one fit RPC per stale template and one envelope per
execution row — exactly the regime where the sharded backend trails the
thread pool.  :class:`FrontDoor` is the batch-first alternative:
requests are *admitted* into a bounded queue (``gateway.ingest()``) and
*executed* later in one coalesced flush (``gateway.drain()``, or
automatically at the size/staleness watermarks), where every stale
template a flush segment touches is refitted through one
``refresh_batch`` call — one ``fit_many`` RPC per shard — instead of N
independent fits.

Equivalence contract
--------------------

A drained batch is **bitwise-identical** to the same requests replayed
sequentially through the single-call surface: same windows, same
predictions, same fit counts (property-tested on both backends).  Two
rules make that hold:

* **Global admission order.**  The simulator draws measurement noise
  from one sequential stream, so flushed items execute in exact
  admission order — batching reorders *fits*, never executions.
* **Segment cuts.**  Within a flush, fits are hoisted to segment
  boundaries: a segment ends just before a submission whose template
  already appended history earlier in the segment (an executed
  observation or submission), because the sequential path would refit
  that template *after* those appends.  Canonical observe-then-submit
  traffic therefore coalesces into a single fit round per flush.

Backpressure
------------

Admission never silently drops.  At a full queue, ``"reject"`` mode
raises a typed :class:`~repro.federation.errors.IngestOverflowError`
(template + phase + bound); ``"block"`` mode makes the admitting caller
wait — and when no flush is in progress the blocked caller flushes the
queue *itself*, so blocking can never deadlock: either a flush is
running (space appears when it finishes) or the blocked thread creates
the space on its own.

Mixing paths: a template's traffic should go through either the front
door or the direct single-call surface at any given time — admitted
items carry admission-time ticks, so a direct auto-ticked call racing a
pending flush on the *same* template could append out of tick order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

from repro.common.errors import EstimationError
from repro.federation.envelopes import (
    BatchObserveRequest,
    IngestBatch,
    IngestStats,
    ObservationReport,
    ObserveRequest,
    SubmissionReport,
    SubmitRequest,
)
from repro.federation.errors import (
    EnvelopeError,
    FederationError,
    IngestOverflowError,
    SessionStateError,
)

#: Module-level clock, monkeypatchable in tests (the staleness watermark
#: and blocked-admission bookkeeping read it; same idiom as
#: :data:`repro.core.cache.time_fn`).
time_fn = time.monotonic

#: How long a blocked admission (or a drain waiting out another flush)
#: sleeps between queue re-checks.  A re-check loop rather than a bare
#: wait: the wake-up condition is "space appeared *or* the door closed",
#: and the poll bounds the stall even if a notify is lost.
_BLOCK_POLL_SECONDS = 0.05


class IngestTicket:
    """One admitted request's claim on its future flush outcome.

    Resolved when the item's flush completes: exactly one of
    :attr:`report` / :attr:`error` is set, :attr:`batch_seq` names the
    flush, and :meth:`wait` unblocks.
    """

    __slots__ = ("seq", "template", "kind", "tick", "report", "error", "batch_seq", "_done")

    def __init__(self, seq: int, template: str, kind: str, tick: int):
        self.seq = seq
        self.template = template
        #: ``"submit"`` or ``"observe"``.
        self.kind = kind
        #: Logical tick assigned at admission (global arrival order).
        self.tick = tick
        self.report: SubmissionReport | ObservationReport | None = None
        self.error: FederationError | None = None
        self.batch_seq: int | None = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def result(self) -> SubmissionReport | ObservationReport:
        """The flushed report; raises the item's typed error instead if
        its execution failed, or :class:`SessionStateError` before the
        flush has happened."""
        if not self._done.is_set():
            raise SessionStateError(
                f"ticket {self.seq} is not flushed yet; call drain() "
                "or wait() first",
                template=self.template,
                phase="ingest",
            )
        if self.error is not None:
            raise self.error
        return self.report

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "done" if self.done else "pending"
        return f"IngestTicket(seq={self.seq}, {self.kind} {self.template!r}, {state})"


class _Item:
    """One queued admission: envelope + admission-time tick + ticket."""

    __slots__ = ("seq", "kind", "request", "tick", "admitted_at", "ticket")

    def __init__(self, seq, kind, request, tick, admitted_at, ticket):
        self.seq = seq
        self.kind = kind
        self.request = request
        self.tick = tick
        self.admitted_at = admitted_at
        self.ticket = ticket


class FrontDoor:
    """The gateway's bounded, batch-coalescing admission layer.

    Constructed lazily by :meth:`FederationGateway.ingest`; all policy
    comes from the gateway's
    :class:`~repro.federation.config.FederationConfig`
    (``ingest_queue_depth``, ``ingest_batch_max``, ``ingest_flush_ms``,
    ``ingest_overflow``).  Flushes run on the calling thread — the
    admission that trips a watermark, the blocked admission helping
    itself, or the explicit :meth:`drain` — never on a hidden
    background thread, so tests and replays stay deterministic.
    """

    def __init__(self, gateway):
        self._gateway = gateway
        config = gateway.config
        self.queue_depth: int = config.ingest_queue_depth
        self.batch_max: int = config.ingest_batch_max
        self.flush_ms: float | None = config.ingest_flush_ms
        self.overflow: str = config.ingest_overflow
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._pending: list[_Item] = []
        self._flushing = False
        self._closed = False
        self._seq = 0
        self._batch_seq = 0
        self._admitted = 0
        self._submits = 0
        self._observes = 0
        self._rejected = 0
        self._blocked = 0
        self._flushes = 0
        self._size_flushes = 0
        self._interval_flushes = 0
        self._drain_flushes = 0
        self._items_flushed = 0
        self._max_batch = 0
        self._fit_rounds = 0
        self._peak_depth = 0

    # Admission --------------------------------------------------------------

    def ingest(self, request):
        """Admit one envelope; returns its ticket(s), not its result.

        A :class:`BatchObserveRequest` is admitted atomically (all rows
        or none) and returns one ticket per row, in row order.
        """
        if isinstance(request, BatchObserveRequest):
            return self._admit([("observe", row) for row in request.requests])
        if isinstance(request, SubmitRequest):
            return self._admit([("submit", request)])[0]
        if isinstance(request, ObserveRequest):
            return self._admit([("observe", request)])[0]
        raise EnvelopeError(
            "ingest() takes a SubmitRequest, ObserveRequest or "
            f"BatchObserveRequest, got {type(request).__name__}"
        )

    def _admit(self, entries: list[tuple[str, SubmitRequest | ObserveRequest]]):
        n = len(entries)
        template = entries[0][1].template
        for _kind, request in entries:
            self._gateway._require_template(request.template)
        blocked_counted = False
        tickets = None
        while True:
            job = None
            with self._space:
                self._ensure_open_locked()
                if n > self.queue_depth:
                    self._rejected += n
                    raise IngestOverflowError(
                        f"batch of {n} rows exceeds the whole ingest queue "
                        f"(depth {self.queue_depth}); raise ingest_queue_depth "
                        "or split the batch",
                        template=template,
                        queue_depth=self.queue_depth,
                    )
                if len(self._pending) + n > self.queue_depth:
                    if self.overflow == "reject":
                        self._rejected += n
                        raise IngestOverflowError(
                            f"ingest queue is full ({len(self._pending)}/"
                            f"{self.queue_depth} pending)",
                            template=template,
                            queue_depth=self.queue_depth,
                        )
                    if not blocked_counted:
                        self._blocked += 1
                        blocked_counted = True
                    if not self._flushing and self._pending:
                        # Self-help: nobody is flushing, so the blocked
                        # caller drains the queue itself — blocking can
                        # never deadlock.
                        job = self._take_locked("size")
                    else:
                        self._space.wait(_BLOCK_POLL_SECONDS)
                else:
                    tickets = self._enqueue_locked(entries)
                    trigger = self._trigger_locked()
                    if trigger is not None and not self._flushing:
                        job = self._take_locked(trigger)
            if job is not None:
                self._run_flush(*job)
            if tickets is not None:
                return tickets

    def _enqueue_locked(self, entries) -> list[IngestTicket]:
        now = time_fn()
        tickets = []
        for kind, request in entries:
            seq = self._seq
            self._seq += 1
            tick = self._gateway._resolve_tick(request.tick)
            ticket = IngestTicket(seq, request.template, kind, tick)
            self._pending.append(_Item(seq, kind, request, tick, now, ticket))
            tickets.append(ticket)
            if kind == "submit":
                self._submits += 1
            else:
                self._observes += 1
        self._admitted += len(entries)
        self._peak_depth = max(self._peak_depth, len(self._pending))
        return tickets

    def _trigger_locked(self) -> str | None:
        if len(self._pending) >= self.batch_max:
            return "size"
        if (
            self.flush_ms is not None
            and self._pending
            and (time_fn() - self._pending[0].admitted_at) * 1000.0 >= self.flush_ms
        ):
            return "interval"
        return None

    def _take_locked(self, trigger: str) -> tuple[list[_Item], str]:
        items = self._pending
        self._pending = []
        self._flushing = True
        return items, trigger

    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise SessionStateError(
                "ingest front door is closed", phase="ingest"
            )

    # Flushing ---------------------------------------------------------------

    def drain(self) -> IngestBatch:
        """Flush everything pending and return the batch (a barrier).

        Waits out any in-flight flush first.  With nothing pending —
        including after :meth:`close` — returns an empty batch carrying
        the last flush's sequence number; draining an idle (or closed)
        door is always a safe no-op.
        """
        while True:
            with self._space:
                if self._flushing:
                    self._space.wait(_BLOCK_POLL_SECONDS)
                    continue
                if not self._pending:
                    return IngestBatch(
                        seq=self._batch_seq,
                        trigger="drain",
                        templates=(),
                        submits=0,
                        observes=0,
                        fit_rounds=0,
                        reports=(),
                        errors=(),
                    )
                job = self._take_locked("drain")
            return self._run_flush(*job)

    def close(self) -> IngestBatch:
        """Stop admissions, then flush what was already admitted.

        Closing first means a racing ``ingest()`` either lands before
        the close (and its item is in the returned batch) or fails with
        the typed closed error — never admitted-then-dropped.
        """
        with self._space:
            self._closed = True
            self._space.notify_all()
        return self.drain()

    def _run_flush(self, items: list[_Item], trigger: str) -> IngestBatch:
        gateway = self._gateway
        reports: list = [None] * len(items)
        errors: list = [None] * len(items)
        fit_rounds = 0
        try:
            for start, end in self._segments(items):
                segment = items[start:end]
                prefit: list[str] = []
                for item in segment:
                    if item.kind == "submit" and item.request.template not in prefit:
                        prefit.append(item.request.template)
                if prefit and gateway._prefit_for_flush(prefit):
                    fit_rounds += 1
                for offset, item in enumerate(segment, start=start):
                    request = replace(item.request, tick=item.tick)
                    try:
                        if item.kind == "submit":
                            reports[offset] = gateway.submit(request)
                        else:
                            reports[offset] = gateway.observe(request)
                    except FederationError as error:
                        errors[offset] = error
                    except EstimationError as error:
                        # Keep the batch's error surface typed even for
                        # engine-room failures outside the taxonomy.
                        wrapped = FederationError(
                            str(error),
                            template=item.request.template,
                            phase="ingest",
                        )
                        wrapped.__cause__ = error
                        errors[offset] = wrapped
        except BaseException as error:
            # Infrastructure failure mid-flush (e.g. a shard that died
            # twice): resolve the stranded tickets before propagating so
            # no waiter hangs forever.
            aborted = FederationError(
                f"ingest flush aborted: {error}", phase="ingest"
            )
            aborted.__cause__ = error
            for offset in range(len(items)):
                if reports[offset] is None and errors[offset] is None:
                    errors[offset] = aborted
            raise
        finally:
            batch = self._finalize(items, trigger, reports, errors, fit_rounds)
        # Governance hook: chain one audit record per non-empty flush
        # (per-item submit/observe/denial records were appended as the
        # items ran above).  Before the rebalance tick, so a cadence
        # cycle's record lands after the flush that triggered it.
        gateway._audit_flush(batch)
        # Elastic-topology control loop: a successful flush is the
        # cadence tick (a no-op unless the gateway was configured with
        # FederationConfig(rebalance=...)).  After _finalize, so the
        # flush flag is already released and tickets are resolved —
        # rebalancing never extends the batch's latency window.
        gateway._auto_rebalance()
        # Durability batch boundary: under fsync="batch" the flush's
        # journaled records reach stable storage here, once per batch
        # instead of once per append.  Last, so the flush-audit and any
        # rebalance topology record make the same sync.
        gateway._durability_sync()
        return batch

    @staticmethod
    def _segments(items: list[_Item]) -> list[tuple[int, int]]:
        """Cut the flush into fit-coalescible runs (see module docs).

        A segment ends just before a submission whose template already
        appended history within the segment — the sequential oracle
        would refit it *after* those appends, so its fit belongs to the
        next segment's prefit round.
        """
        bounds = []
        start = 0
        appended: set[str] = set()
        for index, item in enumerate(items):
            key = item.request.template
            if item.kind == "submit" and key in appended:
                bounds.append((start, index))
                start = index
                appended = set()
            # Both kinds append: an observe logs its row, an executed
            # submission logs its measured run.
            appended.add(key)
        bounds.append((start, len(items)))
        return bounds

    def _finalize(self, items, trigger, reports, errors, fit_rounds) -> IngestBatch:
        with self._space:
            self._flushing = False
            self._batch_seq += 1
            seq = self._batch_seq
            self._flushes += 1
            if trigger == "size":
                self._size_flushes += 1
            elif trigger == "interval":
                self._interval_flushes += 1
            else:
                self._drain_flushes += 1
            self._items_flushed += len(items)
            self._max_batch = max(self._max_batch, len(items))
            self._fit_rounds += fit_rounds
            self._space.notify_all()
        batch = IngestBatch(
            seq=seq,
            trigger=trigger,
            templates=tuple(sorted({item.request.template for item in items})),
            submits=sum(1 for item in items if item.kind == "submit"),
            observes=sum(1 for item in items if item.kind == "observe"),
            fit_rounds=fit_rounds,
            reports=tuple(reports),
            errors=tuple(errors),
        )
        for item, report, error in zip(items, reports, errors):
            ticket = item.ticket
            ticket.report = report
            ticket.error = error
            ticket.batch_seq = seq
            ticket._done.set()
        return batch

    # Introspection ----------------------------------------------------------

    def stats(self) -> IngestStats:
        with self._space:
            return IngestStats(
                admitted=self._admitted,
                submits=self._submits,
                observes=self._observes,
                rejected=self._rejected,
                blocked=self._blocked,
                flushes=self._flushes,
                size_flushes=self._size_flushes,
                interval_flushes=self._interval_flushes,
                drain_flushes=self._drain_flushes,
                items_flushed=self._items_flushed,
                max_batch=self._max_batch,
                fit_rounds=self._fit_rounds,
                peak_depth=self._peak_depth,
                pending=len(self._pending),
            )

    @property
    def pending(self) -> int:
        with self._space:
            return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FrontDoor(depth={self.queue_depth}, batch_max={self.batch_max}, "
            f"overflow={self.overflow!r}, pending={self.pending})"
        )
