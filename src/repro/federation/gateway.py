"""The federation gateway: the one way into the Figure 1 pipeline.

:class:`FederationGateway` is the public façade in front of the engine
room (:class:`~repro.ires.platform.IReSPlatform` and the multi-tenant
:class:`~repro.serving.service.EstimationService`).  It is constructed
from the physical environment (catalog, statistics, deployment,
enumerator, simulator) plus one declarative
:class:`~repro.federation.config.FederationConfig`, takes typed request
envelopes (:class:`~repro.federation.envelopes.SubmitRequest`,
:class:`~repro.federation.envelopes.ObserveRequest`) and returns typed
reports; failures carry template key and pipeline phase through the
:class:`~repro.federation.errors.FederationError` taxonomy.

Everything above the gateway — MIDAS, the examples, the experiments, the
workload runners, the CLI — goes through this surface; nothing outside
``repro.federation`` and ``repro.ires`` constructs the engine room
directly.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from contextlib import nullcontext
from dataclasses import replace

from repro.engines.simulate import MultiEngineSimulator
from repro.federation.config import FederationConfig
from repro.federation.durability import DurabilityConfig, DurabilityManager
from repro.federation.envelopes import (
    AuditReport,
    BatchObserveRequest,
    BatchReport,
    IngestBatch,
    IngestStats,
    ObservationReport,
    ObserveRequest,
    RecoveryReport,
    ServingReport,
    SubmissionReport,
    SubmitRequest,
    TopologyReport,
)
from repro.federation.errors import (
    DuplicateTemplateError,
    EnvelopeError,
    GatewayConfigError,
    InsufficientHistoryError,
    PolicyViolationError,
    SessionStateError,
    UnknownTemplateError,
)
from repro.governance.audit import GENESIS_HASH, AuditLog, verify_chain
from repro.governance.identity import Principal
from repro.governance.policy import PlanConstraint, PolicyEngine
from repro.federation.frontdoor import FrontDoor, IngestTicket
from repro.federation.registry import create_serving, create_strategy
from repro.federation.session import GatewaySession
from repro.common.errors import EstimationError
from repro.core.cache import CacheStats
from repro.core.history import ExecutionHistory
from repro.ires.deployment import Deployment
from repro.ires.enumerator import QepCandidate, QepEnumerator
from repro.ires.executor import Executor
from repro.ires.modelling import EstimationStrategy, FittedCostModel
from repro.ires.optimizer import MultiObjectiveOptimizer, OptimizerConfig
from repro.ires.platform import IReSPlatform
from repro.plans.catalog import Catalog
from repro.plans.statistics import TableStats
from repro.serving.service import ServiceStats
from repro.serving.sharded import ShardedServingError
from repro.serving.topology import RebalancePolicy
from repro.tpch.queries import QueryTemplate


class FederationGateway:
    """Unified entry surface over a federated multi-engine deployment.

    Parameters
    ----------
    catalog, stats, deployment, enumerator, simulator:
        The physical environment (what exists and where it runs).
    config:
        Declarative behaviour: estimation backend, thresholds, cache
        budget, optimizer algorithm, refresh-pool width.
    strategy:
        Escape hatch for a pre-built
        :class:`~repro.ires.modelling.EstimationStrategy` instance
        (engine-room tests, custom unregistered backends); when given,
        ``config.strategy`` is not consulted.
    """

    def __init__(
        self,
        *,
        catalog: Catalog,
        stats: dict[str, TableStats],
        deployment: Deployment,
        enumerator: QepEnumerator,
        simulator: MultiEngineSimulator,
        config: FederationConfig | None = None,
        strategy: EstimationStrategy | None = None,
    ):
        self.config = config or FederationConfig()
        if strategy is not None and self.config.serving_backend != "threaded":
            # Strategy *instances* cannot travel to shard workers; only
            # registry names can (each worker rebuilds its own copy).
            raise GatewayConfigError(
                "a pre-built strategy instance requires "
                "serving_backend='threaded'; register the strategy under a "
                f"name for the {self.config.serving_backend!r} backend"
            )
        self._strategy = strategy or create_strategy(self.config)
        optimizer = MultiObjectiveOptimizer(
            OptimizerConfig(
                algorithm=self.config.optimizer_algorithm,
                exact_limit=self.config.exact_limit,
            )
        )
        #: The engine room.  Reachable for introspection and white-box
        #: tests; construction happens only here.  The serving layer is
        #: selected by ``config.serving_backend`` through the registry
        #: (in-process ``"threaded"`` or cross-process ``"sharded"``).
        self.engine = IReSPlatform(
            catalog=catalog,
            stats=stats,
            deployment=deployment,
            enumerator=enumerator,
            simulator=simulator,
            strategy=self._strategy,
            optimizer=optimizer,
            max_fit_workers=self.config.max_fit_workers,
            serving_factory=lambda modelling: create_serving(
                self.config, modelling
            ),
        )
        self._keys: set[str] = set()
        self._lock = threading.Lock()
        self._tick = 0
        self._rotation: dict[str, int] = {}
        self._front_door: FrontDoor | None = None
        self._closed = False
        self._close_lock = threading.Lock()
        # Elastic-topology control loop: one stateful policy for the
        # gateway's lifetime (heat EWMAs carry across cycles), driven
        # either by explicit rebalance() calls or automatically every
        # config.rebalance.cadence_flushes front-door flushes.
        self._rebalance_policy = (
            None
            if self.config.rebalance is None
            else RebalancePolicy(self.config.rebalance)
        )
        self._flushes_since_rebalance = 0
        self._last_rebalance = None
        # Governance plane: the policy engine compiles DataPolicy rules
        # into per-request plan constraints; the audit log chains every
        # envelope the gateway acts on.  Both live parent-side only —
        # they observe/filter the pipeline, they never alter what an
        # admissible plan costs (permissive config == bitwise no-op).
        governance = self.config.governance
        self._policy = None if governance is None else PolicyEngine(governance)
        self._audit = (
            AuditLog() if governance is not None and governance.audit else None
        )
        # Durability plane: journal every state-changing event to a WAL
        # and replay it on recover().  A directory with existing state
        # puts the gateway in recovery-pending mode — traffic raises
        # DurabilityError until recover() runs.
        self._durability = (
            None
            if self.config.durability is None
            else DurabilityManager(self, self.config.durability)
        )
        self._wire_durability()
        # Background rebalance ticker (ROADMAP 2a): without it an idle
        # gateway never rebalances, because cycles ride the front-door
        # flush cadence.  Clean shutdown slots into close()'s ordering —
        # the ticker stops after the door's final flush, before the
        # serving layer dies.
        self._rebalance_stop = threading.Event()
        self._rebalance_thread: threading.Thread | None = None
        cadence = (
            None
            if self.config.rebalance is None
            else self.config.rebalance.cadence_seconds
        )
        if cadence is not None and hasattr(self.engine.serving, "rebalance"):
            self._rebalance_thread = threading.Thread(
                target=self._rebalance_ticker,
                args=(cadence,),
                name="gateway-rebalance-ticker",
                daemon=True,
            )
            self._rebalance_thread.start()

    def _wire_durability(self) -> None:
        """Point the event sources at the journal: audit appends, model
        fits, and (sharded only) route flips."""
        manager = self._durability
        if manager is None:
            return
        if self._audit is not None:
            self._audit.sink = manager.note_audit
        serving = self.engine.serving
        serving.on_fit = manager.note_fit
        if hasattr(serving, "migrate"):
            serving.on_route_change = manager.note_topology

    # Registration ---------------------------------------------------------

    def register_template(
        self, template: QueryTemplate, metrics: tuple[str, ...] | None = None
    ) -> ExecutionHistory:
        """Register a query template (a tenant) and create its history."""
        with self._lock:
            if template.key in self._keys:
                raise DuplicateTemplateError(
                    f"template {template.key!r} already registered",
                    template=template.key,
                )
            history = self.engine.register_template(
                template, metrics or self.config.metrics
            )
            self._keys.add(template.key)
        if self._durability is not None:
            # Outside the gateway mutex: the journal append can trigger
            # a checkpoint, and checkpoints must never nest inside it.
            self._durability.note_register(
                template.key, history.feature_names, history.metric_names
            )
        return history

    def templates(self) -> tuple[str, ...]:
        """Registered template keys, sorted."""
        with self._lock:
            return tuple(sorted(self._keys))

    def _require_template(self, key: str) -> None:
        with self._lock:
            if key not in self._keys:
                known = ", ".join(sorted(self._keys)) or "<none>"
                raise UnknownTemplateError(
                    f"unknown template {key!r}; registered: {known}", template=key
                )

    def history(self, key: str) -> ExecutionHistory:
        self._require_template(key)
        return self.engine.history(key)

    # Ticks ----------------------------------------------------------------

    def next_tick(self) -> int:
        """The next logical tick (monotone across the whole gateway)."""
        with self._lock:
            tick = self._tick
            self._tick += 1
            return tick

    def _resolve_tick(self, tick: int | None) -> int:
        if tick is None:
            return self.next_tick()
        with self._lock:
            # Keep auto-ticks ahead of explicit ones so mixing the two
            # never violates a history's non-decreasing-tick invariant.
            self._tick = max(self._tick, tick + 1)
        return tick

    def _tick_scope(self, key: str, tick: int | None):
        """Lock scope for one tick's worth of work on a template.

        Auto-assigned ticks hold the template's (re-entrant) lock from
        assignment through the history append, so concurrent auto-ticked
        calls on one template always append in tick order.  Explicit
        ticks are replay scripts — the caller owns the ordering — and
        take no extra lock.
        """
        if tick is not None:
            return nullcontext()
        return self.engine.serving.template_lock(key)

    # Durability -----------------------------------------------------------

    def _journal_row(self, key: str, tick: int, history, rotation: int | None):
        """Journal the history append that just committed: the row, the
        rotation counter it consumed, the gateway tick counter, and the
        simulator's post-draw RNG position (so a recovered gateway
        resumes the same noise sequence)."""
        row = history.observations[-1]
        simulator = getattr(self.engine.executor, "simulator", None)
        self._durability.note_row(
            key,
            tick,
            dict(row.features),
            dict(row.costs),
            size=history.size,
            rotation=rotation,
            gw=self._tick,
            rng=(
                simulator.rng_state()
                if hasattr(simulator, "rng_state")
                else None
            ),
        )

    def _journal_tick(self) -> None:
        """Journal a tick consumed without a history append (plan-only
        submissions, or a submission failing after tick assignment)."""
        if self._durability is not None:
            self._durability.note_tick(self._tick)

    def _durability_sync(self) -> None:
        """Front-door flush boundary: under ``fsync="batch"`` this is
        where journaled records reach stable storage."""
        if self._durability is not None:
            self._durability.sync()

    def recover(self, path=None) -> RecoveryReport:
        """Replay a WAL directory into this (freshly built) gateway.

        With no ``path``, replays the configured durability directory
        (``FederationConfig(durability=DurabilityConfig(dir=...))``).
        An explicit ``path`` re-points the journal there first — also
        usable on a gateway configured without durability, e.g. to
        resurrect state salvaged from another host.  The gateway must
        have the same templates registered (a fresh ``MidasSystem``
        does this at construction) and no traffic served yet; see
        :meth:`~repro.federation.durability.DurabilityManager.recover`
        for exactly what is validated and restored.  Returns a
        :class:`~repro.federation.envelopes.RecoveryReport`; corruption
        (anything beyond a clean torn tail) raises
        :class:`~repro.federation.errors.DurabilityError`.
        """
        if path is not None:
            config = (
                DurabilityConfig(dir=path)
                if self.config.durability is None
                else replace(self.config.durability, dir=path)
            )
            if self._durability is not None:
                self._durability.close()
            self._durability = DurabilityManager(self, config)
            self._wire_durability()
        if self._durability is None:
            raise GatewayConfigError(
                "recover() needs FederationConfig(durability=...) or an "
                "explicit path to a WAL directory"
            )
        return self._durability.recover()

    # Governance -----------------------------------------------------------

    def _audit_note(
        self,
        kind: str,
        *,
        template: str | None = None,
        principal: Principal | None = None,
        tick: int | None = None,
        outcome: str = "ok",
        detail: str = "",
    ) -> None:
        """Append one audit record, when the gateway keeps a log."""
        if self._audit is None:
            return
        self._audit.append(
            kind,
            template=template,
            subject=None if principal is None else principal.subject,
            tick=tick,
            outcome=outcome,
            detail=detail,
        )

    def _deny(
        self,
        key: str,
        principal: Principal | None,
        rule_ids: tuple[str, ...],
        message: str,
    ) -> None:
        """Audit and raise one policy denial (always raises)."""
        subject = None if principal is None else principal.subject
        self._audit_note(
            "denial",
            template=key,
            principal=principal,
            outcome="denied",
            detail=", ".join(rule_ids) or message,
        )
        raise PolicyViolationError(
            message, template=key, rule_ids=rule_ids, subject=subject
        )

    def _constraint_for(
        self, key: str, principal: Principal | None
    ) -> PlanConstraint | None:
        """The compiled governance constraint for one request.

        ``None`` means nothing constrains this request — no governance
        plane, no rules, or no rule in the caller's scope touches the
        query's tables.  That is the permissive fast path: downstream
        code takes exactly the historical (governance-free) branch, which
        is what makes the bitwise-equivalence gate hold by construction.
        Inadmissible requests (missing required identity, a denied
        dataset, conflicting restrictions) are audited and raised here as
        :class:`~repro.federation.errors.PolicyViolationError` before any
        plan is built.
        """
        policy = self._policy
        if policy is None:
            return None
        if policy.config.require_identity and principal is None:
            self._deny(
                key,
                None,
                ("identity-required",),
                f"anonymous request for {key!r} rejected: this federation "
                "requires every envelope to carry a Principal "
                "(GovernanceConfig(require_identity=True))",
            )
        if not policy.has_rules:
            return None
        template = self.engine.template(key)
        constraint = policy.constraint_for(
            principal, template.tables, self.engine.deployment
        )
        if constraint.unrestricted:
            return None
        if constraint.impossible:
            reasons = "; ".join(
                rule.describe() for rule in (constraint.fatal or constraint.applied)
            )
            self._deny(
                key,
                principal,
                constraint.rule_ids,
                f"no admissible plan for {key!r}: {reasons}",
            )
        return constraint

    def _checked_space(
        self,
        key: str,
        principal: Principal | None,
        constraint: PlanConstraint | None,
        candidates: list[QepCandidate],
    ) -> list[QepCandidate]:
        """Deny (never return) an empty policy-filtered QEP space.

        Unreachable for the rule shapes :class:`PolicyEngine` compiles
        today (a site that is both needed and forbidden is already
        *impossible* upstream) — kept as the last line of defence so a
        future rule kind can never make the optimizer "choose" from
        nothing.
        """
        if constraint is not None and not candidates:
            self._deny(
                key,
                principal,
                constraint.rule_ids,
                f"no admissible plan for {key!r}: every execution site was "
                "excluded by policy",
            )
        return candidates

    def audit_report(self, limit: int | None = None) -> AuditReport:
        """Typed audit-log report: chain head, live end-to-end
        verification, traffic breakdown by record kind, and (up to
        ``limit``, newest) the records themselves, oldest first.
        ``limit=0`` reports counters only; ``None`` includes the whole
        chain."""
        log = self._audit
        if log is None:
            return AuditReport(
                enabled=False,
                length=0,
                head_hash=GENESIS_HASH,
                chain_valid=True,
                submits=0,
                observes=0,
                flushes=0,
                rebalances=0,
                denials=0,
            )
        records = log.records()
        kinds = [record.kind for record in records]
        kept = records if limit is None else records[len(records) - limit :]
        if limit == 0:
            kept = ()
        return AuditReport(
            enabled=True,
            length=len(records),
            head_hash=log.head_hash,
            chain_valid=verify_chain(records),
            submits=kinds.count("submit"),
            observes=kinds.count("observe"),
            flushes=kinds.count("batch_flush"),
            rebalances=kinds.count("rebalance"),
            denials=kinds.count("denial"),
            records=tuple(kept),
        )

    @property
    def audit_log(self) -> AuditLog | None:
        """The live audit log (``None`` when auditing is off)."""
        return self._audit

    def _audit_flush(self, batch: IngestBatch) -> None:
        """Front-door hook: chain one record per non-empty flush."""
        if len(batch) == 0:
            return
        self._audit_note(
            "batch_flush",
            detail=(
                f"trigger={batch.trigger} items={len(batch)} "
                f"submits={batch.submits} observes={batch.observes} "
                f"failed={batch.failed}"
            ),
        )

    # Profiling ------------------------------------------------------------

    def candidates(
        self,
        key: str,
        params: dict,
        stats: dict[str, TableStats] | None = None,
        principal: Principal | None = None,
    ) -> list[QepCandidate]:
        """The enumerated QEP space of one query instance.

        With a governance plane, ``principal`` scopes the active policy
        rules: the returned space contains only plans the caller may
        execute (an inadmissible query raises
        :class:`~repro.federation.errors.PolicyViolationError`).
        """
        self._require_template(key)
        constraint = self._constraint_for(key, principal)
        _request, candidates = self.engine.candidates_for(
            key, params, stats=stats, constraint=constraint
        )
        return self._checked_space(key, principal, constraint, candidates)

    def observe(
        self,
        request: ObserveRequest,
        *,
        candidate: QepCandidate | None = None,
        stats: dict[str, TableStats] | None = None,
    ) -> ObservationReport:
        """Execute one profiling run and log it into the history.

        The QEP comes from (in priority order) the explicit ``candidate``
        argument, the envelope's ``candidate_index``, or a deterministic
        rotation through the enumerated space (exploration).  ``stats``
        overrides table statistics for sampled-input profiling.
        """
        key = request.template
        self._require_template(key)
        if self._durability is not None:
            self._durability.ensure_ready()
        constraint = self._constraint_for(key, request.principal)
        if (
            constraint is not None
            and candidate is not None
            and not constraint.permits(candidate.execution.site)
        ):
            # An explicitly supplied QEP bypasses the filtered
            # enumeration, so it is checked here instead.
            self._deny(
                key,
                request.principal,
                constraint.rule_ids,
                f"candidate executes at {candidate.execution.site!r}, which "
                f"policy forbids for this principal",
            )
        rotation = None
        with self._tick_scope(key, request.tick):
            tick = self._resolve_tick(request.tick)
            if candidate is None:
                _request, space = self.engine.candidates_for(
                    key, request.params, stats=stats, constraint=constraint
                )
                self._checked_space(key, request.principal, constraint, space)
                if request.candidate_index is not None:
                    if request.candidate_index >= len(space):
                        raise EnvelopeError(
                            f"candidate_index {request.candidate_index} out of range "
                            f"for a {len(space)}-candidate QEP space",
                            template=key,
                        )
                    candidate = space[request.candidate_index]
                else:
                    with self._lock:
                        index = self._rotation.get(key, 0)
                        rotation = self._rotation[key] = index + 1
                    candidate = space[index % len(space)]
            execution = self.engine.observe(
                key, request.params, candidate, tick, stats=stats
            )
            history = self.engine.history(key)
            size, version = history.size, history.version
            if self._durability is not None:
                self._journal_row(key, tick, history, rotation)
        costs = Executor.costs_of(execution.metrics)
        self._audit_note(
            "observe",
            template=key,
            principal=request.principal,
            tick=tick,
            detail=(
                f"ran {candidate.execution.engine}/{candidate.execution.site}"
            ),
        )
        return ObservationReport(
            template=key,
            tick=tick,
            candidate=candidate,
            measured={metric: costs[metric] for metric in history.metric_names},
            history_size=size,
            history_version=version,
        )

    # Submission -----------------------------------------------------------

    def submit(self, request: SubmitRequest) -> SubmissionReport:
        """The full Figure 1 pipeline for one submission envelope."""
        return self._submit(request)

    def submit_many(
        self, requests, *, execute: bool = True
    ) -> BatchReport:
        """Batch submission through a transient pinned session.

        All requests must target one template; see
        :meth:`GatewaySession.submit_many` for the pinning semantics.
        """
        items = list(requests)
        if not items:
            raise EnvelopeError("submit_many() needs at least one request")
        with self.session(items[0].template) as session:
            return session.submit_many(items, execute=execute)

    def session(self, key: str) -> GatewaySession:
        """Open a pinned-snapshot session for one template."""
        return GatewaySession(self, key)

    # Ingest (batched front door) -------------------------------------------

    def ingest(
        self,
        request: SubmitRequest | ObserveRequest | BatchObserveRequest,
    ) -> IngestTicket | list[IngestTicket]:
        """Admit a request into the batched front door.

        Returns immediately with an :class:`IngestTicket` (a list of
        them for a :class:`BatchObserveRequest`, one per row); the work
        runs when a flush fires — at the configured size/staleness
        watermarks or an explicit :meth:`drain`.  Backpressure at a full
        queue follows ``config.ingest_overflow``: a typed
        :class:`~repro.federation.errors.IngestOverflowError` or a
        blocking wait, never a silent drop.  Drained batches are
        bitwise-identical to the same requests replayed through
        :meth:`submit`/:meth:`observe` (see
        :mod:`repro.federation.frontdoor`).
        """
        return self._door().ingest(request)

    def ingest_iter(self, requests):
        """Admit an iterable of envelopes, yielding reports as they land.

        Reports come back in admission order, but *streamed*: a report
        yields as soon as its flush segment executes — under watermark
        flushes (or ``ingest_segment_max``) early results arrive while
        later requests are still being admitted.  After the last
        admission a :meth:`drain` flushes the tail.  A failed item
        raises its typed error from the generator at its position,
        exactly where the sequential single-call surface would have
        raised it.
        """
        door = self._door()
        pending: deque[IngestTicket] = deque()
        for request in requests:
            admitted = door.ingest(request)
            if isinstance(admitted, list):
                pending.extend(admitted)
            else:
                pending.append(admitted)
            while pending and pending[0].done:
                yield pending.popleft().result()
        if pending:
            door.drain()
        while pending:
            ticket = pending.popleft()
            ticket.wait()
            yield ticket.result()

    async def ingest_async(self, request):
        """Admit one envelope from a coroutine and await its report.

        The awaitable counterpart of :meth:`ingest` + ``ticket.result()``:
        admission runs on the front door's single admission thread (it
        may block on backpressure or inline-run a flush, never on the
        event loop) and resolution is bridged back with a
        ``call_soon_threadsafe`` done-callback — one waiter task, not
        one blocked thread, per pending request.  Returns the report (a
        list for a :class:`BatchObserveRequest`) or raises the item's
        typed error.  Pair ``asyncio.create_task``-ed calls with
        :meth:`drain_async` to flush them (see
        :mod:`repro.federation.frontdoor`).
        """
        return await self._door().ingest_async(request)

    async def drain_async(self) -> IngestBatch:
        """Awaitable :meth:`drain`: flushes everything already admitted
        (including by ``ingest_async`` tasks created just before this
        call) without blocking the event loop."""
        # Yield once before looking for the door: ``create_task``-ed
        # ingest_async calls made just before this call take their
        # first step here — which is what lazily *creates* the door and
        # hands their admissions to the admission thread.  Checking
        # first would see no door, drain nothing, and leave those tasks
        # waiting on a flush that never comes.
        await asyncio.sleep(0)
        door = self._front_door
        if door is None:
            return self.drain()
        return await door.drain_async()

    def drain(self) -> IngestBatch:
        """Flush every admitted-but-pending request and return the
        batch.  Idempotent: draining an idle or closed door returns an
        empty batch."""
        door = self._front_door
        if door is None:
            with self._lock:
                door = self._front_door
        if door is None:
            return IngestBatch(
                seq=0, trigger="drain", templates=(), submits=0,
                observes=0, fit_rounds=0, reports=(), errors=(),
            )
        return door.drain()

    def _door(self) -> FrontDoor:
        with self._lock:
            if self._closed:
                # Without this gate, a post-close ingest would lazily
                # build a *fresh* door and silently accept work the dead
                # serving layer can never flush.
                raise SessionStateError(
                    "gateway is closed; no further requests can be admitted",
                    phase="ingest",
                )
            if self._durability is not None:
                self._durability.ensure_ready()
            if self._front_door is None:
                self._front_door = FrontDoor(self)
            return self._front_door

    def _prefit_for_flush(self, keys: list[str]) -> bool:
        """Refit a flush segment's stale submit templates in one
        coalesced ``refresh_batch`` (one ``fit_many`` RPC per shard on
        the sharded backend).  Skips templates the sequential oracle
        would not fit either (empty history, already fresh); returns
        whether a fit round was actually issued.  Per-template "cannot
        fit yet" failures are left for the item's own execution to
        surface as the typed error; infrastructure failures propagate.
        """
        serving = self.engine.serving
        stale = [
            key
            for key in keys
            if self.engine.history(key).size > 0 and serving.is_stale(key)
        ]
        if not stale:
            return False
        serving.refresh_batch(stale)
        return True

    def ingest_stats(self) -> IngestStats | None:
        """Front-door admission counters; ``None`` until first use."""
        door = self._front_door
        return None if door is None else door.stats()

    def _pin(self, key: str) -> tuple[FittedCostModel, int]:
        """Fit-or-fetch the template's snapshot plus its history version,
        atomically with respect to appends on that template."""
        self._require_template(key)
        serving = self.engine.serving
        with serving.template_lock(key):
            try:
                model = serving.model(key)
            except ShardedServingError:
                raise  # backend infrastructure broke; not a history problem
            except EstimationError as error:
                raise InsufficientHistoryError(str(error), template=key) from error
            return model, self.engine.history(key).version

    def _submit(
        self,
        request: SubmitRequest,
        *,
        cost_model: FittedCostModel | None = None,
        enumerations: dict | None = None,
        pinned: bool = False,
        execute: bool = True,
    ) -> SubmissionReport:
        key = request.template
        self._require_template(key)
        if self._durability is not None:
            self._durability.ensure_ready()
        constraint = self._constraint_for(key, request.principal)
        engine = self.engine
        template = engine.template(key)
        sql = template.render(request.params)
        candidates = features_matrix = None
        if enumerations is None:
            query_request = engine.interface.receive(sql, request.policy)
            if constraint is not None:
                # Constrained requests pre-enumerate here (the engine room
                # stays governance-blind); the permissive path leaves
                # enumeration to submit_request, exactly as before.
                candidates = engine.enumerator.enumerate(
                    key,
                    query_request.plan,
                    engine.stats,
                    template.tables,
                    constraint=constraint,
                )
                self._checked_space(key, request.principal, constraint, candidates)
        else:
            # Cache key carries the constraint signature: one pinned
            # session can serve principals with different admissible
            # spaces without ever leaking a filtered space between them.
            cache_key = (sql, None if constraint is None else constraint.signature)
            cached = enumerations.get(cache_key)
            if cached is None:
                query_request = engine.interface.receive(sql, request.policy)
                candidates = engine.enumerator.enumerate(
                    key,
                    query_request.plan,
                    engine.stats,
                    template.tables,
                    constraint=constraint,
                )
                self._checked_space(key, request.principal, constraint, candidates)
                features_matrix = MultiObjectiveOptimizer.candidate_matrix(
                    candidates, cost_model
                )
                enumerations[cache_key] = (query_request, candidates, features_matrix)
            else:
                base_request, candidates, features_matrix = cached
                query_request = replace(base_request, policy=request.policy)
        with self._tick_scope(key, request.tick):
            tick = self._resolve_tick(request.tick)
            try:
                if cost_model is None:
                    if engine.history(key).size == 0:
                        raise InsufficientHistoryError(
                            f"no execution history for {key!r}; run observe() a "
                            "few times first",
                            template=key,
                        )
                    # Fetch the serving snapshot here (not inside the engine)
                    # so a too-short history surfaces as the typed
                    # InsufficientHistoryError; same model, same locks.
                    cost_model, _version = self._pin(key)
                result = engine.submit_request(
                    key,
                    query_request,
                    tick,
                    cost_model=cost_model,
                    candidates=candidates,
                    features_matrix=features_matrix,
                    execute=execute,
                )
            except Exception:
                # The tick was already consumed; journal that, or a
                # recovered gateway's counter would drift from the
                # uninterrupted one's.
                self._journal_tick()
                raise
            if self._durability is not None:
                if result.execution is not None:
                    self._journal_row(key, tick, engine.history(key), None)
                else:
                    self._journal_tick()
        metrics = request.policy.metrics
        predicted = dict(zip(metrics, result.chosen.objectives))
        measured = errors = None
        if result.execution is not None:
            costs = Executor.costs_of(result.execution.metrics)
            measured = {metric: costs[metric] for metric in metrics}
            errors = result.prediction_error(metrics)
        chosen = result.chosen_candidate
        self._audit_note(
            "submit",
            template=key,
            principal=request.principal,
            tick=tick,
            detail=(
                f"chose {chosen.execution.engine}/{chosen.execution.site}"
                + ("" if execute else " [plan-only]")
            ),
        )
        return SubmissionReport(
            template=key,
            tick=tick,
            params=dict(request.params),
            policy=request.policy,
            candidate_count=result.candidate_count,
            chosen=result.chosen_candidate,
            predicted_costs=predicted,
            measured_costs=measured,
            errors=errors,
            cost_model=result.cost_model,
            pinned=pinned,
            result=result,
            moqp_algorithm=result.moqp_algorithm,
            moqp_exact_fallback=result.moqp_exact_fallback,
        )

    # Models ---------------------------------------------------------------

    def refresh(
        self, keys: list[str] | None = None, parallel: bool = True
    ) -> dict[str, FittedCostModel]:
        """Prefit stale templates for a burst (serving-layer refresh)."""
        if keys is not None:
            for key in keys:
                self._require_template(key)
        return self.engine.refresh_models(keys, parallel=parallel)

    def model(self, key: str) -> FittedCostModel:
        """The template's current fitted model (refit only when stale)."""
        return self._pin(key)[0]

    # Introspection --------------------------------------------------------

    @property
    def strategy(self) -> EstimationStrategy:
        return self._strategy

    @property
    def serving_stats(self) -> ServiceStats:
        """Serving-layer counters (fits, snapshot hits, bursts, ...)."""
        return self.engine.serving.stats

    def serving_report(self) -> ServingReport:
        """Typed serving-layer report: which backend is live, how many
        worker processes it runs (0 for in-process), how many crashed
        workers were respawned, and the aggregate counters."""
        serving = self.engine.serving
        return ServingReport(
            backend=self.config.serving_backend,
            workers=getattr(serving, "workers", 0),
            respawns=getattr(serving, "respawns", 0),
            stats=serving.stats,
            ingest=self.ingest_stats(),
        )

    @property
    def engine_cache_stats(self) -> CacheStats | None:
        """Estimation-engine cache counters, when the backend has one."""
        return self.serving_stats.engine_cache

    # Elastic topology -----------------------------------------------------

    def topology_report(self) -> TopologyReport:
        """Typed elastic-topology report: routing-table version, applied
        migrations, per-shard load accounting, last rebalance cycle.
        For the threaded backend the pool fields are zero/empty."""
        serving = self.engine.serving
        if not hasattr(serving, "shard_loads"):
            return TopologyReport(
                backend=self.config.serving_backend,
                workers=0,
                route_version=0,
                migrations=0,
                respawns=0,
            )
        return TopologyReport(
            backend=self.config.serving_backend,
            workers=serving.workers,
            route_version=serving.route_version,
            migrations=serving.migrations,
            respawns=serving.respawns,
            shards=tuple(serving.shard_loads()),
            last_cycle=self._last_rebalance,
        )

    def rebalance(self) -> TopologyReport:
        """Run one rebalance control cycle now and report the topology.

        Uses the configured policy (``FederationConfig(rebalance=...)``)
        or a default-knobbed one on first call; requires the sharded
        backend.  Safe to call concurrently with traffic — migrations
        hold the per-template locks, so a mid-burst move is bitwise
        invisible to predictions.
        """
        serving = self.engine.serving
        if not hasattr(serving, "rebalance"):
            raise GatewayConfigError(
                "rebalance requires serving_backend='sharded': the "
                f"{self.config.serving_backend!r} backend has no shards "
                "to balance"
            )
        with self._lock:
            if self._rebalance_policy is None:
                self._rebalance_policy = RebalancePolicy()
            policy = self._rebalance_policy
        self._last_rebalance = serving.rebalance(policy)
        self._audit_note("rebalance", detail=self._last_rebalance.describe())
        return self.topology_report()

    def _rebalance_ticker(self, cadence: float) -> None:
        """Daemon control loop: one policy cycle every
        ``cadence_seconds`` of wall time, flush traffic or not (ROADMAP
        2a — an idle gateway must still shed a hot shard).  Exits when
        close() sets the stop event; a cycle racing shutdown surfaces as
        ShardedServingError and ends the loop the same way."""
        policy = self._rebalance_policy
        while not self._rebalance_stop.wait(cadence):
            with self._lock:
                if self._closed:
                    return
            try:
                outcome = self.engine.serving.rebalance(policy)
            except ShardedServingError:
                return
            self._last_rebalance = outcome
            self._audit_note("rebalance", detail=outcome.describe())

    def _auto_rebalance(self) -> None:
        """Front-door hook: one policy cycle every ``cadence_flushes``
        flushes, when a rebalance config is present (no-op otherwise)."""
        policy = self._rebalance_policy
        if policy is None or not hasattr(self.engine.serving, "rebalance"):
            return
        with self._lock:
            if self._closed:
                return
            self._flushes_since_rebalance += 1
            if self._flushes_since_rebalance < policy.config.cadence_flushes:
                return
            self._flushes_since_rebalance = 0
        try:
            self._last_rebalance = self.engine.serving.rebalance(policy)
        except ShardedServingError:
            # close() raced the cycle; the final flush already ran, so
            # losing one advisory rebalance is harmless.
            return
        self._audit_note("rebalance", detail=self._last_rebalance.describe())

    # Lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release serving-layer resources (shard worker processes for
        the ``"sharded"`` backend; a no-op for the in-process one).

        Idempotent and ordered: the closed flag flips first (under the
        gateway lock, so no concurrent ``ingest`` can lazily build a
        fresh door afterwards — it gets a typed
        :class:`~repro.federation.errors.SessionStateError` instead),
        then the front door closes — which waits out any in-flight
        ``drain`` and flushes admitted-but-pending requests while the
        serving layer is still alive, never dropping them — and only
        then does the serving layer shut down.  Concurrent and repeat
        ``close()`` calls serialise on a dedicated mutex, so a second
        closer can never tear the serving layer down under the first
        one's final flush.  ``drain()`` keeps working after close,
        returning empty batches."""
        with self._close_lock:
            with self._lock:
                self._closed = True
                door = self._front_door
            if door is not None:
                door.close()
            # The ticker stops after the door's final flush (so that
            # flush still rebalances if it crossed the cadence) and
            # before the serving layer dies under a mid-cycle move.
            self._rebalance_stop.set()
            if self._rebalance_thread is not None:
                self._rebalance_thread.join(timeout=5.0)
                self._rebalance_thread = None
            self.engine.serving.close()
            if self._durability is not None:
                # Last: every event the shutdown emitted (final flush
                # audit, rebalance outcome) is already journaled; the
                # close is one final sync.
                self._durability.close()

    def __enter__(self) -> "FederationGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FederationGateway(strategy={self.config.strategy!r}, "
            f"templates={len(self._keys)})"
        )
