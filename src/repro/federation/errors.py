"""Structured error taxonomy of the federation gateway.

Every gateway failure is a :class:`FederationError` carrying two machine-
readable fields alongside the human message:

* ``template`` — the query-template key the failure concerns (``None``
  for configuration-level failures that predate any template), and
* ``phase`` — which stage of the Figure 1 pipeline rejected the call:
  ``configure``, ``register``, ``validate``, ``ingest``, ``govern``,
  ``estimate``, ``optimize``, ``execute`` or ``session``.

Callers that only know the old exception hierarchy keep working: the
subtypes dual-inherit from the library-wide classes they replace
(:class:`~repro.common.errors.ValidationError`,
:class:`~repro.common.errors.EstimationError`), so an existing
``except ValidationError`` still catches a :class:`UnknownTemplateError`
— but gateway-aware callers can now branch on type, template and phase
instead of parsing message strings.
"""

from __future__ import annotations

from repro.common.errors import EstimationError, ReproError, ValidationError

#: The pipeline stages a gateway error can be attributed to.
PHASES = (
    "configure",
    "register",
    "validate",
    "ingest",
    "govern",
    "estimate",
    "optimize",
    "execute",
    "session",
    "durability",
)


class FederationError(ReproError):
    """Base class of every error raised by the federation gateway."""

    #: Default pipeline phase; subclasses override, instances may too.
    phase: str = "validate"

    def __init__(
        self,
        message: str,
        *,
        template: str | None = None,
        phase: str | None = None,
    ):
        super().__init__(message)
        self.message = message
        self.template = template
        if phase is not None:
            if phase not in PHASES:
                raise ValueError(f"unknown gateway phase {phase!r}")
            self.phase = phase

    def __str__(self) -> str:
        context = [f"phase={self.phase}"]
        if self.template is not None:
            context.append(f"template={self.template!r}")
        return f"{self.message} [{', '.join(context)}]"


class GatewayConfigError(FederationError, ValidationError):
    """A :class:`~repro.federation.config.FederationConfig` field failed
    a precondition check (non-positive capacity/TTL/worker counts, an
    out-of-range threshold, an unknown optimizer algorithm, ...)."""

    phase = "configure"


class UnknownStrategyError(GatewayConfigError):
    """The configured estimation backend name is not registered."""

    def __init__(
        self,
        name: str,
        available: tuple[str, ...],
        *,
        template: str | None = None,
    ):
        listing = ", ".join(available) or "<none>"
        super().__init__(
            f"unknown estimation backend {name!r}; registered: {listing}",
            template=template,
        )
        self.name = name
        self.available = available


class UnknownServingBackendError(GatewayConfigError):
    """The configured serving backend name is not registered."""

    def __init__(
        self,
        name: str,
        available: tuple[str, ...],
        *,
        template: str | None = None,
    ):
        listing = ", ".join(available) or "<none>"
        super().__init__(
            f"unknown serving backend {name!r}; registered: {listing}",
            template=template,
        )
        self.name = name
        self.available = available


class DuplicateTemplateError(FederationError, ValidationError):
    """A template key was registered twice on the same gateway."""

    phase = "register"


class UnknownTemplateError(FederationError, ValidationError):
    """A request referenced a template key the gateway never saw."""

    phase = "validate"


class InsufficientHistoryError(FederationError, EstimationError):
    """The template's execution history is too short to fit a model."""

    phase = "estimate"


class SessionStateError(FederationError):
    """A session was used after :meth:`GatewaySession.close` (or is
    otherwise in the wrong lifecycle state for the call)."""

    phase = "session"


class DurabilityError(FederationError):
    """The durability subsystem refused to proceed: a corrupted (not
    merely torn) WAL or checkpoint record, a journal that does not match
    the live gateway (wrong registrations, wrong backend), or traffic
    offered to a gateway whose existing journal has not been
    :meth:`~repro.federation.gateway.FederationGateway.recover`-ed yet.
    Never raised for a clean torn tail — those are crash artifacts and
    recovery truncates them silently (reporting the dropped bytes)."""

    phase = "durability"


class EnvelopeError(FederationError, ValidationError):
    """A request envelope failed validation before entering the pipeline."""

    phase = "validate"


class PolicyViolationError(FederationError, ValidationError):
    """The governance plane rejected a request before planning.

    Raised when a submission has zero admissible plans under the active
    :class:`~repro.governance.policy.DataPolicy` rules (a denied dataset,
    a restricted site the enumeration cannot satisfy, conflicting
    restrictions) or when ``require_identity=True`` and the envelope
    carries no :class:`~repro.governance.identity.Principal`.  Carries
    the ids of the rules that caused the denial and the subject the
    request ran on behalf of, so a denial is diagnosable (and auditable)
    without parsing the message.
    """

    phase = "govern"

    def __init__(
        self,
        message: str,
        *,
        template: str | None = None,
        rule_ids: tuple[str, ...] = (),
        subject: str | None = None,
    ):
        super().__init__(message, template=template)
        self.rule_ids = tuple(rule_ids)
        self.subject = subject


class IngestAbortedError(FederationError):
    """An infrastructure failure aborted a front-door flush mid-run.

    Resolved onto every ticket that was admitted into the flush but had
    not executed when the failure struck (items that already ran keep
    their reports — streaming resolution is per segment, so earlier
    segments' outcomes survive the abort).  The underlying failure is
    chained as ``__cause__``; the flush's caller sees that original
    exception re-raised, while ticket waiters see this typed error.
    """

    phase = "ingest"


class IngestOverflowError(FederationError, ValidationError):
    """The front door's bounded ingest queue rejected an admission.

    Raised in ``ingest_overflow="reject"`` mode when admitting the
    request would push the queue past ``ingest_queue_depth`` (and in
    both modes for a single batch larger than the whole queue).  Carries
    the template key and the depth the queue was bounded at, so a client
    can shed load per tenant instead of guessing from a message string.
    """

    phase = "ingest"

    def __init__(
        self,
        message: str,
        *,
        template: str | None = None,
        queue_depth: int | None = None,
    ):
        super().__init__(message, template=template)
        self.queue_depth = queue_depth
