"""Typed request/response envelopes of the gateway API.

Requests (:class:`SubmitRequest`, :class:`ObserveRequest`) are small
validated value objects — the gateway takes an envelope, not a positional
argument soup, so call sites read the same everywhere (examples,
experiments, workloads, CLI) and new fields can be added without breaking
them.

Responses wrap the engine room's raw outcome
(:class:`~repro.ires.platform.SubmissionResult`) in a stable reporting
surface: :class:`SubmissionReport` for one submission,
:class:`BatchReport` for a pinned-session batch,
:class:`ObservationReport` for a profiling execution.  Reports expose the
same accessors the old ``SubmissionResult`` did (``predicted``,
``pareto_set``, ``execution``, ``prediction_error``), so code migrating
to the gateway keeps its reading side unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.simulate import QueryExecution
from repro.federation.errors import EnvelopeError, FederationError
from repro.governance.audit import AuditRecord
from repro.governance.identity import Principal
from repro.ires.enumerator import QepCandidate
from repro.ires.modelling import FittedCostModel
from repro.ires.platform import SubmissionResult
from repro.ires.policy import UserPolicy
from repro.moqp.problem import Candidate
from repro.serving.service import ServiceStats
from repro.serving.topology import RebalanceOutcome, ShardLoad


def _checked_template(template: str) -> None:
    if not template or not isinstance(template, str):
        raise EnvelopeError(
            f"template must be a non-empty key string, got {template!r}"
        )


def _checked_principal(principal, template: str) -> None:
    if principal is not None and not isinstance(principal, Principal):
        raise EnvelopeError(
            f"principal must be a Principal or None, got "
            f"{type(principal).__name__}",
            template=template,
        )


@dataclass(frozen=True)
class SubmitRequest:
    """One query submission: template key, parameters, user policy.

    ``tick`` is optional — the gateway assigns the next logical tick when
    it is ``None`` (explicit ticks exist for replay/oracle scripts).
    """

    template: str
    params: dict = field(default_factory=dict)
    policy: UserPolicy = field(default_factory=UserPolicy)
    tick: int | None = None
    #: Tenant identity the submission runs on behalf of; ``None`` is an
    #: anonymous request (denied when the gateway requires identity).
    principal: Principal | None = None

    def __post_init__(self):
        _checked_template(self.template)
        if self.tick is not None and self.tick < 0:
            raise EnvelopeError(
                f"tick must be >= 0, got {self.tick}", template=self.template
            )
        _checked_principal(self.principal, self.template)


@dataclass(frozen=True)
class ObserveRequest:
    """One profiling execution: run a QEP candidate and log the outcome.

    ``candidate_index`` picks from the enumerated QEP space; ``None``
    lets the gateway rotate through the space deterministically (the
    exploration a production IReS performs during profiling runs).
    """

    template: str
    params: dict = field(default_factory=dict)
    candidate_index: int | None = None
    tick: int | None = None
    #: Tenant identity the profiling run is performed on behalf of.
    principal: Principal | None = None

    def __post_init__(self):
        _checked_template(self.template)
        if self.candidate_index is not None and self.candidate_index < 0:
            raise EnvelopeError(
                f"candidate_index must be >= 0, got {self.candidate_index}",
                template=self.template,
            )
        if self.tick is not None and self.tick < 0:
            raise EnvelopeError(
                f"tick must be >= 0, got {self.tick}", template=self.template
            )
        _checked_principal(self.principal, self.template)


@dataclass(frozen=True)
class BatchObserveRequest:
    """A pre-coalesced batch of profiling executions for one template.

    The rows are applied in order under one template-lock scope, with
    the query parsed and the QEP space enumerated once per distinct
    query instance instead of once per row — the envelope a tenant that
    already aggregates its execution log should send instead of one
    :class:`ObserveRequest` per row.
    """

    template: str
    requests: tuple[ObserveRequest, ...]

    def __post_init__(self):
        _checked_template(self.template)
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise EnvelopeError(
                "BatchObserveRequest needs at least one row",
                template=self.template,
            )
        for request in self.requests:
            if not isinstance(request, ObserveRequest):
                raise EnvelopeError(
                    f"batch rows must be ObserveRequest, got {type(request).__name__}",
                    template=self.template,
                )
            if request.template != self.template:
                raise EnvelopeError(
                    f"batch targets {self.template!r} but contains a row for "
                    f"{request.template!r}",
                    template=self.template,
                )

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class ObservationReport:
    """Outcome of one :class:`ObserveRequest`."""

    template: str
    tick: int
    candidate: QepCandidate
    #: Measured cost vector, keyed by the history's tracked metrics.
    measured: dict[str, float]
    history_size: int
    history_version: int


@dataclass(frozen=True)
class SubmissionReport:
    """Everything the gateway decided and observed for one submission.

    A typed superset of the old ``SubmissionResult`` reading surface; the
    raw engine-room outcome stays available as :attr:`result`.
    """

    template: str
    tick: int
    params: dict
    policy: UserPolicy
    #: Size of the enumerated QEP space.
    candidate_count: int
    #: The chosen equivalent QEP (Algorithm 2's pick).
    chosen: QepCandidate
    #: Predicted cost per policy metric for the chosen QEP.
    predicted_costs: dict[str, float]
    #: Measured costs of the actual run; ``None`` for plan-only calls.
    measured_costs: dict[str, float] | None
    #: Per-metric relative prediction error (inf for a nonzero prediction
    #: of a zero measurement); ``None`` for plan-only calls.
    errors: dict[str, float] | None
    #: The fitted model that costed the QEP space (with provenance).
    cost_model: FittedCostModel
    #: True when the model came from a pinned session snapshot.
    pinned: bool
    #: Raw engine-room outcome (Pareto set, execution record, ...).
    result: SubmissionResult
    #: MOQP algorithm that actually computed the Pareto set ("exact",
    #: "nsga2", "nsga-g").  A configured "exact" search that overflowed
    #: ``exact_limit`` reports the NSGA-II it degraded to — the fallback
    #: used to be silent and unobservable.
    moqp_algorithm: str = "unknown"
    #: True when that degradation happened for this submission.
    moqp_exact_fallback: bool = False

    # Compatibility accessors (the old SubmissionResult reading surface).

    @property
    def predicted(self) -> tuple[float, ...]:
        """Predicted cost vector in policy-metric order."""
        return self.result.chosen.objectives

    @property
    def pareto_set(self) -> list[Candidate]:
        return self.result.pareto_set

    @property
    def chosen_candidate(self) -> QepCandidate:
        return self.chosen

    @property
    def execution(self) -> QueryExecution | None:
        return self.result.execution

    @property
    def executed(self) -> bool:
        return self.result.execution is not None

    def prediction_error(self, metrics: tuple[str, ...]) -> dict[str, float]:
        """Relative |predicted - measured| / |measured| per metric."""
        return self.result.prediction_error(metrics)

    def describe(self) -> str:
        costs = ", ".join(
            f"{metric}={value:.4g}" for metric, value in self.predicted_costs.items()
        )
        return f"{self.chosen.describe()} <- {costs}"


@dataclass(frozen=True)
class IngestStats:
    """A consistent snapshot of the front door's admission counters.

    ``admitted`` counts individual items (a
    :class:`BatchObserveRequest` contributes one per row); ``rejected``
    counts items turned away by the overflow policy and ``blocked``
    counts admissions that had to wait (or flush) for queue space.
    Flushes are broken down by what triggered them — the size watermark,
    the staleness watermark, an explicit ``drain()``/``close()``, or a
    blocked admission flushing its own way out of a full queue
    (``backpressure_flushes``).  ``segments`` counts executed flush
    segments and ``streamed_items`` the items whose tickets resolved
    *before* their flush finished (per-segment streaming; items in a
    flush's final segment resolve at flush end and are not counted).
    """

    admitted: int
    submits: int
    observes: int
    rejected: int
    blocked: int
    flushes: int
    size_flushes: int
    interval_flushes: int
    drain_flushes: int
    #: Items carried by all flushes so far, and the largest single flush.
    items_flushed: int
    max_batch: int
    #: Coalesced fit rounds executed (each is one ``refresh_batch``
    #: spanning every template whose next item was a submission).
    fit_rounds: int
    #: High-water mark and current size of the pending queue.
    peak_depth: int
    pending: int
    #: Self-help flushes run by a blocked admission at a full queue.
    backpressure_flushes: int = 0
    #: Executed flush segments, and items streamed out mid-flush.
    segments: int = 0
    streamed_items: int = 0

    def describe(self) -> str:
        return (
            f"admitted={self.admitted} (submits={self.submits}, "
            f"observes={self.observes}), rejected={self.rejected}, "
            f"blocked={self.blocked}, flushes={self.flushes} "
            f"(size={self.size_flushes}, interval={self.interval_flushes}, "
            f"drain={self.drain_flushes}, "
            f"backpressure={self.backpressure_flushes}), "
            f"segments={self.segments}, streamed={self.streamed_items}, "
            f"fit_rounds={self.fit_rounds}, "
            f"max_batch={self.max_batch}, peak_depth={self.peak_depth}, "
            f"pending={self.pending}"
        )


@dataclass(frozen=True)
class IngestBatch:
    """One coalesced flush of admitted front-door traffic.

    ``reports`` and ``errors`` are aligned with the flushed items in
    admission order: exactly one of the two is non-``None`` per slot
    (per-item error isolation — one tenant's failure never voids the
    rest of the batch).  Auto-triggered flushes resolve their tickets
    and discard the batch object; :meth:`FederationGateway.drain`
    returns the final one.
    """

    seq: int
    #: What started the flush: "size", "interval", "drain" or
    #: "backpressure" (a blocked admission flushing a full queue).
    trigger: str
    #: Template keys the batch touched, sorted.
    templates: tuple[str, ...]
    submits: int
    observes: int
    #: Coalesced fit rounds this flush needed (1 for observe-then-submit
    #: traffic; more only when submits interleave with later observes on
    #: the same template).
    fit_rounds: int
    reports: tuple[SubmissionReport | ObservationReport | None, ...]
    errors: tuple[FederationError | None, ...]
    #: Executed segments (each resolved its tickets as it finished —
    #: streaming granularity, bounded by ``ingest_segment_max``).
    segments: int = 0

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def failed(self) -> int:
        return sum(1 for error in self.errors if error is not None)


@dataclass(frozen=True)
class ServingReport:
    """Serving-layer status: live backend, worker pool, counters.

    ``workers`` is 0 for the in-process ``"threaded"`` backend;
    ``respawns`` counts crashed shard workers that were replaced (each
    replay refits from the authoritative history, so a respawn never
    changes predictions — it only costs one warm-up fit).
    """

    backend: str
    workers: int
    respawns: int
    stats: ServiceStats
    #: Front-door admission counters; ``None`` until the gateway's
    #: ``ingest()`` path has been used.
    ingest: IngestStats | None = None

    def describe(self) -> str:
        pool = f"{self.workers} worker processes" if self.workers else "in-process"
        s = self.stats
        return (
            f"{self.backend} ({pool}): templates={s.templates}, "
            f"fits={s.fits}, snapshot_hits={s.snapshot_hits}, "
            f"observations={s.observations}, respawns={self.respawns}"
        )


@dataclass(frozen=True)
class TopologyReport:
    """Elastic shard topology status: routes, load, last control cycle.

    Produced by ``gateway.topology_report()`` (and returned from
    ``gateway.rebalance()``).  ``route_version`` is the monotone counter
    bumped by every route flip; ``shards`` carries the per-shard load
    accounting (routed templates, pending-row backlog, RPC queue depth,
    fit wall-time EWMA) the rebalance policy reads.  For the threaded
    backend every pool field is zero/empty — there is no topology to
    report, only the fact that placement is not in play.
    """

    backend: str
    workers: int
    route_version: int
    migrations: int
    respawns: int
    shards: tuple[ShardLoad, ...] = ()
    #: Outcome of the most recent rebalance cycle; ``None`` before one runs.
    last_cycle: RebalanceOutcome | None = None

    def describe(self) -> str:
        if not self.shards:
            return f"{self.backend}: no shard topology (in-process serving)"
        lines = [
            f"{self.backend}: {self.workers} shards, route v{self.route_version}, "
            f"migrations={self.migrations}, respawns={self.respawns}"
        ]
        for shard in self.shards:
            ewma = (
                "-"
                if shard.fit_seconds_ewma is None
                else f"{shard.fit_seconds_ewma * 1000.0:.2f}ms"
            )
            lines.append(
                f"  shard {shard.index}: templates={len(shard.routed)}, "
                f"backlog={shard.backlog}, queue={shard.queue_depth}, "
                f"fit_ewma={ewma}"
            )
        if self.last_cycle is not None:
            lines.append(f"  last cycle: {self.last_cycle.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class AuditReport:
    """Audit-log status: chain head, verification, traffic breakdown.

    Produced by ``gateway.audit_report()``.  ``chain_valid`` is a live
    end-to-end :func:`~repro.governance.audit.verify_chain` run, not a
    cached flag; ``head_hash`` lets an external verifier anchor its own
    copy of the chain.  When auditing is disabled
    (``GovernanceConfig(audit=False)`` or no governance at all) the
    report says so instead of pretending an empty log was verified.
    """

    #: Whether the gateway keeps an audit log at all.
    enabled: bool
    #: Records in the chain.
    length: int
    #: Hash of the newest record (genesis when empty or disabled).
    head_hash: str
    #: Result of verifying the whole chain now.
    chain_valid: bool
    #: Traffic breakdown by record kind.
    submits: int
    observes: int
    flushes: int
    rebalances: int
    denials: int
    #: The newest records (up to the ``limit`` passed to
    #: ``audit_report``), oldest first; empty when auditing is off.
    records: tuple[AuditRecord, ...] = ()

    def describe(self) -> str:
        if not self.enabled:
            return "audit: disabled"
        verdict = "intact" if self.chain_valid else "TAMPERED"
        return (
            f"audit: {self.length} records ({verdict}), "
            f"submits={self.submits}, observes={self.observes}, "
            f"flushes={self.flushes}, rebalances={self.rebalances}, "
            f"denials={self.denials}, head={self.head_hash[:12]}…"
        )


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one ``gateway.recover()`` replay.

    ``recovered`` is False when the durability directory held no prior
    state (a fresh journal — nothing to replay).  ``torn_bytes`` counts
    WAL tail bytes dropped as crash artifacts (a partial final write);
    anything worse than a torn tail raises
    :class:`~repro.federation.errors.DurabilityError` instead of
    appearing here.  ``warmed_fits`` counts templates re-fitted because
    their snapshot was fresh at the crash — replaying them keeps
    post-recovery fit/snapshot-hit behaviour identical to a gateway
    that never crashed.
    """

    recovered: bool
    #: LSN the checkpoint had compacted through (0 without a checkpoint).
    checkpoint_lsn: int = 0
    #: WAL segments scanned past the checkpoint.
    segments: int = 0
    #: WAL records replayed (all types).
    records: int = 0
    #: History rows restored across all templates.
    rows: int = 0
    #: Template registrations validated against the live gateway.
    registrations: int = 0
    #: Audit records restored into the hash chain.
    audit_records: int = 0
    #: Torn-tail bytes truncated as crash artifacts.
    torn_bytes: int = 0
    #: Shard routes restored (0 for the threaded backend).
    routes: int = 0
    #: Snapshots re-fitted because they were fresh at the crash.
    warmed_fits: int = 0
    #: Gateway tick counter after recovery.
    tick: int = 0

    def describe(self) -> str:
        if not self.recovered:
            return "recovery: fresh journal, nothing to replay"
        return (
            f"recovery: {self.rows} rows across {self.registrations} "
            f"templates, {self.audit_records} audit records, "
            f"{self.routes} routes, tick={self.tick}, "
            f"warmed {self.warmed_fits} snapshots, "
            f"truncated {self.torn_bytes} torn bytes"
        )


@dataclass(frozen=True)
class BatchReport:
    """Outcome of a pinned-session :meth:`submit_many` batch.

    The whole batch was planned against one pinned :attr:`cost_model`
    (and the QEP space was enumerated once per distinct query instance —
    :attr:`enumerations` counts the actual builds).
    """

    template: str
    reports: tuple[SubmissionReport, ...]
    #: The pinned snapshot every item was costed with.
    cost_model: FittedCostModel
    #: History version the snapshot was pinned at.
    pinned_version: int
    #: Distinct QEP-space enumerations the batch performed.
    enumerations: int

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __getitem__(self, index: int) -> SubmissionReport:
        return self.reports[index]

    @property
    def chosen(self) -> list[QepCandidate]:
        return [report.chosen for report in self.reports]
