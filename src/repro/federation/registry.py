"""String-keyed estimation-backend registry.

The gateway selects its estimation backend by configuration —
``FederationConfig(strategy="dream-incremental")`` — instead of callers
importing and constructing strategy classes.  A backend is a *factory*
``(FederationConfig) -> EstimationStrategy``; the factory reads whatever
fields of the config it cares about (thresholds, cache budget,
``strategy_options``) and returns a ready strategy instance.

Built-in backends:

``dream-incremental``
    The production DREAM path: per-history online engines with rank-one
    window growth, pooled in a bounded
    :class:`~repro.core.cache.ModelCache` sized by the config.
``dream-batch``
    The batch reference estimator (full refit per window size) — the
    verification oracle, selectable for A/B runs.
``bml``
    Stock IReS best-of-pool selection.  ``strategy_options
    ["window_multiple"]`` trains on the last ``k * (L + 2)``
    observations (the paper's BML_N/2N/3N baselines); omitted = the
    unlimited-history BML baseline.

Third-party backends register through :func:`register_strategy`; the
registry is process-global (names are how configs travel between
processes) and thread-safe.

The same seam selects the *serving* layer that fronts the strategy.  A
serving backend is a factory ``(FederationConfig, Modelling) ->
service``; built-ins:

``threaded``
    The in-process multi-tenant
    :class:`~repro.serving.service.EstimationService` (thread-pool
    burst refresh, GIL-bound fits).
``sharded``
    The shared-nothing
    :class:`~repro.serving.sharded.ShardedEstimationService`: templates
    hash-partitioned across ``config.shard_workers`` worker processes,
    each building its own strategy from ``config.strategy`` *by name*
    (instances never cross the process boundary).
"""

from __future__ import annotations

import threading
from typing import Callable, TYPE_CHECKING

from repro.core.cache import ModelCache
from repro.federation.errors import (
    GatewayConfigError,
    UnknownServingBackendError,
    UnknownStrategyError,
)
from repro.ires.modelling import (
    BmlStrategy,
    DreamStrategy,
    EstimationStrategy,
    Modelling,
)
from repro.ml.selection import ObservationWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.config import FederationConfig

StrategyFactory = Callable[["FederationConfig"], EstimationStrategy]
ServingFactory = Callable[["FederationConfig", Modelling], object]

_registry_lock = threading.Lock()
_STRATEGIES: dict[str, StrategyFactory] = {}
_SERVING_BACKENDS: dict[str, ServingFactory] = {}


def register_strategy(
    name: str, factory: StrategyFactory, *, replace: bool = False
) -> None:
    """Register an estimation backend under ``name``.

    ``replace=False`` (default) refuses to overwrite an existing name, so
    a typo cannot silently shadow a built-in.
    """
    if not name or not isinstance(name, str):
        raise GatewayConfigError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise GatewayConfigError(f"backend factory for {name!r} is not callable")
    with _registry_lock:
        if name in _STRATEGIES and not replace:
            raise GatewayConfigError(
                f"estimation backend {name!r} is already registered "
                "(pass replace=True to override)"
            )
        _STRATEGIES[name] = factory


def unregister_strategy(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    with _registry_lock:
        _STRATEGIES.pop(name, None)


def available_strategies() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    with _registry_lock:
        return tuple(sorted(_STRATEGIES))


def create_strategy(config: "FederationConfig") -> EstimationStrategy:
    """Instantiate the backend ``config.strategy`` names."""
    with _registry_lock:
        factory = _STRATEGIES.get(config.strategy)
    if factory is None:
        raise UnknownStrategyError(config.strategy, available_strategies())
    return factory(config)


def register_serving_backend(
    name: str, factory: ServingFactory, *, replace: bool = False
) -> None:
    """Register a serving backend under ``name`` (same rules as
    :func:`register_strategy`: non-empty name, callable factory, no
    silent overwrite)."""
    if not name or not isinstance(name, str):
        raise GatewayConfigError(
            f"serving backend name must be a non-empty string, got {name!r}"
        )
    if not callable(factory):
        raise GatewayConfigError(
            f"serving backend factory for {name!r} is not callable"
        )
    with _registry_lock:
        if name in _SERVING_BACKENDS and not replace:
            raise GatewayConfigError(
                f"serving backend {name!r} is already registered "
                "(pass replace=True to override)"
            )
        _SERVING_BACKENDS[name] = factory


def unregister_serving_backend(name: str) -> None:
    """Remove a registered serving backend (primarily for tests)."""
    with _registry_lock:
        _SERVING_BACKENDS.pop(name, None)


def available_serving_backends() -> tuple[str, ...]:
    """Registered serving backend names, sorted."""
    with _registry_lock:
        return tuple(sorted(_SERVING_BACKENDS))


def create_serving(config: "FederationConfig", modelling: Modelling):
    """Instantiate the serving layer ``config.serving_backend`` names,
    fronting ``modelling`` (the engine room's shared history registry)."""
    with _registry_lock:
        factory = _SERVING_BACKENDS.get(config.serving_backend)
    if factory is None:
        raise UnknownServingBackendError(
            config.serving_backend, available_serving_backends()
        )
    return factory(config, modelling)


# Built-in backends ---------------------------------------------------------


def _engine_cache(config: "FederationConfig") -> ModelCache:
    return ModelCache(
        capacity=config.cache_capacity, ttl_seconds=config.cache_ttl_seconds
    )


def _dream_incremental(config: "FederationConfig") -> EstimationStrategy:
    return DreamStrategy(
        r2_required=config.r2_required,
        max_window=config.max_window,
        incremental=True,
        engine_cache=_engine_cache(config),
    )


def _dream_batch(config: "FederationConfig") -> EstimationStrategy:
    return DreamStrategy(
        r2_required=config.r2_required,
        max_window=config.max_window,
        incremental=False,
        engine_cache=_engine_cache(config),
    )


def _bml(config: "FederationConfig") -> EstimationStrategy:
    multiple = config.strategy_options.get("window_multiple")
    if multiple is not None and (not isinstance(multiple, int) or multiple < 1):
        raise GatewayConfigError(
            f"strategy_options['window_multiple'] must be a positive int, "
            f"got {multiple!r}"
        )
    return BmlStrategy(ObservationWindow(multiple))


register_strategy("dream-incremental", _dream_incremental)
register_strategy("dream-batch", _dream_batch)
register_strategy("bml", _bml)


# Built-in serving backends --------------------------------------------------


def _threaded_serving(config: "FederationConfig", modelling: Modelling):
    from repro.serving.service import EstimationService

    return EstimationService(
        modelling=modelling, max_workers=config.max_fit_workers
    )


def _sharded_serving(config: "FederationConfig", modelling: Modelling):
    from functools import partial

    from repro.serving.sharded import ShardedEstimationService
    from repro.serving.worker import strategy_from_config

    return ShardedEstimationService(
        strategy_factory=partial(strategy_from_config, config),
        workers=config.shard_workers,
        modelling=modelling,
        max_workers=config.max_fit_workers,
        rpc_timeout=config.shard_rpc_timeout,
    )


register_serving_backend("threaded", _threaded_serving)
register_serving_backend("sharded", _sharded_serving)
