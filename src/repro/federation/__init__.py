"""The federation gateway: the public API of the reproduction.

The paper's Figure 1 pipeline used to be reachable through three
overlapping surfaces (the positional ``IReSPlatform`` constructor, the
serving layer, the MIDAS façade), each wired differently by each caller.
This package is the redesign that makes it **one** surface:

* :class:`~repro.federation.gateway.FederationGateway` — the façade,
  built from the physical environment plus a declarative
  :class:`~repro.federation.config.FederationConfig`;
* typed envelopes — :class:`~repro.federation.envelopes.SubmitRequest`,
  :class:`~repro.federation.envelopes.ObserveRequest` in,
  :class:`~repro.federation.envelopes.SubmissionReport`,
  :class:`~repro.federation.envelopes.BatchReport`,
  :class:`~repro.federation.envelopes.ObservationReport` out;
* a structured error taxonomy rooted at
  :class:`~repro.federation.errors.FederationError` (template key +
  pipeline phase on every failure);
* :class:`~repro.federation.session.GatewaySession` — snapshot pinning
  for long optimizer runs, with batched
  :meth:`~repro.federation.session.GatewaySession.submit_many`;
* a string-keyed estimation-backend registry
  (:func:`~repro.federation.registry.register_strategy`), so DREAM/BML/
  future backends are selected by configuration, not imports;
* a governance plane (:mod:`repro.governance`, configured through
  ``FederationConfig(governance=GovernanceConfig(...))``): tenant
  :class:`~repro.governance.identity.Principal` identities on the
  request envelopes, site-level
  :class:`~repro.governance.policy.DataPolicy` rules enforced inside
  QEP enumeration, and a hash-chained audit log behind
  :meth:`~repro.federation.gateway.FederationGateway.audit_report`.

Quickstart::

    from repro.federation import SubmitRequest
    from repro.midas import MidasSystem

    midas = MidasSystem(patient_count=1500)
    midas.warm_up("medical-demographics", runs=30)   # profiling observes
    report = midas.gateway.submit(
        SubmitRequest("medical-demographics", {"min_age": 40})
    )
    print(report.describe())
"""

from repro.federation.config import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_EXACT_LIMIT,
    DEFAULT_INGEST_BATCH_MAX,
    DEFAULT_INGEST_QUEUE_DEPTH,
    FederationConfig,
)
from repro.federation.durability import DurabilityConfig
from repro.federation.envelopes import (
    AuditReport,
    BatchObserveRequest,
    BatchReport,
    IngestBatch,
    IngestStats,
    ObservationReport,
    ObserveRequest,
    RecoveryReport,
    ServingReport,
    SubmissionReport,
    SubmitRequest,
    TopologyReport,
)
from repro.federation.errors import (
    DuplicateTemplateError,
    DurabilityError,
    EnvelopeError,
    FederationError,
    GatewayConfigError,
    IngestAbortedError,
    IngestOverflowError,
    InsufficientHistoryError,
    PolicyViolationError,
    SessionStateError,
    UnknownServingBackendError,
    UnknownStrategyError,
    UnknownTemplateError,
)
from repro.federation.frontdoor import FrontDoor, IngestTicket
from repro.federation.gateway import FederationGateway
from repro.federation.registry import (
    available_serving_backends,
    available_strategies,
    create_serving,
    create_strategy,
    register_serving_backend,
    register_strategy,
    unregister_serving_backend,
    unregister_strategy,
)
from repro.federation.session import GatewaySession

# Re-exported for configuration ergonomics: the elastic-topology and
# governance knobs live in their own layers but are set through
# FederationConfig (and principals ride on the request envelopes).
from repro.governance import DataPolicy, GovernanceConfig, Principal, verify_chain
from repro.serving.topology import RebalanceConfig

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_EXACT_LIMIT",
    "DEFAULT_INGEST_BATCH_MAX",
    "DEFAULT_INGEST_QUEUE_DEPTH",
    "FederationConfig",
    "AuditReport",
    "BatchObserveRequest",
    "BatchReport",
    "DurabilityConfig",
    "IngestBatch",
    "IngestStats",
    "ObservationReport",
    "ObserveRequest",
    "RecoveryReport",
    "ServingReport",
    "SubmissionReport",
    "SubmitRequest",
    "TopologyReport",
    "RebalanceConfig",
    "DataPolicy",
    "GovernanceConfig",
    "Principal",
    "verify_chain",
    "DuplicateTemplateError",
    "DurabilityError",
    "EnvelopeError",
    "FederationError",
    "GatewayConfigError",
    "IngestAbortedError",
    "IngestOverflowError",
    "InsufficientHistoryError",
    "PolicyViolationError",
    "SessionStateError",
    "UnknownServingBackendError",
    "UnknownStrategyError",
    "UnknownTemplateError",
    "FrontDoor",
    "IngestTicket",
    "FederationGateway",
    "available_serving_backends",
    "available_strategies",
    "create_serving",
    "create_strategy",
    "register_serving_backend",
    "register_strategy",
    "unregister_serving_backend",
    "unregister_strategy",
    "GatewaySession",
]
