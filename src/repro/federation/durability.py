"""Durable federation state: WAL journaling, checkpoints, recovery.

The gateway's authoritative state — execution histories, the routing
table, the audit hash chain, tick/rotation counters, the simulator's
noise-stream position — lives in the parent process; before this module
a gateway crash lost every observation the federation had learned from.
:class:`DurabilityManager` journals each state-changing event to a
:mod:`repro.core.wal` segment as it commits, cuts a compacting
checkpoint every ``checkpoint_every`` records, and replays both on
:meth:`~repro.federation.gateway.FederationGateway.recover` into a state
bitwise-equal to a never-crashed gateway (the same restart-equivalence
bar the chaos harness holds worker crashes to).

Journaled event types (one JSON payload each, ``"t"`` discriminates):

* ``register`` — a template registration fingerprint (key + feature and
  metric names).  Recovery *validates* these against the live gateway
  rather than re-registering: the environment (catalog, stats,
  enumerator) is not journaled, so the caller rebuilds it — e.g. a fresh
  ``MidasSystem`` — and the journal proves it matches.
* ``row`` — one history append: template, tick, features, costs, the
  expected history size after the append (the idempotency guard that
  makes checkpoint-racing-append double-application impossible), the
  rotation counter consumed (if any), the gateway tick counter, and the
  simulator's post-draw RNG state.
* ``tick`` — a gateway tick consumed without a history append (a
  plan-only submission, or a submission that failed after its tick was
  assigned).  Without these the recovered tick counter would drift from
  the oracle's.
* ``audit`` — one :class:`~repro.governance.audit.AuditRecord`,
  verbatim (ROADMAP 4c: the chain spills to disk and survives).
* ``fit`` — a model fit with the history version it covered.  Recovery
  re-fits exactly the templates whose snapshot was *fresh* at the
  crash, so post-recovery fit/snapshot-hit behaviour matches the
  uninterrupted oracle's.
* ``topology`` — the full route table + worker count after a
  migration/resize (rebalance decisions are timing-dependent, so routes
  are journaled, never re-derived).

Every payload carries a monotone ``lsn``; the checkpoint records the lsn
it compacted through, and replay skips nothing — each apply step is
idempotent by construction (absolute values, size guards, seq guards),
so the checkpoint/segment race needs no fragile lsn arithmetic.

Torn tails (the file ends mid-record) are crash artifacts: recovery
truncates to the last intact record and reports the dropped bytes.
Mid-file damage (a fully-present record failing its CRC32), a journal
that contradicts the live gateway, or traffic offered before
``recover()`` all raise :class:`~repro.federation.errors.DurabilityError`
— never a silent partial state.
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core import wal
from repro.core.wal import WalCorruptionError
from repro.federation.envelopes import RecoveryReport
from repro.federation.errors import DurabilityError, GatewayConfigError
from repro.governance.audit import GENESIS_HASH, AuditLog, AuditRecord, verify_chain

#: Default number of WAL records between compacting checkpoints.
DEFAULT_CHECKPOINT_EVERY = 256


@dataclass(frozen=True)
class DurabilityConfig:
    """Declarative durability policy for one gateway.

    Parameters
    ----------
    dir:
        Directory holding the WAL segments and checkpoint.  Created on
        first use; a directory with existing state puts the gateway in
        recovery-pending mode (traffic raises
        :class:`~repro.federation.errors.DurabilityError` until
        ``recover()`` runs — existing state is never silently shadowed).
    fsync:
        ``"always"`` | ``"batch"`` | ``"off"`` — see
        :class:`repro.core.wal.WalWriter` for the exact guarantees.
    checkpoint_every:
        Records between compacting checkpoints (``None`` disables
        periodic compaction; the WAL then grows until ``recover()`` or
        an explicit checkpoint).
    """

    dir: str | os.PathLike
    fsync: str = "batch"
    checkpoint_every: int | None = DEFAULT_CHECKPOINT_EVERY

    def __post_init__(self):
        if not str(self.dir):
            raise GatewayConfigError("durability dir must be a non-empty path")
        if self.fsync not in wal.FSYNC_MODES:
            raise GatewayConfigError(
                f"fsync must be one of {wal.FSYNC_MODES}, got {self.fsync!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise GatewayConfigError(
                f"checkpoint_every must be >= 1 or None, "
                f"got {self.checkpoint_every}"
            )


@dataclass
class _JournalState:
    """Mutable replay accumulator (one per recover() call)."""

    tick: int = 0
    rotation: dict = field(default_factory=dict)
    registrations: dict = field(default_factory=dict)
    rows: list = field(default_factory=list)
    audit: dict = field(default_factory=dict)
    fit_versions: dict = field(default_factory=dict)
    routes: dict | None = None
    workers: int | None = None
    rng: dict | None = None
    audit_head: str | None = None
    audit_checkpoint_count: int = 0
    checkpoint_rows: dict = field(default_factory=dict)
    checkpoint_lsn: int = 0


class DurabilityManager:
    """Journals one gateway's state transitions and replays them.

    Lock discipline: ``_lock`` serialises every append and the
    checkpoint cut.  It is taken *after* whatever template lock the
    journaling operation holds and takes only the audit log's lock
    (read-only, inside checkpoints) below it; it never touches the
    gateway mutex or any serving-layer lock, so it cannot participate in
    a cycle with them.  Checkpoint snapshots read the gateway's tick and
    rotation counters without the gateway mutex — both are monotone and
    every ``row`` record carries their absolute values, so a racy read
    is corrected by the very next record on replay.
    """

    def __init__(self, gateway, config: DurabilityConfig):
        self.config = config
        self._gateway = gateway
        self._lock = threading.RLock()
        self._directory = Path(config.dir)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._writer: wal.WalWriter | None = None
        self._segment = 0
        self._lsn = 0
        self._since_checkpoint = 0
        self._routes: dict | None = None
        self._workers: int | None = None
        self._fit_versions: dict[str, int] = {}
        self._closed = False
        #: True while the directory holds un-replayed state: journaling
        #: is suspended and traffic is refused until ``recover()``.
        self.pending = wal.has_state(self._directory)
        if not self.pending:
            self._open_segment(1)

    # Journal appends --------------------------------------------------------

    def ensure_ready(self) -> None:
        """Refuse traffic while existing journal state awaits replay."""
        if self.pending:
            raise DurabilityError(
                f"durability dir {str(self._directory)!r} holds existing WAL "
                "state; call gateway.recover() before serving traffic "
                "(refusing to silently shadow a journal)"
            )

    def note_register(self, key: str, features, metrics) -> None:
        self._append(
            {
                "t": "register",
                "key": key,
                "features": list(features),
                "metrics": list(metrics),
            }
        )

    def note_row(
        self,
        key: str,
        tick: int,
        features: dict,
        costs: dict,
        size: int,
        rotation: int | None,
        gw: int,
        rng: dict | None,
    ) -> None:
        self._append(
            {
                "t": "row",
                "key": key,
                "tick": tick,
                "features": features,
                "costs": costs,
                "size": size,
                "rot": rotation,
                "gw": gw,
                "rng": rng,
            }
        )

    def note_tick(self, gw: int) -> None:
        self._append({"t": "tick", "gw": gw})

    def note_audit(self, record: AuditRecord) -> None:
        self._append({"t": "audit", "record": asdict(record)})

    def note_fit(self, key: str, version: int) -> None:
        with self._lock:
            self._fit_versions[key] = version
        self._append({"t": "fit", "key": key, "version": version})

    def note_topology(self, routes: dict, workers: int) -> None:
        with self._lock:
            self._routes = dict(routes)
            self._workers = workers
        self._append({"t": "topology", "routes": dict(routes), "workers": workers})

    def _append(self, payload: dict) -> None:
        with self._lock:
            if self.pending or self._closed or self._writer is None:
                return
            self._lsn += 1
            payload["lsn"] = self._lsn
            self._writer.append(payload)
            self._since_checkpoint += 1
            every = self.config.checkpoint_every
            if every is not None and self._since_checkpoint >= every:
                self._checkpoint_locked()

    def sync(self) -> None:
        """Batch boundary (one front-door flush): force the journal to
        stable storage under the ``"batch"`` policy."""
        with self._lock:
            if self._writer is not None:
                self._writer.sync()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    # Checkpoints ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Cut a compacting checkpoint now: full state snapshot, new
        segment, old segments deleted."""
        with self._lock:
            if self.pending or self._closed:
                return
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        payload = {
            "lsn": self._lsn,
            "segment": self._segment + 1,
            "state": self._snapshot(),
        }
        wal.write_checkpoint(self._directory, payload)
        self._open_segment(self._segment + 1)
        for segment in wal.list_segments(self._directory):
            if wal.segment_number(segment) < self._segment:
                segment.unlink()
        self._since_checkpoint = 0

    def _snapshot(self) -> dict:
        gateway = self._gateway
        engine = gateway.engine
        registrations, rows = [], {}
        for key in sorted(gateway._keys):
            history = engine.history(key)
            registrations.append(
                {
                    "key": key,
                    "features": list(history.feature_names),
                    "metrics": list(history.metric_names),
                }
            )
            rows[key] = history.export_rows()
        audit = gateway._audit
        simulator = getattr(engine.executor, "simulator", None)
        return {
            "tick": gateway._tick,
            "rotation": dict(gateway._rotation),
            "registrations": registrations,
            "rows": rows,
            "routes": self._routes,
            "workers": self._workers,
            "audit": None if audit is None else [asdict(r) for r in audit.records()],
            "audit_head": None if audit is None else audit.head_hash,
            "rng": (
                simulator.rng_state()
                if hasattr(simulator, "rng_state")
                else None
            ),
            "fit_versions": dict(self._fit_versions),
        }

    def _open_segment(self, number: int) -> None:
        if self._writer is not None:
            self._writer.close()
        self._segment = number
        self._writer = wal.WalWriter(
            self._directory / wal.segment_name(number), fsync=self.config.fsync
        )

    # Recovery ---------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Replay the directory's checkpoint + WAL into the gateway.

        The gateway must be freshly constructed with its templates
        re-registered (``MidasSystem`` does this at construction); the
        journal's registration fingerprints are validated against the
        live ones, then rows, counters, routes, the audit chain and the
        simulator RNG position are restored, snapshots warmed for every
        template that was fresh at the crash, and a fresh compacting
        checkpoint cut so journaling resumes from a clean segment.
        """
        with self._lock:
            if not self.pending:
                return RecoveryReport(recovered=False)
            try:
                state, stats = self._read_journal()
            except WalCorruptionError as error:
                raise DurabilityError(str(error)) from error
            rows = self._apply(state)
            self.pending = False
            self._lsn = max(self._lsn, stats["lsn"])
            self._routes = state.routes
            self._workers = state.workers
            self._fit_versions = dict(state.fit_versions)
            warmed = self._warm_snapshots(state)
            self._open_segment(stats["segment"])
            self._checkpoint_locked()
            return RecoveryReport(
                recovered=True,
                checkpoint_lsn=state.checkpoint_lsn,
                segments=stats["segments"],
                records=stats["records"],
                rows=rows,
                registrations=len(state.registrations),
                audit_records=len(state.audit),
                torn_bytes=stats["torn_bytes"],
                routes=0 if state.routes is None else len(state.routes),
                warmed_fits=warmed,
                tick=state.tick,
            )

    def _read_journal(self) -> tuple[_JournalState, dict]:
        """Parse checkpoint + segments into one replay accumulator."""
        state = _JournalState()
        checkpoint = wal.read_checkpoint(self._directory)
        first_segment = 1
        if checkpoint is not None:
            snapshot = checkpoint["state"]
            state.checkpoint_lsn = checkpoint["lsn"]
            first_segment = checkpoint["segment"]
            state.tick = snapshot["tick"]
            state.rotation = dict(snapshot["rotation"])
            for registration in snapshot["registrations"]:
                state.registrations[registration["key"]] = registration
            state.checkpoint_rows = snapshot["rows"]
            state.routes = snapshot["routes"]
            state.workers = snapshot["workers"]
            state.rng = snapshot["rng"]
            state.audit_head = snapshot["audit_head"]
            state.fit_versions = dict(snapshot["fit_versions"])
            if snapshot["audit"] is not None:
                state.audit_checkpoint_count = len(snapshot["audit"])
                for record in snapshot["audit"]:
                    state.audit[record["seq"]] = record
        segments = [
            path
            for path in wal.list_segments(self._directory)
            if wal.segment_number(path) >= first_segment
        ]
        lsn = state.checkpoint_lsn
        records = torn_bytes = 0
        last_number = (
            wal.segment_number(segments[-1]) if segments else first_segment
        )
        for path in segments:
            scan = wal.scan_segment(path)
            if scan.torn_bytes and wal.segment_number(path) != last_number:
                raise DurabilityError(
                    f"{path.name}: torn tail in a non-final WAL segment — "
                    "segments rotate only at record boundaries, so this is "
                    "corruption, not a crash artifact"
                )
            torn_bytes += scan.torn_bytes
            for payload in scan.records:
                records += 1
                lsn = max(lsn, payload["lsn"])
                self._fold(state, payload)
        return state, {
            "lsn": lsn,
            "segments": len(segments),
            "records": records,
            "torn_bytes": torn_bytes,
            "segment": max(
                [wal.segment_number(p) for p in segments] + [first_segment]
            )
            + 1,
        }

    @staticmethod
    def _fold(state: _JournalState, payload: dict) -> None:
        kind = payload["t"]
        if kind == "register":
            state.registrations.setdefault(payload["key"], payload)
        elif kind == "row":
            state.rows.append(payload)
            state.tick = max(state.tick, payload["gw"])
            if payload["rot"] is not None:
                state.rotation[payload["key"]] = payload["rot"]
            if payload["rng"] is not None:
                state.rng = payload["rng"]
        elif kind == "tick":
            state.tick = max(state.tick, payload["gw"])
        elif kind == "audit":
            record = payload["record"]
            state.audit.setdefault(record["seq"], record)
        elif kind == "fit":
            state.fit_versions[payload["key"]] = payload["version"]
        elif kind == "topology":
            state.routes = payload["routes"]
            state.workers = payload["workers"]
        else:
            raise DurabilityError(f"unknown WAL record type {kind!r}")

    def _apply(self, state: _JournalState) -> int:
        gateway = self._gateway
        engine = gateway.engine
        # 1. Registrations: validate, never re-register.  The caller
        #    rebuilt the environment; the journal proves it matches.
        for key, registration in sorted(state.registrations.items()):
            if key not in gateway._keys:
                raise DurabilityError(
                    f"journal registers template {key!r} but the gateway "
                    "does not; re-register the same templates before "
                    "recover()",
                    template=key,
                )
            history = engine.history(key)
            if list(history.feature_names) != registration["features"] or list(
                history.metric_names
            ) != registration["metrics"]:
                raise DurabilityError(
                    f"journalled registration for {key!r} (features="
                    f"{registration['features']}, metrics="
                    f"{registration['metrics']}) does not match the live one",
                    template=key,
                )
            if history.size:
                raise DurabilityError(
                    f"template {key!r} already has {history.size} rows; "
                    "recover() needs a fresh gateway",
                    template=key,
                )
        # 2. Rows: checkpoint prefix first, then WAL records in lsn
        #    order.  The size guard makes double-captured rows (a
        #    checkpoint racing an append) no-ops.
        replayed = 0
        for key, rows in sorted(state.checkpoint_rows.items()):
            history = engine.history(key)
            for tick, features, costs in rows:
                history.append(tick, features, costs)
                replayed += 1
        for payload in state.rows:
            history = engine.history(payload["key"])
            if history.size >= payload["size"]:
                continue
            if history.size != payload["size"] - 1:
                raise DurabilityError(
                    f"WAL gap for {payload['key']!r}: record expects history "
                    f"size {payload['size']} but {history.size} rows are "
                    "present",
                    template=payload["key"],
                )
            history.append(payload["tick"], payload["features"], payload["costs"])
            replayed += 1
        if replayed:
            engine.serving.record_external(replayed)
        # 3. Counters.
        gateway._tick = max(gateway._tick, state.tick)
        gateway._rotation.update(state.rotation)
        # 4. Audit chain: dense, verified, head-anchored.
        self._restore_audit(state)
        # 5. Routing table (journaled, never re-derived).
        self._restore_routes(state)
        # 6. Simulator noise stream.
        if state.rng is not None:
            simulator = getattr(engine.executor, "simulator", None)
            if not hasattr(simulator, "restore_rng_state"):
                raise DurabilityError(
                    "journal carries simulator RNG state but the live "
                    "simulator cannot restore it"
                )
            simulator.restore_rng_state(state.rng)
        return replayed

    def _restore_audit(self, state: _JournalState) -> None:
        gateway = self._gateway
        if not state.audit:
            return
        if gateway._audit is None:
            raise DurabilityError(
                "journal carries audit records but the gateway has no audit "
                "log; recover with the same governance configuration"
            )
        if len(gateway._audit):
            raise DurabilityError(
                "gateway audit log is not empty; recover() needs a fresh "
                "gateway"
            )
        sequences = sorted(state.audit)
        if sequences != list(range(len(sequences))):
            raise DurabilityError(
                f"audit journal is not dense: have seqs {sequences[:5]}..."
            )
        records = [AuditRecord(**state.audit[seq]) for seq in sequences]
        if not verify_chain(records):
            raise DurabilityError(
                "recovered audit records do not form an intact hash chain"
            )
        if state.audit_head is not None:
            # Head-hash anchor: the chain rebuilt up to the checkpoint
            # boundary must land exactly on the head the checkpoint
            # recorded (catches a forged-but-internally-consistent
            # replacement chain, which verify_chain alone cannot).
            count = state.audit_checkpoint_count
            expected = GENESIS_HASH if count == 0 else records[count - 1].hash
            if expected != state.audit_head:
                raise DurabilityError(
                    "recovered audit chain does not anchor on the "
                    "checkpoint's head hash"
                )
        gateway._audit = AuditLog.restore(records, sink=gateway._audit.sink)

    def _restore_routes(self, state: _JournalState) -> None:
        if state.routes is None:
            return
        serving = self._gateway.engine.serving
        if not hasattr(serving, "migrate"):
            raise DurabilityError(
                "journal carries a shard routing table but the gateway's "
                f"serving backend ({type(serving).__name__}) has no shards; "
                "recover with serving_backend='sharded'"
            )
        if state.workers is not None and serving.workers != state.workers:
            serving.resize(state.workers)
        current = serving.route_table()
        for key, shard in sorted(state.routes.items()):
            if current.get(key) != shard:
                serving.migrate(key, shard)

    def _warm_snapshots(self, state: _JournalState) -> int:
        """Re-fit every template whose snapshot was *fresh* at the crash
        (journaled fit version == recovered history version), so
        post-recovery fit counts and snapshot hits match the oracle's."""
        gateway = self._gateway
        engine = gateway.engine
        warmed = 0
        for key in sorted(state.fit_versions):
            if key not in gateway._keys:
                continue
            history = engine.history(key)
            if history.size and history.version == state.fit_versions[key]:
                engine.serving.model(key)
                warmed += 1
        return warmed


__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "DurabilityConfig",
    "DurabilityManager",
]
