"""Declarative gateway configuration.

:class:`FederationConfig` replaces the ad-hoc keyword threading the old
entry surfaces required (``IReSPlatform(...)`` positional wiring,
``DreamStrategy(r2_required=..., max_window=..., engine_cache=...)``,
``ModelCache(capacity=..., ttl_seconds=...)``,
``EstimationService(max_workers=...)``) with one frozen value object:
strategy selection by registry name, estimation thresholds, engine-cache
budget, optimizer algorithm and refresh-pool width.  Every field is
validated eagerly in ``__post_init__`` — a bad capacity or TTL fails at
construction with a :class:`~repro.federation.errors.GatewayConfigError`
instead of deep inside the first fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.federation.errors import GatewayConfigError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.federation.durability import DurabilityConfig
    from repro.governance.policy import GovernanceConfig
    from repro.serving.topology import RebalanceConfig

#: Default bound on live per-template estimation engines (mirrors
#: :data:`repro.ires.modelling.DEFAULT_ENGINE_CAPACITY`, restated here so
#: configuring the gateway does not require importing the engine room).
DEFAULT_CACHE_CAPACITY = 256

#: Default exhaustive-search ceiling (mirrors
#: :data:`repro.ires.optimizer.DEFAULT_EXACT_LIMIT`): large enough that
#: Example 3.1's 18,200-QEP space runs *exact* MOQP.
DEFAULT_EXACT_LIMIT = 32_768

_OPTIMIZER_ALGORITHMS = ("exact", "nsga2", "nsga-g")

#: Default bound on admitted-but-unflushed ingest items at the front door.
DEFAULT_INGEST_QUEUE_DEPTH = 4096

#: Default size watermark: a flush starts once this many items are pending.
DEFAULT_INGEST_BATCH_MAX = 512

_INGEST_OVERFLOW_MODES = ("reject", "block")


@dataclass(frozen=True)
class FederationConfig:
    """Everything a :class:`~repro.federation.gateway.FederationGateway`
    needs beyond the physical environment (catalog, stats, deployment,
    enumerator, simulator).

    Parameters
    ----------
    strategy:
        Registry name of the estimation backend (see
        :func:`repro.federation.registry.available_strategies`).
    metrics:
        Cost metrics newly registered templates track by default.
    r2_required:
        DREAM's ``R^2_require`` threshold (paper §3 recommends 0.8).
    max_window:
        DREAM's ``Mmax``; ``None`` lets the window grow to the full
        history.
    optimizer_algorithm / exact_limit:
        Pareto-set construction: ``"exact"`` enumerates exhaustively up
        to ``exact_limit`` candidates and falls back to NSGA-II above it
        (the fallback is recorded on ``SubmissionReport.moqp_algorithm``).
        The default limit covers the paper's full Example 3.1 space
        (18,200 equivalent QEPs) — the vectorized front scan makes
        exhaustive MOQP at that scale a milliseconds operation.
    cache_capacity / cache_ttl_seconds:
        LRU bound and idle TTL of the shared estimation-engine cache.
    serving_backend / shard_workers / shard_rpc_timeout:
        Which serving layer fronts the estimation strategy (see
        :func:`repro.federation.registry.available_serving_backends`):
        ``"threaded"`` is the in-process multi-tenant service,
        ``"sharded"`` hash-partitions templates across ``shard_workers``
        worker *processes* (shared-nothing; scales fits past the GIL).
        ``shard_workers=None`` uses the pool's core-count default.
        ``shard_rpc_timeout`` (seconds) is the sharded backend's
        hung-worker guard: a worker that takes longer than this to
        answer one fit RPC is terminated and respawned (``None`` = wait
        forever).
    max_fit_workers:
        Thread-pool width for burst refreshes (``None`` = service
        default).  For the sharded backend this caps the parent-side
        fan-out threads, one per busy shard.
    ingest_queue_depth / ingest_batch_max / ingest_flush_ms /
    ingest_overflow:
        The gateway's batched front door (``gateway.ingest()`` /
        ``gateway.drain()``).  ``ingest_queue_depth`` bounds how many
        admitted-but-unflushed requests the door holds;
        ``ingest_batch_max`` is the size watermark that starts a
        coalesced flush (must not exceed the queue depth, or the
        watermark could never fire); ``ingest_flush_ms`` is an optional
        staleness watermark — an admission finding items older than this
        flushes first (``None`` disables it; ``drain()`` remains the
        explicit barrier).  ``ingest_overflow`` picks the backpressure
        discipline at a full queue: ``"reject"`` raises a typed
        :class:`~repro.federation.errors.IngestOverflowError`,
        ``"block"`` makes the admitting caller wait (or flush itself) —
        never a silent drop.
    ingest_segment_max:
        Optional cap on a flush segment's size (``None`` disables it).
        Tickets resolve per segment (streaming), so smaller segments
        mean earlier first reports; the bitwise-equivalence contract is
        unaffected because subdividing a fit-coalesced segment never
        changes what a prefit sees.
    ingest_pipeline:
        When ``True``, a flush prefits the next segment's untouched
        stale templates on a helper thread while the current segment
        executes (``refresh_batch`` overlapped with execution) — the
        fits move off the critical path, executions stay in admission
        order, and the oracle contract holds.  ``False`` (the default)
        keeps every fit synchronous at its segment boundary.
    rebalance:
        Elastic-topology policy knobs
        (:class:`~repro.serving.topology.RebalanceConfig`) for the
        sharded backend: the gateway runs one
        :class:`~repro.serving.topology.RebalancePolicy` control cycle
        every ``rebalance.cadence_flushes`` front-door flushes (and on
        explicit ``gateway.rebalance()`` calls), migrating hot templates
        to cold shards and growing/shrinking the pool.  ``None`` (the
        default) leaves placement static.  Requires
        ``serving_backend="sharded"`` — the threaded service has no
        shards to balance.
    governance:
        The governance plane
        (:class:`~repro.governance.policy.GovernanceConfig`): declarative
        site-level :class:`~repro.governance.policy.DataPolicy` rules
        enforced inside QEP enumeration, optional identity requirement,
        and the hash-chained audit log behind
        ``gateway.audit_report()``.  ``None`` (the default) runs without
        a governance plane; a *permissive* config (no rules) is
        bitwise-equivalent to ``None`` on the estimation/optimization
        path — it only adds auditing.
    durability:
        The durability plane
        (:class:`~repro.federation.durability.DurabilityConfig`): every
        state-changing event is write-ahead-logged to ``dir`` under the
        chosen ``fsync`` policy with periodic compacting checkpoints,
        and ``gateway.recover()`` replays a crashed gateway's journal
        into a bitwise-equal state.  ``None`` (the default) keeps all
        state in memory, exactly as before.
    strategy_options:
        Backend-specific extras passed to the registry factory (e.g.
        ``{"window_multiple": 2}`` for the windowed BML baseline).
    """

    strategy: str = "dream-incremental"
    metrics: tuple[str, ...] = ("time", "money")
    r2_required: float = 0.8
    max_window: int | None = None
    optimizer_algorithm: str = "exact"
    exact_limit: int = DEFAULT_EXACT_LIMIT
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    cache_ttl_seconds: float | None = None
    serving_backend: str = "threaded"
    shard_workers: int | None = None
    shard_rpc_timeout: float | None = None
    max_fit_workers: int | None = None
    ingest_queue_depth: int = DEFAULT_INGEST_QUEUE_DEPTH
    ingest_batch_max: int = DEFAULT_INGEST_BATCH_MAX
    ingest_flush_ms: float | None = None
    ingest_overflow: str = "reject"
    ingest_segment_max: int | None = None
    ingest_pipeline: bool = False
    rebalance: RebalanceConfig | None = None
    governance: GovernanceConfig | None = None
    durability: DurabilityConfig | None = None
    strategy_options: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.strategy or not isinstance(self.strategy, str):
            raise GatewayConfigError(
                f"strategy must be a non-empty registry name, got {self.strategy!r}"
            )
        if not self.metrics:
            raise GatewayConfigError("metrics must name at least one cost metric")
        if not 0.0 <= self.r2_required <= 1.0:
            raise GatewayConfigError(
                f"r2_required must be in [0, 1], got {self.r2_required}"
            )
        if self.max_window is not None and self.max_window < 3:
            raise GatewayConfigError(
                f"max_window must be >= 3 (the smallest L + 2), got {self.max_window}"
            )
        if self.optimizer_algorithm not in _OPTIMIZER_ALGORITHMS:
            raise GatewayConfigError(
                f"optimizer_algorithm must be one of {_OPTIMIZER_ALGORITHMS}, "
                f"got {self.optimizer_algorithm!r}"
            )
        if self.exact_limit < 1:
            raise GatewayConfigError(
                f"exact_limit must be >= 1, got {self.exact_limit}"
            )
        if self.cache_capacity < 1:
            raise GatewayConfigError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.cache_ttl_seconds is not None and not self.cache_ttl_seconds > 0:
            raise GatewayConfigError(
                f"cache_ttl_seconds must be > 0 (or None), got {self.cache_ttl_seconds}"
            )
        if not self.serving_backend or not isinstance(self.serving_backend, str):
            raise GatewayConfigError(
                "serving_backend must be a non-empty registry name, "
                f"got {self.serving_backend!r}"
            )
        # Deferred import: the registry only needs this module for type
        # hints, but importing it at module load would still tie the two
        # modules' import order together.
        from repro.federation.registry import available_serving_backends

        if self.serving_backend not in available_serving_backends():
            from repro.federation.errors import UnknownServingBackendError

            raise UnknownServingBackendError(
                self.serving_backend, available_serving_backends()
            )
        if self.shard_workers is not None and self.shard_workers < 1:
            raise GatewayConfigError(
                f"shard_workers must be >= 1 (or None), got {self.shard_workers}"
            )
        if self.shard_rpc_timeout is not None and not self.shard_rpc_timeout > 0:
            raise GatewayConfigError(
                f"shard_rpc_timeout must be > 0 (or None), got {self.shard_rpc_timeout}"
            )
        if self.max_fit_workers is not None and self.max_fit_workers < 1:
            raise GatewayConfigError(
                f"max_fit_workers must be >= 1 (or None), got {self.max_fit_workers}"
            )
        if self.ingest_queue_depth < 1:
            raise GatewayConfigError(
                f"ingest_queue_depth must be >= 1, got {self.ingest_queue_depth}"
            )
        if self.ingest_batch_max < 1:
            raise GatewayConfigError(
                f"ingest_batch_max must be >= 1, got {self.ingest_batch_max}"
            )
        if self.ingest_batch_max > self.ingest_queue_depth:
            raise GatewayConfigError(
                f"ingest_batch_max ({self.ingest_batch_max}) must not exceed "
                f"ingest_queue_depth ({self.ingest_queue_depth}); the size "
                "watermark could never fire"
            )
        if self.ingest_flush_ms is not None and not self.ingest_flush_ms > 0:
            raise GatewayConfigError(
                f"ingest_flush_ms must be > 0 (or None), got {self.ingest_flush_ms}"
            )
        if self.ingest_overflow not in _INGEST_OVERFLOW_MODES:
            raise GatewayConfigError(
                f"ingest_overflow must be one of {_INGEST_OVERFLOW_MODES}, "
                f"got {self.ingest_overflow!r}"
            )
        if self.ingest_segment_max is not None and self.ingest_segment_max < 1:
            raise GatewayConfigError(
                f"ingest_segment_max must be >= 1 (or None), "
                f"got {self.ingest_segment_max}"
            )
        if not isinstance(self.ingest_pipeline, bool):
            raise GatewayConfigError(
                f"ingest_pipeline must be True or False, "
                f"got {self.ingest_pipeline!r}"
            )
        if self.rebalance is not None:
            # Deferred import, same reason as the registry lookup above.
            from repro.serving.topology import RebalanceConfig

            if not isinstance(self.rebalance, RebalanceConfig):
                raise GatewayConfigError(
                    "rebalance must be a RebalanceConfig (or None), got "
                    f"{type(self.rebalance).__name__}"
                )
            if self.serving_backend != "sharded":
                raise GatewayConfigError(
                    f"rebalance requires serving_backend='sharded', got "
                    f"serving_backend={self.serving_backend!r} (no shards to "
                    "balance); registered serving backends: "
                    f"{', '.join(available_serving_backends())}"
                )
        if self.governance is not None:
            # Deferred import, same reason as the registry lookup above.
            from repro.governance.policy import GovernanceConfig

            if not isinstance(self.governance, GovernanceConfig):
                raise GatewayConfigError(
                    "governance must be a GovernanceConfig (or None), got "
                    f"{type(self.governance).__name__}"
                )
        if self.durability is not None:
            # Deferred import, same reason as the registry lookup above.
            from repro.federation.durability import DurabilityConfig

            if not isinstance(self.durability, DurabilityConfig):
                raise GatewayConfigError(
                    "durability must be a DurabilityConfig (or None), got "
                    f"{type(self.durability).__name__}"
                )
