"""TPC-H substrate: schema, deterministic generator, queries and datasets.

The paper evaluates DREAM on TPC-H (100 MiB and 1 GiB) using the four
queries that join exactly two tables: Q12, Q13, Q14 and Q17.  This package
generates spec-shaped data at a configurable *physical* row count while
tracking the *logical* scale (MiB) that cost models consume — see
:class:`repro.tpch.dataset.TpchDataset`.
"""

from repro.tpch.schema import TPCH_SCHEMAS, tpch_schema
from repro.tpch.generator import TpchGenerator, rows_per_table
from repro.tpch.dataset import TpchDataset
from repro.tpch.queries import (
    TPCH_QUERIES,
    QueryTemplate,
    query_12,
    query_13,
    query_14,
    query_17,
)

__all__ = [
    "TPCH_SCHEMAS",
    "tpch_schema",
    "TpchGenerator",
    "rows_per_table",
    "TpchDataset",
    "TPCH_QUERIES",
    "QueryTemplate",
    "query_12",
    "query_13",
    "query_14",
    "query_17",
]
