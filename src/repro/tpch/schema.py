"""TPC-H schema: the eight benchmark tables.

Column order and names follow the TPC-H specification revision 2.x.
Average dbgen row widths (bytes) are recorded per table so the *logical*
size of a scale factor can be computed without generating the data.
"""

from __future__ import annotations

from repro.common.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType

I = DataType.INTEGER
F = DataType.FLOAT
S = DataType.STRING
D = DataType.DATE

TPCH_SCHEMAS: dict[str, Schema] = {
    "region": Schema(
        [
            Column("r_regionkey", I, nullable=False),
            Column("r_name", S, nullable=False),
            Column("r_comment", S),
        ]
    ),
    "nation": Schema(
        [
            Column("n_nationkey", I, nullable=False),
            Column("n_name", S, nullable=False),
            Column("n_regionkey", I, nullable=False),
            Column("n_comment", S),
        ]
    ),
    "supplier": Schema(
        [
            Column("s_suppkey", I, nullable=False),
            Column("s_name", S, nullable=False),
            Column("s_address", S, nullable=False),
            Column("s_nationkey", I, nullable=False),
            Column("s_phone", S, nullable=False),
            Column("s_acctbal", F, nullable=False),
            Column("s_comment", S),
        ]
    ),
    "customer": Schema(
        [
            Column("c_custkey", I, nullable=False),
            Column("c_name", S, nullable=False),
            Column("c_address", S, nullable=False),
            Column("c_nationkey", I, nullable=False),
            Column("c_phone", S, nullable=False),
            Column("c_acctbal", F, nullable=False),
            Column("c_mktsegment", S, nullable=False),
            Column("c_comment", S),
        ]
    ),
    "part": Schema(
        [
            Column("p_partkey", I, nullable=False),
            Column("p_name", S, nullable=False),
            Column("p_mfgr", S, nullable=False),
            Column("p_brand", S, nullable=False),
            Column("p_type", S, nullable=False),
            Column("p_size", I, nullable=False),
            Column("p_container", S, nullable=False),
            Column("p_retailprice", F, nullable=False),
            Column("p_comment", S),
        ]
    ),
    "partsupp": Schema(
        [
            Column("ps_partkey", I, nullable=False),
            Column("ps_suppkey", I, nullable=False),
            Column("ps_availqty", I, nullable=False),
            Column("ps_supplycost", F, nullable=False),
            Column("ps_comment", S),
        ]
    ),
    "orders": Schema(
        [
            Column("o_orderkey", I, nullable=False),
            Column("o_custkey", I, nullable=False),
            Column("o_orderstatus", S, nullable=False),
            Column("o_totalprice", F, nullable=False),
            Column("o_orderdate", D, nullable=False),
            Column("o_orderpriority", S, nullable=False),
            Column("o_clerk", S, nullable=False),
            Column("o_shippriority", I, nullable=False),
            Column("o_comment", S),
        ]
    ),
    "lineitem": Schema(
        [
            Column("l_orderkey", I, nullable=False),
            Column("l_partkey", I, nullable=False),
            Column("l_suppkey", I, nullable=False),
            Column("l_linenumber", I, nullable=False),
            Column("l_quantity", F, nullable=False),
            Column("l_extendedprice", F, nullable=False),
            Column("l_discount", F, nullable=False),
            Column("l_tax", F, nullable=False),
            Column("l_returnflag", S, nullable=False),
            Column("l_linestatus", S, nullable=False),
            Column("l_shipdate", D, nullable=False),
            Column("l_commitdate", D, nullable=False),
            Column("l_receiptdate", D, nullable=False),
            Column("l_shipinstruct", S, nullable=False),
            Column("l_shipmode", S, nullable=False),
            Column("l_comment", S),
        ]
    ),
}

#: Average dbgen row widths in bytes (used for logical size accounting).
DBGEN_ROW_WIDTH_BYTES: dict[str, int] = {
    "region": 124,
    "nation": 128,
    "supplier": 140,
    "customer": 160,
    "part": 119,
    "partsupp": 144,
    "orders": 104,
    "lineitem": 112,
}

#: Row counts at scale factor 1, per the TPC-H specification.
ROWS_AT_SF1: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}


def tpch_schema(table_name: str) -> Schema:
    """The schema of one TPC-H table."""
    try:
        return TPCH_SCHEMAS[table_name.lower()]
    except KeyError:
        known = ", ".join(sorted(TPCH_SCHEMAS))
        raise SchemaError(f"unknown TPC-H table {table_name!r}; one of: {known}") from None


def logical_size_bytes(table_name: str, scale_factor: float) -> int:
    """dbgen-equivalent size of ``table_name`` at ``scale_factor``."""
    name = table_name.lower()
    rows = ROWS_AT_SF1[name] if name in ("region", "nation") else ROWS_AT_SF1[name] * scale_factor
    return int(rows * DBGEN_ROW_WIDTH_BYTES[name])
