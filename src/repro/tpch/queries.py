"""The paper's TPC-H workload: queries 12, 13, 14 and 17.

These are the four TPC-H queries that join exactly two tables (paper §4.2),
which is what lets the experiment place each table in a different engine
(Hive and PostgreSQL).  Each query is a :class:`QueryTemplate` — SQL text
with named substitution parameters plus a spec-shaped parameter generator,
so a workload can draw many distinct-but-similar query instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ValidationError
from repro.common.rng import RngStream
from repro.tpch import text


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterised TPC-H query."""

    key: str
    title: str
    tables: tuple[str, str]
    template: str
    parameter_generator: Callable[[RngStream], dict]

    def render(self, params: dict | None = None, rng: RngStream | None = None) -> str:
        """Substitute ``params`` (or draw them from ``rng``) into the SQL."""
        if params is None:
            if rng is None:
                raise ValidationError("render() needs params or an rng to draw them")
            params = self.parameter_generator(rng)
        return self.template.format(**params)

    def sample_params(self, rng: RngStream) -> dict:
        return self.parameter_generator(rng)


def _q12_params(rng: RngStream) -> dict:
    modes = list(text.SHIP_MODES)
    first = modes.pop(int(rng.integers(0, len(modes))))
    second = modes.pop(int(rng.integers(0, len(modes))))
    year = int(rng.integers(1993, 1998))
    return {"shipmode1": first, "shipmode2": second, "year": year}


query_12 = QueryTemplate(
    key="q12",
    title="Shipping Modes and Order Priority",
    tables=("orders", "lineitem"),
    template="""
select
    l_shipmode,
    sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH'
        then 1 else 0 end) as high_line_count,
    sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH'
        then 1 else 0 end) as low_line_count
from
    orders,
    lineitem
where
    o_orderkey = l_orderkey
    and l_shipmode in ('{shipmode1}', '{shipmode2}')
    and l_commitdate < l_receiptdate
    and l_shipdate < l_commitdate
    and l_receiptdate >= date '{year}-01-01'
    and l_receiptdate < date '{year}-01-01' + interval '1' year
group by
    l_shipmode
order by
    l_shipmode
""",
    parameter_generator=_q12_params,
)


def _q13_params(rng: RngStream) -> dict:
    word1 = ("special", "pending", "unusual", "express")[int(rng.integers(0, 4))]
    word2 = ("packages", "requests", "accounts", "deposits")[int(rng.integers(0, 4))]
    return {"word1": word1, "word2": word2}


query_13 = QueryTemplate(
    key="q13",
    title="Customer Distribution",
    tables=("customer", "orders"),
    template="""
select
    c_count,
    count(*) as custdist
from
    (
        select
            c_custkey,
            count(o_orderkey) as c_count
        from
            customer left outer join orders on
                c_custkey = o_custkey
                and o_comment not like '%{word1}%{word2}%'
        group by
            c_custkey
    ) as c_orders (c_custkey, c_count)
group by
    c_count
order by
    custdist desc,
    c_count desc
""",
    parameter_generator=_q13_params,
)


def _q14_params(rng: RngStream) -> dict:
    year = int(rng.integers(1993, 1998))
    month = int(rng.integers(1, 13))
    return {"date": f"{year}-{month:02d}-01"}


query_14 = QueryTemplate(
    key="q14",
    title="Promotion Effect",
    tables=("lineitem", "part"),
    template="""
select
    100.00 * sum(case when p_type like 'PROMO%'
        then l_extendedprice * (1 - l_discount) else 0 end)
        / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from
    lineitem,
    part
where
    l_partkey = p_partkey
    and l_shipdate >= date '{date}'
    and l_shipdate < date '{date}' + interval '1' month
""",
    parameter_generator=_q14_params,
)


def _q17_params(rng: RngStream) -> dict:
    brand = f"Brand#{int(rng.integers(1, 6))}{int(rng.integers(1, 6))}"
    container = text.CONTAINERS[int(rng.integers(0, len(text.CONTAINERS)))]
    return {"brand": brand, "container": container}


query_17 = QueryTemplate(
    key="q17",
    title="Small-Quantity-Order Revenue",
    tables=("lineitem", "part"),
    template="""
select
    sum(l_extendedprice) / 7.0 as avg_yearly
from
    lineitem,
    part
where
    p_partkey = l_partkey
    and p_brand = '{brand}'
    and p_container = '{container}'
    and l_quantity < (
        select
            0.2 * avg(l_quantity)
        from
            lineitem
        where
            l_partkey = p_partkey
    )
""",
    parameter_generator=_q17_params,
)

#: The paper's workload, keyed by query id.
TPCH_QUERIES: dict[str, QueryTemplate] = {
    "q12": query_12,
    "q13": query_13,
    "q14": query_14,
    "q17": query_17,
}


def _q3_params(rng: RngStream) -> dict:
    segments = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
    day = int(rng.integers(1, 29))
    return {"segment": segments[int(rng.integers(0, len(segments)))],
            "date": f"1995-03-{day:02d}"}


#: Extension beyond the paper's two-table workload: TPC-H Q3 joins three
#: tables across both engines (customer+orders on different sides of the
#: federation than lineitem), exercising multi-join planning, pushdown
#: and the executor's hash-join chains.
query_3 = QueryTemplate(
    key="q3",
    title="Shipping Priority (3-way join extension)",
    tables=("customer", "orders", "lineitem"),
    template="""
select
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) as revenue,
    o_orderdate,
    o_shippriority
from
    customer,
    orders,
    lineitem
where
    c_mktsegment = '{segment}'
    and c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and o_orderdate < date '{date}'
    and l_shipdate > date '{date}'
group by
    l_orderkey,
    o_orderdate,
    o_shippriority
order by
    revenue desc,
    o_orderdate
limit 10
""",
    parameter_generator=_q3_params,
)

#: Paper workload + extensions.
EXTENDED_QUERIES: dict[str, QueryTemplate] = {**TPCH_QUERIES, "q3": query_3}
