"""TPC-H dataset facade: logical scale vs physical rows.

The paper's experiments reference dataset sizes (100 MiB, 1 GiB) that feed
the *cost models*; actually materialising a gibibyte of Python rows would
be pointless for a simulation whose ground-truth costs are analytic.  A
:class:`TpchDataset` therefore tracks two scales:

* **logical scale** (``scale_mib``) — drives the statistics handed to the
  physical planner and engine simulators (dbgen-equivalent row counts and
  byte sizes; 1 GiB corresponds to scale factor 1);
* **physical scale** (``physical_scale_factor``) — the rows actually
  generated, used by the local executor for semantic ground truth.

Column statistics are computed exactly on the physical tables and then
*re-scaled*: key-like columns (distinct ≈ rows) scale their distinct count
and integer max with the logical row count; categorical columns keep their
physical statistics.
"""

from __future__ import annotations

from functools import cached_property

from repro.common.units import MIB, bytes_to_mib
from repro.common.validation import require_positive
from repro.plans.catalog import Catalog
from repro.plans.statistics import ColumnStats, TableStats, compute_table_stats
from repro.relational.table import Table
from repro.tpch.generator import TpchGenerator
from repro.tpch.schema import DBGEN_ROW_WIDTH_BYTES, ROWS_AT_SF1

#: Logical bytes per scale factor 1 (dbgen output is ~1 GB at SF 1).
BYTES_AT_SF1 = sum(ROWS_AT_SF1[t] * DBGEN_ROW_WIDTH_BYTES[t] for t in ROWS_AT_SF1)

#: Default physical scale: small enough for pure-Python execution, large
#: enough that per-query selectivities are meaningful.
DEFAULT_PHYSICAL_SCALE_FACTOR = 0.002


class TpchDataset:
    """A TPC-H dataset with decoupled logical and physical scales."""

    def __init__(
        self,
        scale_mib: float,
        physical_scale_factor: float | None = None,
        seed: int = 7,
    ):
        self.scale_mib = require_positive(scale_mib, "scale_mib")
        self.scale_factor = scale_mib * MIB / BYTES_AT_SF1
        if physical_scale_factor is None:
            physical_scale_factor = min(self.scale_factor, DEFAULT_PHYSICAL_SCALE_FACTOR)
        self.physical_scale_factor = require_positive(
            physical_scale_factor, "physical_scale_factor"
        )
        self.seed = seed

    @cached_property
    def tables(self) -> dict[str, Table]:
        """The physically generated tables."""
        return TpchGenerator(self.physical_scale_factor, self.seed).generate_all()

    @cached_property
    def catalog(self) -> Catalog:
        """A catalog over the physical tables (for the local executor)."""
        return Catalog(self.tables.values())

    @cached_property
    def physical_stats(self) -> dict[str, TableStats]:
        """Exact statistics of the physical tables."""
        return {name: compute_table_stats(t) for name, t in self.tables.items()}

    @cached_property
    def logical_stats(self) -> dict[str, TableStats]:
        """Statistics re-scaled to the logical size (what cost models see)."""
        out: dict[str, TableStats] = {}
        for name, physical in self.physical_stats.items():
            out[name] = self._rescale(name, physical)
        return out

    def logical_size_bytes(self, table_name: str) -> int:
        return self.logical_stats[table_name.lower()].size_bytes

    def logical_size_mib(self, table_name: str) -> float:
        return bytes_to_mib(self.logical_size_bytes(table_name))

    def _rescale(self, name: str, physical: TableStats) -> TableStats:
        if name in ("region", "nation"):
            return physical
        logical_rows = max(1, int(round(ROWS_AT_SF1[name] * self.scale_factor)))
        if name == "lineitem":
            # lineitem rows track orders x lines-per-order, keep the ratio.
            per_order = physical.row_count / max(
                1, self.physical_stats["orders"].row_count
            )
            logical_rows = max(
                1, int(round(ROWS_AT_SF1["orders"] * self.scale_factor * per_order))
            )
        row_ratio = logical_rows / max(1, physical.row_count)
        columns: dict[str, ColumnStats] = {}
        for column_name, stats in physical.columns.items():
            key_like = stats.distinct_count >= 0.8 * physical.row_count
            if key_like:
                scaled_max = stats.max_value
                if isinstance(stats.max_value, int):
                    scaled_max = max(1, int(stats.max_value * row_ratio))
                columns[column_name] = ColumnStats(
                    distinct_count=max(1, int(stats.distinct_count * row_ratio)),
                    null_fraction=stats.null_fraction,
                    min_value=stats.min_value,
                    max_value=scaled_max,
                )
            else:
                columns[column_name] = stats
        size_bytes = logical_rows * DBGEN_ROW_WIDTH_BYTES[name]
        return TableStats(logical_rows, size_bytes, columns)

    def __repr__(self) -> str:
        return (
            f"TpchDataset(scale_mib={self.scale_mib}, sf={self.scale_factor:.4f}, "
            f"physical_sf={self.physical_scale_factor})"
        )
