"""Tiny text grammar for TPC-H string columns.

dbgen builds comments from a grammar over a fixed vocabulary; we reproduce
the parts the workload's predicates touch.  Q13 filters orders on
``o_comment NOT LIKE '%special%requests%'``, so a controlled fraction of
order comments must contain the two words in that order.
"""

from __future__ import annotations

from repro.common.rng import RngStream

NOUNS = (
    "packages", "requests", "accounts", "deposits", "foxes", "ideas",
    "theodolites", "pinto beans", "instructions", "dependencies", "excuses",
    "platelets", "asymptotes", "courts", "dolphins", "multipliers",
)

VERBS = (
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost",
    "affix", "detect", "integrate", "maintain", "nod", "was", "lose", "run",
)

ADJECTIVES = (
    "special", "pending", "unusual", "express", "furious", "sly", "careful",
    "blithe", "quick", "fluffy", "slow", "quiet", "ruthless", "thin", "close",
)

ADVERBS = (
    "sometimes", "always", "never", "furiously", "slyly", "carefully",
    "blithely", "quickly", "fluffily", "slowly", "quietly", "ruthlessly",
)

P_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
CONTAINERS = tuple(
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
)

#: Fraction of order comments carrying the '%special%requests%' shape.
SPECIAL_REQUESTS_FRACTION = 0.12


def random_comment(rng: RngStream, min_words: int = 4, max_words: int = 9) -> str:
    """A grammar-shaped comment: adverb verb adjective noun, repeated."""
    word_count = int(rng.integers(min_words, max_words + 1))
    words = []
    for position in range(word_count):
        bucket = position % 4
        if bucket == 0:
            words.append(ADVERBS[int(rng.integers(0, len(ADVERBS)))])
        elif bucket == 1:
            words.append(VERBS[int(rng.integers(0, len(VERBS)))])
        elif bucket == 2:
            words.append(ADJECTIVES[int(rng.integers(0, len(ADJECTIVES)))])
        else:
            words.append(NOUNS[int(rng.integers(0, len(NOUNS)))])
    return " ".join(words)


def order_comment(rng: RngStream) -> str:
    """An order comment; a controlled fraction match '%special%requests%'."""
    comment = random_comment(rng)
    if rng.random() < SPECIAL_REQUESTS_FRACTION:
        filler = ADVERBS[int(rng.integers(0, len(ADVERBS)))]
        comment = f"{comment} special {filler} requests"
    return comment


def part_name(rng: RngStream) -> str:
    indices = rng.choice(len(PART_NAME_WORDS), size=5, replace=False)
    return " ".join(PART_NAME_WORDS[int(i)] for i in indices)


def part_type(rng: RngStream) -> str:
    return " ".join(
        (
            TYPE_SYLLABLE_1[int(rng.integers(0, len(TYPE_SYLLABLE_1)))],
            TYPE_SYLLABLE_2[int(rng.integers(0, len(TYPE_SYLLABLE_2)))],
            TYPE_SYLLABLE_3[int(rng.integers(0, len(TYPE_SYLLABLE_3)))],
        )
    )


def phone_number(rng: RngStream, nation_key: int) -> str:
    country = 10 + (nation_key % 25)
    local = rng.integers(100, 1000), rng.integers(100, 1000), rng.integers(1000, 10000)
    return f"{country}-{local[0]}-{local[1]}-{local[2]}"
