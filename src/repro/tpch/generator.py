"""Deterministic TPC-H data generator.

Generates the eight benchmark tables with specification-shaped value
distributions at an arbitrary (fractional) scale factor.  Generation is a
pure function of ``(seed, scale_factor)``: every table draws from its own
named random stream, so tables are independently reproducible.
"""

from __future__ import annotations

import datetime
import math

from repro.common.rng import RngStream
from repro.common.validation import require_positive
from repro.relational.table import Table
from repro.tpch import text
from repro.tpch.schema import ROWS_AT_SF1, tpch_schema

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

ORDER_DATE_MIN = datetime.date(1992, 1, 1)
ORDER_DATE_MAX = datetime.date(1998, 8, 2)


def rows_per_table(scale_factor: float) -> dict[str, int]:
    """Row counts at ``scale_factor`` (region/nation stay fixed)."""
    require_positive(scale_factor, "scale_factor")
    counts = {}
    for name, at_sf1 in ROWS_AT_SF1.items():
        if name in ("region", "nation"):
            counts[name] = at_sf1
        elif name == "lineitem":
            continue  # derived from orders during generation
        else:
            counts[name] = max(1, int(round(at_sf1 * scale_factor)))
    counts["lineitem"] = counts["orders"] * 4  # nominal; actual varies 1..7
    return counts


class TpchGenerator:
    """Generates TPC-H tables at a fractional scale factor."""

    def __init__(self, scale_factor: float, seed: int = 7):
        self.scale_factor = require_positive(scale_factor, "scale_factor")
        self.seed = seed
        self._counts = rows_per_table(scale_factor)

    def generate_all(self) -> dict[str, Table]:
        """Generate every table, keyed by lower-case name."""
        tables = {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": self.part(),
            "partsupp": self.partsupp(),
        }
        orders, lineitem = self.orders_and_lineitem()
        tables["orders"] = orders
        tables["lineitem"] = lineitem
        return tables

    # Individual tables ---------------------------------------------------

    def _stream(self, table: str) -> RngStream:
        return RngStream(self.seed, "tpch", table)

    def region(self) -> Table:
        rng = self._stream("region")
        rows = [
            [key, name, text.random_comment(rng)] for key, name in enumerate(REGIONS)
        ]
        return Table.from_rows("region", tpch_schema("region"), rows)

    def nation(self) -> Table:
        rng = self._stream("nation")
        rows = [
            [key, name, region_key, text.random_comment(rng)]
            for key, (name, region_key) in enumerate(NATIONS)
        ]
        return Table.from_rows("nation", tpch_schema("nation"), rows)

    def supplier(self) -> Table:
        rng = self._stream("supplier")
        rows = []
        for key in range(1, self._counts["supplier"] + 1):
            nation_key = int(rng.integers(0, len(NATIONS)))
            rows.append(
                [
                    key,
                    f"Supplier#{key:09d}",
                    _address(rng),
                    nation_key,
                    text.phone_number(rng, nation_key),
                    round(float(rng.uniform(-999.99, 9999.99)), 2),
                    text.random_comment(rng),
                ]
            )
        return Table.from_rows("supplier", tpch_schema("supplier"), rows)

    def customer(self) -> Table:
        rng = self._stream("customer")
        rows = []
        for key in range(1, self._counts["customer"] + 1):
            nation_key = int(rng.integers(0, len(NATIONS)))
            rows.append(
                [
                    key,
                    f"Customer#{key:09d}",
                    _address(rng),
                    nation_key,
                    text.phone_number(rng, nation_key),
                    round(float(rng.uniform(-999.99, 9999.99)), 2),
                    text.P_SEGMENTS[int(rng.integers(0, len(text.P_SEGMENTS)))],
                    text.random_comment(rng),
                ]
            )
        return Table.from_rows("customer", tpch_schema("customer"), rows)

    def part(self) -> Table:
        rng = self._stream("part")
        rows = []
        for key in range(1, self._counts["part"] + 1):
            brand = f"Brand#{int(rng.integers(1, 6))}{int(rng.integers(1, 6))}"
            retail_price = (90000 + (key % 20001) + 100 * (key % 1000)) / 100.0
            rows.append(
                [
                    key,
                    text.part_name(rng),
                    f"Manufacturer#{int(rng.integers(1, 6))}",
                    brand,
                    text.part_type(rng),
                    int(rng.integers(1, 51)),
                    text.CONTAINERS[int(rng.integers(0, len(text.CONTAINERS)))],
                    retail_price,
                    text.random_comment(rng),
                ]
            )
        return Table.from_rows("part", tpch_schema("part"), rows)

    def partsupp(self) -> Table:
        rng = self._stream("partsupp")
        supplier_count = self._counts["supplier"]
        rows = []
        for part_key in range(1, self._counts["part"] + 1):
            for replica in range(4):
                supp_key = 1 + (part_key + replica * max(1, supplier_count // 4)) % supplier_count
                rows.append(
                    [
                        part_key,
                        supp_key,
                        int(rng.integers(1, 10000)),
                        round(float(rng.uniform(1.0, 1000.0)), 2),
                        text.random_comment(rng),
                    ]
                )
        return Table.from_rows("partsupp", tpch_schema("partsupp"), rows)

    def orders_and_lineitem(self) -> tuple[Table, Table]:
        """Orders and their lineitems (generated together to share keys)."""
        rng = self._stream("orders")
        line_rng = self._stream("lineitem")
        customer_count = self._counts["customer"]
        part_count = self._counts["part"]
        supplier_count = self._counts["supplier"]
        date_span = (ORDER_DATE_MAX - ORDER_DATE_MIN).days

        order_rows = []
        line_rows = []
        for order_key in range(1, self._counts["orders"] + 1):
            cust_key = int(rng.integers(1, customer_count + 1))
            order_date = ORDER_DATE_MIN + datetime.timedelta(
                days=int(rng.integers(0, date_span + 1))
            )
            priority = text.PRIORITIES[int(rng.integers(0, len(text.PRIORITIES)))]
            line_count = int(line_rng.integers(1, 8))
            total_price = 0.0
            status_counts = [0, 0]  # fulfilled, open
            for line_number in range(1, line_count + 1):
                part_key = int(line_rng.integers(1, part_count + 1))
                supp_key = 1 + (part_key + line_number) % supplier_count
                quantity = float(line_rng.integers(1, 51))
                part_price = (90000 + (part_key % 20001) + 100 * (part_key % 1000)) / 100.0
                extended = round(quantity * part_price, 2)
                discount = round(float(line_rng.integers(0, 11)) / 100.0, 2)
                tax = round(float(line_rng.integers(0, 9)) / 100.0, 2)
                ship_date = order_date + datetime.timedelta(days=int(line_rng.integers(1, 122)))
                commit_date = order_date + datetime.timedelta(days=int(line_rng.integers(30, 91)))
                receipt_date = ship_date + datetime.timedelta(days=int(line_rng.integers(1, 31)))
                shipped = ship_date <= datetime.date(1995, 6, 17)
                return_flag = (
                    ("R" if line_rng.random() < 0.5 else "A") if shipped else "N"
                )
                line_status = "F" if shipped else "O"
                status_counts[0 if line_status == "F" else 1] += 1
                total_price += extended * (1 + tax) * (1 - discount)
                line_rows.append(
                    [
                        order_key,
                        part_key,
                        supp_key,
                        line_number,
                        quantity,
                        extended,
                        discount,
                        tax,
                        return_flag,
                        line_status,
                        ship_date,
                        commit_date,
                        receipt_date,
                        text.SHIP_INSTRUCTIONS[
                            int(line_rng.integers(0, len(text.SHIP_INSTRUCTIONS)))
                        ],
                        text.SHIP_MODES[int(line_rng.integers(0, len(text.SHIP_MODES)))],
                        text.random_comment(line_rng, 2, 5),
                    ]
                )
            if status_counts[1] == 0:
                order_status = "F"
            elif status_counts[0] == 0:
                order_status = "O"
            else:
                order_status = "P"
            order_rows.append(
                [
                    order_key,
                    cust_key,
                    order_status,
                    round(total_price, 2),
                    order_date,
                    priority,
                    f"Clerk#{int(rng.integers(1, 1001)):09d}",
                    0,
                    text.order_comment(rng),
                ]
            )
        orders = Table.from_rows("orders", tpch_schema("orders"), order_rows)
        lineitem = Table.from_rows("lineitem", tpch_schema("lineitem"), line_rows)
        return orders, lineitem


def _address(rng: RngStream) -> str:
    length = int(rng.integers(10, 30))
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"
    return "".join(alphabet[int(i)] for i in rng.integers(0, len(alphabet), size=length))
