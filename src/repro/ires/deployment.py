"""Deployment: which engine at which cloud stores each table.

In the paper's scenario, each hospital's data lives where that hospital's
cloud/provider is — e.g. Patient in Hive on cloud A, GeneralInfo in
PostgreSQL on cloud B.  The deployment is fixed per federation; what the
optimizer can choose is *where operators execute*, not where base data
lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.plans.physical import EnginePlacement, Placement


@dataclass(frozen=True)
class Deployment:
    """table name -> engine/site holding it."""

    table_engines: dict[str, EnginePlacement]

    def placement_for(self, execution: EnginePlacement) -> Placement:
        """A QEP placement: stored tables + chosen execution engine."""
        return Placement(tables=dict(self.table_engines), execution=execution)

    def site_of(self, table_name: str) -> str:
        return self._lookup(table_name).site

    def engine_of(self, table_name: str) -> str:
        return self._lookup(table_name).engine

    def _lookup(self, table_name: str) -> EnginePlacement:
        try:
            return self.table_engines[table_name.lower()]
        except KeyError:
            known = ", ".join(sorted(self.table_engines))
            raise PlanError(
                f"table {table_name!r} is not deployed; deployed: {known}"
            ) from None

    def execution_options(self, tables: tuple[str, ...]) -> list[EnginePlacement]:
        """Engines eligible to execute a query over ``tables``.

        IReS runs the join at one of the engines holding a participating
        table (data is shipped to it).
        """
        seen: dict[tuple[str, str], EnginePlacement] = {}
        for table in tables:
            placement = self._lookup(table)
            seen[(placement.engine, placement.site)] = placement
        return list(seen.values())
