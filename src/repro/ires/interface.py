"""IReS Interface module: query + policy intake (Figure 1, first box).

Receives "information on data and operators": parses the SQL, binds it
against the federation catalog, checks that every referenced base table
is deployed, and hands a validated :class:`QueryRequest` to the rest of
the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.ires.deployment import Deployment
from repro.ires.policy import UserPolicy
from repro.plans.binder import plan_sql
from repro.plans.catalog import Catalog
from repro.plans.logical import LogicalPlan, Scan
from repro.plans.optimizer import optimize


@dataclass(frozen=True)
class QueryRequest:
    """A validated submission."""

    sql: str
    plan: LogicalPlan
    tables: tuple[str, ...]
    policy: UserPolicy


class Interface:
    """Front door of the platform."""

    def __init__(self, catalog: Catalog, deployment: Deployment):
        self._catalog = catalog
        self._deployment = deployment

    def receive(self, sql: str, policy: UserPolicy | None = None) -> QueryRequest:
        """Parse, bind, optimize and validate one query submission."""
        plan = optimize(plan_sql(sql, self._catalog))
        tables = tuple(
            sorted({node.table_name.lower() for node in plan.walk() if isinstance(node, Scan)})
        )
        if not tables:
            raise PlanError("query references no base tables")
        for table in tables:
            self._deployment.site_of(table)  # raises if not deployed
        return QueryRequest(sql, plan, tables, policy or UserPolicy())
