"""QEP space enumeration (paper Example 3.1).

A logical plan spawns many *equivalent QEPs*: the same operator tree run
at a different engine, or on a different cluster configuration.  The
enumerator builds that space as the cross product of

* execution engine/site (one of the engines holding a participating
  table), and
* node count per participating site (instance types are fixed per site
  by the federation's deployment, as in the paper's testbed).

Example 3.1's headline number — 70 vCPUs x 260 GB of memory = 18,200
equivalent configurations for a single plan — is exposed verbatim by
:func:`vm_configuration_count`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cloud.federation import CloudFederation
from repro.cloud.vm import Cluster
from repro.common.units import bytes_to_mib
from repro.common.validation import require, require_positive
from repro.ires.deployment import Deployment
from repro.plans.logical import LogicalPlan
from repro.plans.physical import EnginePlacement, Placement, profile_plan
from repro.plans.statistics import TableStats


@dataclass
class QepCandidate:
    """One equivalent QEP: execution choice + cluster configuration."""

    query_key: str
    placement: Placement
    clusters: dict[str, Cluster]
    features: dict[str, float]

    @property
    def execution(self) -> EnginePlacement:
        return self.placement.execution

    def describe(self) -> str:
        nodes = ", ".join(
            f"{site}={cluster.node_count}" for site, cluster in sorted(self.clusters.items())
        )
        return f"{self.query_key} @ {self.execution.engine}/{self.execution.site} [{nodes}]"


def vm_configuration_count(vcpu_pool: int = 70, memory_pool_gb: int = 260) -> int:
    """Example 3.1: |configurations| = vCPU pool x memory pool.

    "If the pool of resources includes 70 vCPU and 260GB of memory, the
    number of different configurations to execute this query is thus
    70 x 260 = 18,200."
    """
    require_positive(vcpu_pool, "vcpu_pool")
    require_positive(memory_pool_gb, "memory_pool_gb")
    return vcpu_pool * memory_pool_gb


def vm_configuration_space(vcpu_pool: int, memory_pool_gb: int) -> list[tuple[int, int]]:
    """All (vcpus, memory_gb) pairs of Example 3.1's space."""
    return list(itertools.product(range(1, vcpu_pool + 1), range(1, memory_pool_gb + 1)))


class QepEnumerator:
    """Enumerates :class:`QepCandidate` for a bound plan."""

    def __init__(
        self,
        federation: CloudFederation,
        deployment: Deployment,
        instance_types: dict[str, str],
        node_options: dict[str, list[int]],
        fixed_execution: EnginePlacement | None = None,
    ):
        """``instance_types``/``node_options`` are keyed by site name.

        With ``fixed_execution`` the QEP space is restricted to one
        execution engine — the per-engine profiling mode IReS models are
        built in (one model per operator per engine), which also drops
        the engine-indicator features (none are needed).
        """
        require(bool(instance_types), "instance_types must not be empty")
        require(bool(node_options), "node_options must not be empty")
        self.federation = federation
        self.deployment = deployment
        self.instance_types = {k.lower(): v for k, v in instance_types.items()}
        self.node_options = {k.lower(): list(v) for k, v in node_options.items()}
        self.fixed_execution = fixed_execution

    def feature_names(self, tables: tuple[str, ...]) -> tuple[str, ...]:
        """Feature vector layout for a query over ``tables``.

        Matches the paper's Example 2.1 — one size per table (MiB of data
        surviving that table's filters) + one node count per site — plus
        a one-hot indicator per execution engine beyond the first (the
        "type of virtual machines / system information" the paper's §3
        allows as model variables): without it no linear model could
        separate a Hive execution from a PostgreSQL one.
        """
        names = [f"size_{table.lower()}_mib" for table in tables]
        names.extend(f"nodes_{site}" for site in self._sites(tables))
        names.extend(
            f"exec_{placement.engine}_{placement.site}"
            for placement in self._execution_indicator_options(tables)
        )
        return tuple(names)

    def _sites(self, tables: tuple[str, ...]) -> list[str]:
        return sorted({self.deployment.site_of(t).lower() for t in tables})

    def _execution_options(self, tables: tuple[str, ...]) -> list[EnginePlacement]:
        if self.fixed_execution is not None:
            return [self.fixed_execution]
        return self.deployment.execution_options(tables)

    def _execution_indicator_options(self, tables: tuple[str, ...]) -> list[EnginePlacement]:
        """All but one execution option get an indicator (k-1 encoding)."""
        options = sorted(
            self._execution_options(tables),
            key=lambda p: (p.engine, p.site),
        )
        return options[1:]

    def enumerate(
        self,
        query_key: str,
        plan: LogicalPlan,
        stats: dict[str, TableStats],
        tables: tuple[str, ...],
        constraint=None,
    ) -> list[QepCandidate]:
        """The QEP space of one query instance.

        ``constraint`` is an optional governance
        :class:`~repro.governance.policy.PlanConstraint`: execution
        options whose site it does not permit are dropped *before* any
        candidate is built, so the optimizer never costs a forbidden
        plan.  The feature layout (k-1 execution indicators over the
        *unconstrained* option set) is deliberately not filtered — it is
        fixed at template registration and shared with the fitted
        models; a constrained request simply sets fewer indicators.
        ``None`` (the default, and the permissive-governance path) is
        byte-for-byte the historical behavior.
        """
        sites = self._sites(tables)
        per_site_options = []
        for site in sites:
            options = self.node_options.get(site)
            require(options is not None and len(options) > 0,
                    f"no node options for site {site!r}")
            per_site_options.append([(site, count) for count in options])

        candidates: list[QepCandidate] = []
        indicator_options = self._execution_indicator_options(tables)
        executions = self._execution_options(tables)
        if constraint is not None:
            executions = [e for e in executions if constraint.permits(e.site)]
        for execution in executions:
            placement = self.deployment.placement_for(execution)
            # Sizes do not depend on node counts: profile once per placement.
            profile = profile_plan(plan, stats, placement)
            size_features = {
                f"size_{table.lower()}_mib": bytes_to_mib(
                    profile.effective_table_bytes.get(table.lower(), 0.0)
                )
                for table in tables
            }
            for indicator in indicator_options:
                flag = 1.0 if indicator == execution else 0.0
                size_features[f"exec_{indicator.engine}_{indicator.site}"] = flag
            for combo in itertools.product(*per_site_options):
                clusters = {
                    site: self.federation.provision(
                        site, self.instance_types[site], count
                    )
                    for site, count in combo
                }
                features = dict(size_features)
                for site, count in combo:
                    features[f"nodes_{site}"] = float(count)
                candidates.append(
                    QepCandidate(
                        query_key=query_key,
                        placement=placement,
                        clusters=clusters,
                        features=features,
                    )
                )
        return candidates
