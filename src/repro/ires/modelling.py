"""IReS Modelling module with DREAM plugged in (Figure 1 / Figure 2).

Stock IReS trains several learners on the full (or windowed) history and
keeps the best — the :class:`BmlStrategy`.  The paper replaces this with
:class:`DreamStrategy`: per-metric MLR over a dynamically grown recent
window (Figure 2: training set -> DREAM (R^2) -> new training set ->
Modelling).

Both strategies produce a :class:`FittedCostModel` so the optimizer does
not care which estimator is active.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EstimationError
from repro.core.cache import ModelCache
from repro.core.cost_model import MultiCostModel
from repro.core.dream import DreamEstimator, DreamResult, OnlineDreamEstimator
from repro.core.history import ExecutionHistory
from repro.ml.base import Regressor
from repro.ml.selection import BestModelSelector, ObservationWindow


@dataclass(frozen=True)
class FittedCostModel:
    """A cost model plus provenance of how it was fitted."""

    model: MultiCostModel
    strategy: str
    #: Observations actually used for training (per the strategy).
    training_size: int
    #: DREAM only: achieved per-metric R^2.
    r_squared: dict[str, float] = field(default_factory=dict)
    #: BML only: winning algorithm per metric.
    winners: dict[str, str] = field(default_factory=dict)

    def predict(self, features) -> dict[str, float]:
        return self.model.predict(features)

    def predict_batch(self, features_matrix) -> dict[str, np.ndarray]:
        """Cost a whole candidate set in one vectorised call per metric."""
        return self.model.predict_batch(features_matrix)


class EstimationStrategy(ABC):
    """How the Modelling module turns history into a cost model."""

    name: str = "abstract"

    @abstractmethod
    def fit(self, history: ExecutionHistory) -> FittedCostModel:
        """Fit on (a window of) ``history``."""


class _ClampedDreamModel(Regressor):
    """Adapter: route predictions through DreamResult's guard band."""

    def __init__(self, result: DreamResult, metric: str):
        super().__init__()
        self.name = f"dream-mlr[{metric}]"
        self._result = result
        self._metric = metric
        self._fitted = True
        self._dimension = len(result.feature_names)

    def _fit(self, features, targets):  # pragma: no cover - never retrained
        raise EstimationError("clamped DREAM models are fitted by DreamEstimator")

    def _predict(self, features: np.ndarray) -> np.ndarray:
        # One design-matrix multiplication + vectorised clamp for ALL
        # rows (the old implementation looped Python-side per row).
        return self._result.predict_metric_batch(self._metric, features)


#: Default bound on live per-history DREAM engines.  An evicted engine
#: is rebuilt from the history on its next fit, so this trades one
#: incremental-speedup miss for bounded memory in long-running
#: multi-tenant deployments.
DEFAULT_ENGINE_CAPACITY = 256


class DreamStrategy(EstimationStrategy):
    """DREAM: dynamic-window MLR per metric (Algorithm 1).

    ``incremental=True`` (default) keeps one
    :class:`~repro.core.dream.OnlineDreamEstimator` per registered
    history, so repeated fits between executions are cache hits and each
    window-widening step is a rank-one update.  ``incremental=False``
    falls back to the batch reference estimator on every call.

    Engines live in a bounded :class:`~repro.core.cache.ModelCache`
    (LRU + optional idle TTL) instead of a process-lifetime map: a
    long-running federation can register far more templates than are
    hot, and an evicted engine simply refits from its history — same
    window, same predictions — on the next call.  Pass a shared
    ``engine_cache`` to pool the budget across strategies, or rely on
    the per-strategy default (capacity ``DEFAULT_ENGINE_CAPACITY``, no
    TTL).
    """

    name = "dream"

    def __init__(
        self,
        r2_required: float = 0.8,
        max_window: int | None = None,
        incremental: bool = True,
        engine_cache: ModelCache | None = None,
    ):
        self._estimator = DreamEstimator(r2_required, max_window)
        self.incremental = incremental
        self.r2_required = r2_required
        self.max_window = max_window
        self.engine_cache = (
            engine_cache
            if engine_cache is not None
            else ModelCache(capacity=DEFAULT_ENGINE_CAPACITY)
        )

    def _engine_for(self, history: ExecutionHistory) -> OnlineDreamEstimator:
        # Keyed by id() with the history as the anchor: the cache keeps
        # the history alive while the entry lives, and a recycled id can
        # never alias another history's engine.
        return self.engine_cache.get_or_create(
            id(history),
            lambda: OnlineDreamEstimator(self.r2_required, self.max_window),
            anchor=history,
        )

    def fit(self, history: ExecutionHistory) -> FittedCostModel:
        if self.incremental:
            result = self._engine_for(history).fit(history)
        else:
            result = self._estimator.fit(history.datasets())
        models = {
            metric: _ClampedDreamModel(result, metric) for metric in result.models
        }
        model = MultiCostModel(models, history.feature_names)
        return FittedCostModel(
            model=model,
            strategy=self.name,
            training_size=result.window_size,
            r_squared=dict(result.r_squared),
        )


class BmlStrategy(EstimationStrategy):
    """Stock IReS: best-of-pool per metric over an observation window."""

    def __init__(self, window: ObservationWindow | None = None):
        self.window = window if window is not None else ObservationWindow(None)
        self.name = self.window.label()

    def fit(self, history: ExecutionHistory) -> FittedCostModel:
        models = {}
        winners = {}
        training_size = 0
        for metric in history.metric_names:
            data = self.window.apply(history.dataset(metric))
            if data.size == 0:
                raise EstimationError(f"empty training window for metric {metric!r}")
            selector = BestModelSelector()
            best = selector.fit(data)
            models[metric] = best
            winners[metric] = selector.best_name
            training_size = data.size
        return FittedCostModel(
            model=MultiCostModel(models, history.feature_names),
            strategy=self.name,
            training_size=training_size,
            winners=winners,
        )


class Modelling:
    """The Modelling box of Figure 1: strategy + per-query histories."""

    def __init__(self, strategy: EstimationStrategy):
        self.strategy = strategy
        self._histories: dict[str, ExecutionHistory] = {}

    def register(self, query_key: str, history: ExecutionHistory) -> None:
        self._histories[query_key] = history

    def deregister(self, query_key: str) -> None:
        """Drop a query's history if present (shard migration moves the
        replica elsewhere; unknown keys are a no-op by design)."""
        self._histories.pop(query_key, None)

    def history(self, query_key: str) -> ExecutionHistory:
        try:
            return self._histories[query_key]
        except KeyError:
            known = ", ".join(sorted(self._histories)) or "<none>"
            raise EstimationError(
                f"no history registered for query {query_key!r}; have: {known}"
            ) from None

    def fit(self, query_key: str) -> FittedCostModel:
        return self.strategy.fit(self.history(query_key))
