"""IReS Executor: runs the chosen QEP and feeds the history.

Bridges the optimizer's choice to the engine simulators and logs the
measured costs as a new observation — closing the loop of Figure 2
(executions continuously refresh the training set DREAM draws from).
Logging bumps ``ExecutionHistory.version``, which is the signal the
incremental estimator keys on: between executions every Modelling fit
is a cache hit; after one, only the new observation is folded in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.history import ExecutionHistory
from repro.engines.metrics import ExecutionMetrics
from repro.engines.simulate import MultiEngineSimulator, QueryExecution
from repro.ires.enumerator import QepCandidate
from repro.plans.logical import LogicalPlan
from repro.plans.statistics import TableStats


class Executor:
    """Runs QEP candidates on the federation simulator."""

    def __init__(self, simulator: MultiEngineSimulator):
        self.simulator = simulator

    def run(
        self,
        candidate: QepCandidate,
        plan: LogicalPlan,
        stats: dict[str, TableStats],
        tick: int,
        history: ExecutionHistory | None = None,
    ) -> QueryExecution:
        """Execute and (optionally) log into ``history``."""
        execution = self.simulator.execute(
            plan, stats, candidate.placement, candidate.clusters, tick
        )
        if history is not None:
            # ExecutionHistory.append keeps only the metrics the history
            # tracks and bumps its version for the incremental estimator.
            history.append(tick, candidate.features, self.costs_of(execution.metrics))
        return execution

    @staticmethod
    def costs_of(metrics: ExecutionMetrics) -> dict[str, float]:
        """Metric dict in the vocabulary the Modelling module trains on."""
        return {
            "time": metrics.execution_time_s,
            "money": metrics.monetary_cost_usd,
            "intermediate": metrics.intermediate_bytes,
            "energy": metrics.energy_joules,
        }
