"""User query policies: weights and constraints over cost metrics.

The paper's final selection (Algorithm 2) takes a weight vector S and a
constraint vector B; a policy bundles both with the metric order they
refer to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class UserPolicy:
    """Preferences of the submitting user."""

    #: Metric order (must be metrics the Modelling module can predict).
    metrics: tuple[str, ...] = ("time", "money")
    #: Relative importance of each metric (normalised downstream).
    weights: tuple[float, ...] = (0.5, 0.5)
    #: Optional upper bounds (same order); None = unconstrained.
    constraints: tuple[float | None, ...] | None = None

    def __post_init__(self):
        if not self.metrics:
            raise ValidationError("policy needs at least one metric")
        if len(self.weights) != len(self.metrics):
            raise ValidationError(
                f"{len(self.weights)} weights for {len(self.metrics)} metrics"
            )
        if any(w < 0 for w in self.weights):
            raise ValidationError("weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValidationError("at least one weight must be positive")
        if self.constraints is not None and len(self.constraints) != len(self.metrics):
            raise ValidationError(
                f"{len(self.constraints)} constraints for {len(self.metrics)} metrics"
            )

    def reweighted(self, weights: tuple[float, ...]) -> "UserPolicy":
        """Same policy with different weights (Figure 3's scenario)."""
        return UserPolicy(self.metrics, weights, self.constraints)


TIME_ONLY = UserPolicy(metrics=("time",), weights=(1.0,))
BALANCED = UserPolicy(metrics=("time", "money"), weights=(0.5, 0.5))
MONEY_SAVER = UserPolicy(metrics=("time", "money"), weights=(0.1, 0.9))
