"""IReS Multi-Objective Optimizer (Figure 1, third box; Figure 3 left).

Predicts the cost vector of every candidate QEP with the Modelling
module's fitted model and computes a Pareto plan set — exhaustively when
the space is small, with NSGA-II (or NSGA-G) when it is large (Example
3.1 scale).  ``choose`` applies Algorithm 2 to pick the final plan under
the user policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.ires.enumerator import QepCandidate
from repro.ires.modelling import FittedCostModel
from repro.ires.policy import UserPolicy
from repro.moqp.nsga2 import Nsga2, Nsga2Config
from repro.moqp.nsga_g import NsgaG, NsgaGConfig
from repro.moqp.pareto import pareto_front_indices
from repro.moqp.problem import Candidate, EnumeratedProblem
from repro.moqp.selection import best_in_pareto


@dataclass(frozen=True)
class OptimizerConfig:
    #: "exact", "nsga2" or "nsga-g".
    algorithm: str = "exact"
    #: Candidate-count threshold above which "exact" falls back to NSGA-II.
    exact_limit: int = 2048
    nsga2: Nsga2Config = Nsga2Config()
    nsga_g: NsgaGConfig = NsgaGConfig()

    def __post_init__(self):
        if self.algorithm not in ("exact", "nsga2", "nsga-g"):
            raise ValidationError(f"unknown algorithm {self.algorithm!r}")


class MultiObjectiveOptimizer:
    """Pareto-set construction + Algorithm 2 selection."""

    def __init__(self, config: OptimizerConfig | None = None):
        self.config = config or OptimizerConfig()

    def build_problem(
        self,
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
    ) -> EnumeratedProblem:
        def evaluate(candidate: QepCandidate):
            prediction = cost_model.predict(
                cost_model.model.features_dict_to_vector(candidate.features)
            )
            return tuple(prediction[metric] for metric in metrics)

        return EnumeratedProblem(candidates, evaluate, len(metrics))

    @staticmethod
    def candidate_matrix(
        candidates: list[QepCandidate], cost_model: FittedCostModel
    ) -> np.ndarray:
        """The (n, L) feature matrix of a candidate set.

        Building this is the only per-candidate Python loop left on the
        costing path; a serving layer that re-costs the same QEP space
        every burst should build it once and pass it back in through
        ``features_matrix=``.
        """
        if not candidates:  # same contract as EnumeratedProblem
            raise ValidationError("problem needs at least one candidate")
        return np.array(
            [
                cost_model.model.features_dict_to_vector(candidate.features)
                for candidate in candidates
            ],
            dtype=float,
        ).reshape(len(candidates), -1)

    @staticmethod
    def evaluate_all_batched(
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> list[Candidate]:
        """Exhaustive evaluation through the batched prediction path.

        One (n, L) feature matrix, one ``predict_batch`` call — this is
        how an Example 3.1-scale space (thousands of equivalent QEPs) is
        costed without a per-plan Python round trip.  ``features_matrix``
        optionally supplies the matrix precomputed (it must be row-
        aligned with ``candidates``).
        """
        if not candidates:  # same contract as EnumeratedProblem
            raise ValidationError("problem needs at least one candidate")
        if features_matrix is None:
            features = MultiObjectiveOptimizer.candidate_matrix(candidates, cost_model)
        else:
            features = np.asarray(features_matrix, dtype=float)
            if features.shape[0] != len(candidates):
                raise ValidationError(
                    f"features_matrix has {features.shape[0]} rows for "
                    f"{len(candidates)} candidates"
                )
        objectives = cost_model.model.predict_matrix(features, metrics)
        return [
            Candidate(candidate, tuple(map(float, row)))
            for candidate, row in zip(candidates, objectives)
        ]

    def pareto_set(
        self,
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> list[Candidate]:
        """The (approximate) Pareto plan set under predicted costs."""
        algorithm = self.config.algorithm
        if algorithm == "exact" and len(candidates) > self.config.exact_limit:
            algorithm = "nsga2"
        if algorithm == "exact":
            evaluated = self.evaluate_all_batched(
                candidates, cost_model, metrics, features_matrix
            )
            front = pareto_front_indices([c.objectives for c in evaluated])
            return [evaluated[i] for i in front]
        problem = self.build_problem(candidates, cost_model, metrics)
        if algorithm == "nsga2":
            return Nsga2(self.config.nsga2).optimise(problem)
        return NsgaG(self.config.nsga_g).optimise(problem)

    @staticmethod
    def choose(pareto_set: list[Candidate], policy: UserPolicy) -> Candidate:
        """Algorithm 2: constraints B, then minimum weighted sum S."""
        return best_in_pareto(pareto_set, policy.weights, policy.constraints)
