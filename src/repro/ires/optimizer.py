"""IReS Multi-Objective Optimizer (Figure 1, third box; Figure 3 left).

Predicts the cost vector of every candidate QEP with the Modelling
module's fitted model and computes a Pareto plan set — exhaustively when
the space is small, with NSGA-II (or NSGA-G) when it is large (Example
3.1 scale).  ``choose`` applies Algorithm 2 to pick the final plan under
the user policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.ires.enumerator import QepCandidate
from repro.ires.modelling import FittedCostModel
from repro.ires.policy import UserPolicy
from repro.moqp.nsga2 import Nsga2, Nsga2Config
from repro.moqp.nsga_g import NsgaG, NsgaGConfig
from repro.moqp.pareto import pareto_front_indices
from repro.moqp.problem import Candidate, EnumeratedProblem
from repro.moqp.selection import best_in_pareto


#: Default candidate-count ceiling for exhaustive Pareto search.  The
#: vectorized front scan handles the full Example 3.1 space (70 vCPU x
#: 260 GB = 18,200 equivalent QEPs) in milliseconds, so the default
#: comfortably covers it; genetic fallback is for spaces beyond that.
DEFAULT_EXACT_LIMIT = 32_768


@dataclass(frozen=True)
class ParetoSearch:
    """A Pareto plan set plus how it was actually computed.

    The ``exact -> nsga2`` degradation above ``exact_limit`` used to be
    silent; ``algorithm_used`` (and the ``exact_fallback`` flag) make it
    observable all the way up to :class:`SubmissionReport`.
    """

    pareto_set: list[Candidate]
    #: Algorithm the configuration asked for.
    algorithm: str
    #: Algorithm that actually ran ("exact", "nsga2" or "nsga-g").
    algorithm_used: str
    candidate_count: int

    @property
    def exact_fallback(self) -> bool:
        return self.algorithm_used != self.algorithm


@dataclass(frozen=True)
class OptimizerConfig:
    #: "exact", "nsga2" or "nsga-g".
    algorithm: str = "exact"
    #: Candidate-count threshold above which "exact" falls back to NSGA-II.
    exact_limit: int = DEFAULT_EXACT_LIMIT
    nsga2: Nsga2Config = Nsga2Config()
    nsga_g: NsgaGConfig = NsgaGConfig()

    def __post_init__(self):
        if self.algorithm not in ("exact", "nsga2", "nsga-g"):
            raise ValidationError(f"unknown algorithm {self.algorithm!r}")


class MultiObjectiveOptimizer:
    """Pareto-set construction + Algorithm 2 selection."""

    def __init__(self, config: OptimizerConfig | None = None):
        self.config = config or OptimizerConfig()

    def build_problem(
        self,
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> EnumeratedProblem:
        """An :class:`EnumeratedProblem` with a matrix evaluation backend.

        Populations evaluate through one ``predict_matrix`` call over the
        candidates' feature rows (``features_matrix`` optionally supplies
        them precomputed, row-aligned with ``candidates``); the scalar
        per-candidate path is retained as the equivalence oracle and for
        problems built elsewhere.
        """
        model = cost_model.model

        def evaluate(candidate: QepCandidate):
            prediction = cost_model.predict(
                model.features_dict_to_vector(candidate.features)
            )
            return tuple(prediction[metric] for metric in metrics)

        if features_matrix is not None:
            features = self._checked_features(candidates, features_matrix)
        else:
            features = None

        def evaluate_batch(indices):
            index_list = list(indices)
            if features is not None:
                rows = features[index_list]
            else:
                rows = np.array(
                    [
                        model.features_dict_to_vector(candidates[i].features)
                        for i in index_list
                    ],
                    dtype=float,
                ).reshape(len(index_list), -1)
            return model.predict_matrix(rows, metrics)

        return EnumeratedProblem(
            candidates, evaluate, len(metrics), evaluate_batch=evaluate_batch
        )

    @staticmethod
    def candidate_matrix(
        candidates: list[QepCandidate], cost_model: FittedCostModel
    ) -> np.ndarray:
        """The (n, L) feature matrix of a candidate set.

        Building this is the only per-candidate Python loop left on the
        costing path; a serving layer that re-costs the same QEP space
        every burst should build it once and pass it back in through
        ``features_matrix=``.
        """
        if not candidates:  # same contract as EnumeratedProblem
            raise ValidationError("problem needs at least one candidate")
        return np.array(
            [
                cost_model.model.features_dict_to_vector(candidate.features)
                for candidate in candidates
            ],
            dtype=float,
        ).reshape(len(candidates), -1)

    @staticmethod
    def _checked_features(
        candidates: list[QepCandidate], features_matrix: np.ndarray
    ) -> np.ndarray:
        features = np.asarray(features_matrix, dtype=float)
        if features.shape[0] != len(candidates):
            raise ValidationError(
                f"features_matrix has {features.shape[0]} rows for "
                f"{len(candidates)} candidates"
            )
        return features

    @staticmethod
    def evaluate_all_batched(
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> list[Candidate]:
        """Exhaustive evaluation through the batched prediction path.

        One (n, L) feature matrix, one ``predict_batch`` call — this is
        how an Example 3.1-scale space (thousands of equivalent QEPs) is
        costed without a per-plan Python round trip.  ``features_matrix``
        optionally supplies the matrix precomputed (it must be row-
        aligned with ``candidates``).
        """
        if not candidates:  # same contract as EnumeratedProblem
            raise ValidationError("problem needs at least one candidate")
        if features_matrix is None:
            features = MultiObjectiveOptimizer.candidate_matrix(candidates, cost_model)
        else:
            features = MultiObjectiveOptimizer._checked_features(
                candidates, features_matrix
            )
        objectives = cost_model.model.predict_matrix(features, metrics)
        return [
            Candidate(candidate, tuple(map(float, row)))
            for candidate, row in zip(candidates, objectives)
        ]

    def pareto_search(
        self,
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> ParetoSearch:
        """Pareto-set construction with provenance of the algorithm used.

        ``"exact"`` above ``exact_limit`` candidates degrades to NSGA-II;
        the outcome records that (``algorithm_used``/``exact_fallback``)
        instead of hiding it.  The precomputed ``features_matrix`` is
        threaded through every path — the exhaustive scan and the
        genetic problems alike evaluate through one matrix prediction.
        """
        requested = self.config.algorithm
        algorithm = requested
        if algorithm == "exact" and len(candidates) > self.config.exact_limit:
            algorithm = "nsga2"
        if algorithm == "exact":
            evaluated = self.evaluate_all_batched(
                candidates, cost_model, metrics, features_matrix
            )
            front = pareto_front_indices([c.objectives for c in evaluated])
            pareto = [evaluated[i] for i in front]
        else:
            problem = self.build_problem(
                candidates, cost_model, metrics, features_matrix=features_matrix
            )
            if algorithm == "nsga2":
                pareto = Nsga2(self.config.nsga2).optimise(problem)
            else:
                pareto = NsgaG(self.config.nsga_g).optimise(problem)
        return ParetoSearch(
            pareto_set=pareto,
            algorithm=requested,
            algorithm_used=algorithm,
            candidate_count=len(candidates),
        )

    def pareto_set(
        self,
        candidates: list[QepCandidate],
        cost_model: FittedCostModel,
        metrics: tuple[str, ...],
        features_matrix: np.ndarray | None = None,
    ) -> list[Candidate]:
        """The (approximate) Pareto plan set under predicted costs."""
        return self.pareto_search(
            candidates, cost_model, metrics, features_matrix=features_matrix
        ).pareto_set

    @staticmethod
    def choose(pareto_set: list[Candidate], policy: UserPolicy) -> Candidate:
        """Algorithm 2: constraints B, then minimum weighted sum S."""
        return best_in_pareto(pareto_set, policy.weights, policy.constraints)
