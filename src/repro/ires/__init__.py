"""IReS: Intelligent Multi-Engine Resource Scheduler (re-implementation).

The open-source platform the paper builds MIDAS and DREAM on (§2.4,
Figure 1).  Modules mirror the paper's architecture:

* :mod:`repro.ires.interface` — receives the query and the user policy;
* :mod:`repro.ires.modelling` — predicts cost vectors (stock BML
  selection or DREAM);
* :mod:`repro.ires.enumerator` + :mod:`repro.ires.optimizer` — build the
  QEP space, predict costs, compute a Pareto plan set and select the
  final plan with Algorithm 2;
* :mod:`repro.ires.executor` — runs the chosen QEP on the engine
  simulators and feeds the execution history;
* :mod:`repro.ires.platform` — the facade wiring everything together.
"""

from repro.ires.policy import UserPolicy
from repro.ires.deployment import Deployment
from repro.ires.interface import Interface, QueryRequest
from repro.ires.modelling import BmlStrategy, DreamStrategy, Modelling, FittedCostModel
from repro.ires.enumerator import QepCandidate, QepEnumerator, vm_configuration_count
from repro.ires.optimizer import MultiObjectiveOptimizer, OptimizerConfig
from repro.ires.executor import Executor
from repro.ires.platform import IReSPlatform, SubmissionResult

__all__ = [
    "UserPolicy",
    "Deployment",
    "Interface",
    "QueryRequest",
    "BmlStrategy",
    "DreamStrategy",
    "Modelling",
    "FittedCostModel",
    "QepCandidate",
    "QepEnumerator",
    "vm_configuration_count",
    "MultiObjectiveOptimizer",
    "OptimizerConfig",
    "Executor",
    "IReSPlatform",
    "SubmissionResult",
]
