"""The IReS platform facade: Figure 1 wired end to end.

``submit`` is the full pipeline of the paper:

1. **Interface** validates the query and policy;
2. **Modelling** fits the active estimation strategy (DREAM or BML) on
   the query's execution history;
3. the **enumerator** builds the QEP space and the **Multi-Objective
   Optimizer** computes a Pareto plan set over predicted cost vectors;
4. **BestInPareto** (Algorithm 2) picks the final QEP under the policy;
5. the **Executor** runs it on the engine simulators and appends the
   measured costs to the history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import EstimationError, ValidationError
from repro.core.history import ExecutionHistory
from repro.engines.simulate import MultiEngineSimulator, QueryExecution
from repro.ires.deployment import Deployment
from repro.ires.enumerator import QepCandidate, QepEnumerator
from repro.ires.executor import Executor
from repro.ires.interface import Interface, QueryRequest
from repro.ires.modelling import EstimationStrategy, FittedCostModel, Modelling
from repro.ires.optimizer import MultiObjectiveOptimizer, OptimizerConfig
from repro.ires.policy import UserPolicy
from repro.moqp.problem import Candidate
from repro.plans.catalog import Catalog
from repro.plans.statistics import TableStats
from repro.tpch.queries import QueryTemplate


@dataclass
class SubmissionResult:
    """Everything the platform decided and observed for one submission."""

    request: QueryRequest
    cost_model: FittedCostModel
    candidate_count: int
    pareto_set: list[Candidate]
    chosen: Candidate
    #: ``None`` for plan-only submissions (``execute=False``).
    execution: QueryExecution | None
    #: MOQP algorithm that actually computed the Pareto set ("exact",
    #: "nsga2" or "nsga-g" — NSGA-II when "exact" overflowed its limit).
    #: "unknown" only for results constructed outside the pipeline.
    moqp_algorithm: str = "unknown"
    #: True when a configured "exact" search silently degraded to NSGA-II
    #: because the QEP space exceeded ``exact_limit``.
    moqp_exact_fallback: bool = False

    @property
    def chosen_candidate(self) -> QepCandidate:
        return self.chosen.payload

    @property
    def predicted(self) -> tuple[float, ...]:
        return self.chosen.objectives

    def prediction_error(self, metrics: tuple[str, ...]) -> dict[str, float]:
        """Relative |predicted - measured| / |measured| per metric.

        Every requested metric is reported: a zero measured cost yields
        0.0 when the prediction was exact and ``inf`` otherwise (the old
        behaviour silently dropped such metrics, hiding the worst
        possible relative error from MRE-style aggregations).
        """
        if self.execution is None:
            raise EstimationError(
                "submission was planned but not executed; no measured costs"
            )
        measured = Executor.costs_of(self.execution.metrics)
        errors = {}
        for i, metric in enumerate(metrics):
            actual = measured[metric]
            predicted = self.predicted[i]
            if actual != 0:
                errors[metric] = abs(predicted - actual) / abs(actual)
            else:
                errors[metric] = 0.0 if predicted == 0 else float("inf")
        return errors


class IReSPlatform:
    """The paper's platform: MIDAS sits on top of this."""

    def __init__(
        self,
        catalog: Catalog,
        stats: dict[str, TableStats],
        deployment: Deployment,
        enumerator: QepEnumerator,
        simulator: MultiEngineSimulator,
        strategy: EstimationStrategy,
        optimizer: MultiObjectiveOptimizer | None = None,
        max_fit_workers: int | None = None,
        serving_factory=None,
    ):
        self.catalog = catalog
        self.stats = stats
        self.deployment = deployment
        self.enumerator = enumerator
        self.interface = Interface(catalog, deployment)
        self.modelling = Modelling(strategy)
        # Deferred import: repro.serving itself imports ires.modelling,
        # so a module-level import here would be circular.
        from repro.serving.service import EstimationService

        #: Multi-tenant front over the same Modelling registry: version-
        #: cached model snapshots, per-template locks, burst refresh.
        #: ``serving_factory(modelling)`` swaps the implementation (the
        #: gateway plugs the config-selected backend in here — e.g. the
        #: cross-process :class:`~repro.serving.sharded
        #: .ShardedEstimationService`); the default is the in-process
        #: thread-scoped service.
        if serving_factory is None:
            self.serving = EstimationService(
                modelling=self.modelling, max_workers=max_fit_workers
            )
        else:
            self.serving = serving_factory(self.modelling)
        self.optimizer = optimizer or MultiObjectiveOptimizer()
        self.executor = Executor(simulator)
        self._templates: dict[str, QueryTemplate] = {}

    # Registration ---------------------------------------------------------

    def register_template(
        self, template: QueryTemplate, metrics: tuple[str, ...] = ("time", "money")
    ) -> ExecutionHistory:
        """Register a query template and create its execution history."""
        if template.key in self._templates:
            raise ValidationError(f"template {template.key!r} already registered")
        feature_names = self.enumerator.feature_names(template.tables)
        history = ExecutionHistory(feature_names, metrics)
        self._templates[template.key] = template
        # Registers in Modelling too: platform and service share state.
        self.serving.register(template.key, history)
        return history

    def template(self, key: str) -> QueryTemplate:
        try:
            return self._templates[key]
        except KeyError:
            known = ", ".join(sorted(self._templates)) or "<none>"
            raise ValidationError(f"unknown template {key!r}; registered: {known}") from None

    def history(self, key: str) -> ExecutionHistory:
        return self.modelling.history(key)

    def refresh_models(
        self, keys: list[str] | None = None, parallel: bool = True
    ) -> dict[str, FittedCostModel]:
        """Prefit (all) registered templates' models for a burst.

        Delegates to the serving layer: stale templates are fitted
        concurrently, fresh ones are returned from their snapshots.
        """
        return self.serving.refresh(keys, parallel=parallel)

    # Pipeline ---------------------------------------------------------------

    def candidates_for(
        self,
        key: str,
        params: dict,
        stats: dict[str, TableStats] | None = None,
        constraint=None,
    ) -> tuple[QueryRequest, list[QepCandidate]]:
        """Steps 1 + 3a: validate and enumerate (no model needed).

        ``stats`` overrides the platform's table statistics for this call
        (IReS-style profiling runs enumerate over sampled inputs);
        ``constraint`` is an optional governance
        :class:`~repro.governance.policy.PlanConstraint` the enumerator
        applies while building the space (forbidden execution sites are
        never materialized, let alone costed).
        """
        template = self.template(key)
        request = self.interface.receive(template.render(params))
        candidates = self.enumerator.enumerate(
            key,
            request.plan,
            self.stats if stats is None else stats,
            template.tables,
            constraint=constraint,
        )
        return request, candidates

    def observe(
        self,
        key: str,
        params: dict,
        candidate: QepCandidate,
        tick: int,
        stats: dict[str, TableStats] | None = None,
    ) -> QueryExecution:
        """Execute a given candidate and log it (history building)."""
        template = self.template(key)
        request = self.interface.receive(template.render(params))
        # The executor appends to the history, so it runs under the
        # template's lock: a concurrent fit on this template can never
        # observe a torn window, and other templates are unaffected.
        with self.serving.template_lock(key):
            execution = self.executor.run(
                candidate,
                request.plan,
                self.stats if stats is None else stats,
                tick,
                self.history(key),
            )
        self.serving.record_external()
        return execution

    def submit(
        self,
        key: str,
        params: dict,
        policy: UserPolicy,
        tick: int,
        cost_model: FittedCostModel | None = None,
    ) -> SubmissionResult:
        """The full Figure 1 pipeline for one query submission.

        ``cost_model`` optionally pins the model that costs the QEP space
        (a session snapshot); the default refits through the serving
        layer only when the history moved since the last fit.
        """
        template = self.template(key)
        request = self.interface.receive(template.render(params), policy)
        return self.submit_request(key, request, tick, cost_model=cost_model)

    def submit_request(
        self,
        key: str,
        request: QueryRequest,
        tick: int,
        *,
        cost_model: FittedCostModel | None = None,
        candidates: list[QepCandidate] | None = None,
        features_matrix=None,
        execute: bool = True,
    ) -> SubmissionResult:
        """Steps 2-5 for an already-validated request.

        The gateway's session layer drives this directly so a parameter
        batch can reuse one pinned ``cost_model``, one enumerated
        ``candidates`` space and one precomputed ``features_matrix``;
        ``execute=False`` stops after Algorithm 2 (plan-only costing).
        All paths are numerically identical to :meth:`submit`.
        """
        template = self.template(key)
        history = self.history(key)
        if cost_model is None:
            if history.size == 0:
                raise EstimationError(
                    f"no execution history for {key!r}; run observe() a few times first"
                )
            # Through the serving layer: refits only when the history
            # moved since the last fit (re-planning between executions is
            # a snapshot hit), under the template's lock.
            cost_model = self.serving.model(key)
        if candidates is None:
            candidates = self.enumerator.enumerate(
                key, request.plan, self.stats, template.tables
            )
        policy = request.policy
        search = self.optimizer.pareto_search(
            candidates, cost_model, policy.metrics, features_matrix=features_matrix
        )
        pareto = search.pareto_set
        chosen = self.optimizer.choose(pareto, policy)
        execution = None
        if execute:
            # Under the template's lock: the executor's history append
            # must exclude concurrent fits of this template (torn-window
            # guard).
            with self.serving.template_lock(key):
                execution = self.executor.run(
                    chosen.payload, request.plan, self.stats, tick, history
                )
            self.serving.record_external()
        return SubmissionResult(
            request=request,
            cost_model=cost_model,
            candidate_count=search.candidate_count,
            pareto_set=pareto,
            chosen=chosen,
            execution=execution,
            moqp_algorithm=search.algorithm_used,
            moqp_exact_fallback=search.exact_fallback,
        )
