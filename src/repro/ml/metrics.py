"""Evaluation metrics.

``mean_relative_error`` is the paper's Equation (15) — the headline metric
of Tables 3 and 4.  ``r_squared`` is the coefficient of determination of
Equation (14), the quantity DREAM's stopping rule watches.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import EstimationError


def _as_arrays(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise EstimationError(
            f"shape mismatch: actual {actual.shape} vs predicted {predicted.shape}"
        )
    if actual.size == 0:
        raise EstimationError("metrics need at least one observation")
    return actual, predicted


def sum_squared_errors(actual, predicted) -> float:
    """SSE = sum (c_m - c_hat_m)^2 (paper Eq. 11)."""
    actual, predicted = _as_arrays(actual, predicted)
    return float(np.sum((actual - predicted) ** 2))


def total_sum_of_squares(actual) -> float:
    """SST = sum (c_m - mean(c))^2."""
    actual = np.asarray(actual, dtype=float)
    if actual.size == 0:
        raise EstimationError("SST needs at least one observation")
    return float(np.sum((actual - actual.mean()) ** 2))


def r_squared(actual, predicted) -> float:
    """Coefficient of determination R^2 = 1 - SSE/SST (paper Eq. 14).

    A constant target (SST = 0) yields 1.0 when predictions are exact and
    0.0 otherwise, matching the usual convention.
    """
    actual, predicted = _as_arrays(actual, predicted)
    sst = total_sum_of_squares(actual)
    sse = sum_squared_errors(actual, predicted)
    if sst == 0.0:
        return 1.0 if sse == 0.0 else 0.0
    return 1.0 - sse / sst


def mean_relative_error(actual, predicted) -> float:
    """MRE = (1/M) * sum |c_hat - c| / c (paper Eq. 15).

    Requires strictly positive actual values, as execution times are.
    """
    actual, predicted = _as_arrays(actual, predicted)
    if np.any(actual <= 0):
        raise EstimationError("MRE requires strictly positive actual values")
    return float(np.mean(np.abs(predicted - actual) / actual))


def mean_absolute_error(actual, predicted) -> float:
    actual, predicted = _as_arrays(actual, predicted)
    return float(np.mean(np.abs(predicted - actual)))


def root_mean_squared_error(actual, predicted) -> float:
    actual, predicted = _as_arrays(actual, predicted)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))
