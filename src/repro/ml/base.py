"""Regressor interface shared by every learner."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import EstimationError


class Regressor(ABC):
    """A supervised regressor with the classic fit/predict contract."""

    #: Human-readable algorithm name (used in BML reports).
    name: str = "regressor"

    def __init__(self):
        self._fitted = False
        self._dimension: int | None = None

    @abstractmethod
    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Subclass hook: train on validated arrays."""

    @abstractmethod
    def _predict(self, features: np.ndarray) -> np.ndarray:
        """Subclass hook: predict on validated arrays."""

    # Public API ---------------------------------------------------------

    def fit(self, features, targets) -> "Regressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise EstimationError(f"features must be 2-D, got {features.shape}")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise EstimationError(
                f"targets shape {targets.shape} does not match features {features.shape}"
            )
        if features.shape[0] == 0:
            raise EstimationError(f"{self.name}: cannot fit on zero observations")
        self._dimension = features.shape[1]
        self._fit(features, targets)
        self._fitted = True
        return self

    def predict(self, features) -> np.ndarray:
        if not self._fitted:
            raise EstimationError(f"{self.name}: predict() before fit()")
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        if features.shape[1] != self._dimension:
            raise EstimationError(
                f"{self.name}: expected {self._dimension} features, got {features.shape[1]}"
            )
        predictions = self._predict(features)
        return predictions[0] if single else predictions

    def predict_one(self, features) -> float:
        return float(self.predict(np.asarray(features, dtype=float).reshape(-1)))

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def training_error(self, features, targets) -> float:
        """Root-mean-squared training error (IReS's model-selection score)."""
        from repro.ml.metrics import root_mean_squared_error

        return root_mean_squared_error(targets, self.predict(features))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(fitted={self._fitted})"
