"""CART regression tree — bagging's base learner.

Standard binary tree grown by variance reduction: each split minimises
the summed squared deviation of the two children, searched over midpoints
of consecutive distinct feature values.  Leaves predict their mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor


@dataclass
class _Node:
    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree(Regressor):
    """CART with depth / leaf-size stopping rules."""

    name = "regression-tree"

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 2):
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_leaf = max(1, min_samples_leaf)
        self._root: _Node | None = None

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._root = self._grow(features, targets, depth=0)

    def _grow(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(targets.mean()))
        if depth >= self.max_depth or targets.shape[0] < 2 * self.min_samples_leaf:
            return node
        if np.all(targets == targets[0]):
            return node
        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, targets: np.ndarray
    ) -> tuple[int, float] | None:
        best_score = np.inf
        best: tuple[int, float] | None = None
        count = targets.shape[0]
        for feature in range(features.shape[1]):
            order = np.argsort(features[:, feature], kind="stable")
            sorted_x = features[order, feature]
            sorted_y = targets[order]
            # Prefix sums make each candidate split O(1).
            prefix = np.cumsum(sorted_y)
            prefix_sq = np.cumsum(sorted_y**2)
            total = prefix[-1]
            total_sq = prefix_sq[-1]
            for i in range(self.min_samples_leaf, count - self.min_samples_leaf + 1):
                if i < 1 or i >= count or sorted_x[i - 1] == sorted_x[i]:
                    continue
                left_sse = prefix_sq[i - 1] - prefix[i - 1] ** 2 / i
                right_n = count - i
                right_sum = total - prefix[i - 1]
                right_sse = (total_sq - prefix_sq[i - 1]) - right_sum**2 / right_n
                score = left_sse + right_sse
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, float((sorted_x[i - 1] + sorted_x[i]) / 2.0))
        return best

    def _predict(self, features: np.ndarray) -> np.ndarray:
        out = np.empty(features.shape[0])
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
