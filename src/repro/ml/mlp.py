"""Multilayer perceptron regressor (numpy backprop) — IReS's third model.

A small tanh network trained with full-batch Adam on standardized inputs
and targets.  Standardization happens inside the model so callers can feed
raw byte counts and node counts; training is deterministic under the seed.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.ml.base import Regressor


class MLPRegressor(Regressor):
    """One- or two-hidden-layer perceptron for small tabular problems."""

    name = "multilayer-perceptron"

    def __init__(
        self,
        hidden: tuple[int, ...] = (16,),
        epochs: int = 300,
        learning_rate: float = 0.01,
        optimizer: str = "adam",
        momentum: float = 0.2,
        seed: int = 29,
    ):
        """``optimizer`` is ``"adam"`` or ``"sgd"``.

        ``"sgd"`` with ``learning_rate=0.3, momentum=0.2`` reproduces the
        WEKA MultilayerPerceptron training protocol the IReS paper's
        Modelling module used.
        """
        super().__init__()
        if optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {optimizer!r}")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.optimizer = optimizer
        self.momentum = momentum
        self._seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_scale = 1.0

    # ------------------------------------------------------------------

    def _standardize_fit(self, features: np.ndarray, targets: np.ndarray):
        self._x_mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0] = 1.0
        self._x_scale = scale
        self._y_mean = float(targets.mean())
        y_scale = float(targets.std())
        self._y_scale = y_scale if y_scale > 0 else 1.0

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        self._standardize_fit(features, targets)
        x = (features - self._x_mean) / self._x_scale
        y = (targets - self._y_mean) / self._y_scale

        rng = RngStream(self._seed, "mlp").generator
        sizes = [x.shape[1], *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        # Full-batch Adam or SGD+momentum (WEKA-style).
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        for epoch in range(1, self.epochs + 1):
            activations, pre_activations = self._forward(x)
            prediction = activations[-1][:, 0]
            grad_out = ((prediction - y) / x.shape[0]).reshape(-1, 1)

            grads_w: list[np.ndarray] = []
            grads_b: list[np.ndarray] = []
            delta = grad_out
            for layer in reversed(range(len(self._weights))):
                grads_w.insert(0, activations[layer].T @ delta)
                grads_b.insert(0, delta.sum(axis=0))
                if layer > 0:
                    delta = (delta @ self._weights[layer].T) * (
                        1.0 - np.tanh(pre_activations[layer - 1]) ** 2
                    )

            if self.optimizer == "sgd":
                for i in range(len(self._weights)):
                    m_w[i] = self.momentum * m_w[i] + self.learning_rate * grads_w[i]
                    m_b[i] = self.momentum * m_b[i] + self.learning_rate * grads_b[i]
                    self._weights[i] -= m_w[i]
                    self._biases[i] -= m_b[i]
                continue
            for i in range(len(self._weights)):
                m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                m_w_hat = m_w[i] / (1 - beta1**epoch)
                v_w_hat = v_w[i] / (1 - beta2**epoch)
                m_b_hat = m_b[i] / (1 - beta1**epoch)
                v_b_hat = v_b[i] / (1 - beta2**epoch)
                self._weights[i] -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                self._biases[i] -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)

    def _forward(self, x: np.ndarray):
        activations = [x]
        pre_activations = []
        current = x
        last = len(self._weights) - 1
        for i, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            z = current @ weight + bias
            if i < last:
                pre_activations.append(z)
                current = np.tanh(z)
            else:
                current = z
            activations.append(current)
        return activations, pre_activations

    def _predict(self, features: np.ndarray) -> np.ndarray:
        x = (features - self._x_mean) / self._x_scale
        output = self._forward(x)[0][-1][:, 0]
        return output * self._y_scale + self._y_mean
