"""Multiple Linear Regression, the foundation of DREAM (paper §2.5).

Solves ``B = (A^T A)^-1 A^T C`` (paper Eq. 12) for the design matrix with
an intercept column (Eq. 8).  A pseudo-inverse is used when the normal
matrix is singular (e.g. constant features inside a small window), which
returns the minimum-norm solution instead of failing.

Two implementations share the algebra:

* :class:`MultipleLinearRegression` — the batch fit/predict regressor
  used by the BML pool and kept as DREAM's reference oracle.
* :class:`RecursiveLeastSquares` — an incremental core for Algorithm 1's
  ``m += 1`` loop: the normal matrix ``A^T A`` and moment vector
  ``A^T c`` grow by rank-one updates and the inverse is maintained with
  the Sherman-Morrison identity, so widening the window by one
  observation costs O(L^2) instead of a full O(m L^2) refit.

With ``track_press=True`` the recursive form also maintains the
leave-one-out PRESS statistic incrementally: the per-row leverages and
residuals are carried along through the same rank-one identities, so a
widening step updates PRESS in O(L^2 + m) instead of recomputing the
O(m L^2) hat-matrix pass (see :meth:`RecursiveLeastSquares.update`).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import EstimationError
from repro.ml.base import Regressor
from repro.ml.metrics import r_squared


def press_r_squared_from(
    residuals: np.ndarray, leverages: np.ndarray, targets: np.ndarray
) -> float:
    """Leave-one-out R^2 = 1 - PRESS/SST from per-row components.

    The single source of truth for the PRESS tail (``e_loo = e/(1-h)``,
    leverage clip, SST zero convention, clamp at -1): the batch fit, the
    recursive window form, and the incremental carry all feed their
    residuals/leverages through here, so the 1e-9 batch-equivalence
    contract cannot drift between implementations.

    Leverage ~1 means the point is interpolated: its LOO residual
    diverges, which correctly reads as "no predictive evidence".
    """
    denominator = np.clip(1.0 - leverages, 1e-6, None)
    press = float(np.sum((residuals / denominator) ** 2))
    sst = float(np.sum((targets - targets.mean()) ** 2))
    if sst == 0.0:
        return 1.0 if press == 0.0 else -1.0
    return max(-1.0, 1.0 - press / sst)


def minimum_observations(dimension: int) -> int:
    """The smallest usable training set: M = L + 2 (paper §3, [27]).

    One more than the L+1 unknown coefficients, so at least one residual
    degree of freedom exists.
    """
    return dimension + 2


class MultipleLinearRegression(Regressor):
    """Ordinary least squares with intercept.

    Besides the training-set ``r_squared_`` (paper Eq. 14), the fit also
    computes ``press_r_squared_``: the *predictive* coefficient of
    determination from leave-one-out residuals, obtained in closed form
    via the hat matrix (``e_loo,i = e_i / (1 - h_ii)``).  Near the
    minimum window ``m = L + 2`` OLS nearly interpolates and the training
    R^2 saturates at 1 regardless of data quality; the PRESS form stays
    honest there, which is what DREAM's stopping rule needs.
    """

    name = "least-squares"

    def __init__(self):
        super().__init__()
        self.coefficients_: np.ndarray | None = None  # (L+1,) incl. intercept
        self.r_squared_: float | None = None
        self.press_r_squared_: float | None = None

    def _design(self, features: np.ndarray) -> np.ndarray:
        return np.hstack([np.ones((features.shape[0], 1)), features])

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        design = self._design(features)
        normal = design.T @ design
        try:
            self.coefficients_ = np.linalg.solve(normal, design.T @ targets)
        except np.linalg.LinAlgError:
            self.coefficients_ = np.linalg.pinv(design) @ targets
        fitted = design @ self.coefficients_
        self.r_squared_ = r_squared(targets, fitted)
        self.press_r_squared_ = self._press_r_squared(design, targets, fitted)

    @staticmethod
    def _press_r_squared(
        design: np.ndarray, targets: np.ndarray, fitted: np.ndarray
    ) -> float:
        """Leave-one-out R^2 = 1 - PRESS/SST (clipped below at -1)."""
        residuals = targets - fitted
        pinv_normal = np.linalg.pinv(design.T @ design)
        leverages = np.einsum("ij,jk,ik->i", design, pinv_normal, design)
        return press_r_squared_from(residuals, leverages, targets)

    def _predict(self, features: np.ndarray) -> np.ndarray:
        return self._design(features) @ self.coefficients_

    @property
    def intercept_(self) -> float:
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        return float(self.coefficients_[0])

    @property
    def slopes_(self) -> np.ndarray:
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        return self.coefficients_[1:]

    def summary(self, feature_names: tuple[str, ...] | None = None) -> str:
        """Human-readable fitted equation (paper Eq. 6 shape)."""
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        terms = [f"{self.intercept_:.4g}"]
        for i, slope in enumerate(self.slopes_):
            name = feature_names[i] if feature_names else f"x{i + 1}"
            terms.append(f"{slope:+.4g}*{name}")
        return "c_hat = " + " ".join(terms) + f"   (R^2 = {self.r_squared_:.4f})"


class RecursiveLeastSquares:
    """Incremental OLS: rank-one window growth in O(L^2) per observation.

    Maintains the sufficient statistics of the normal equations —
    ``A^T A``, ``A^T c``, ``sum c``, ``sum c^2`` — plus the inverse
    ``(A^T A)^-1`` updated with Sherman-Morrison.  Folding an observation
    in (or out, via :meth:`downdate`) is order-independent, which is what
    DREAM's backwards-growing window needs: the window ``m -> m + 1``
    step adds one *older* observation to the same sufficient statistics.

    The training R^2 comes straight from the maintained scalars (O(L^2));
    the leave-one-out PRESS R^2 needs the window rows themselves (one
    vectorised pass, see :meth:`press_r_squared`).  Both agree with the
    batch :class:`MultipleLinearRegression` to ~1e-10 on well-conditioned
    data; when the normal matrix is singular the inverse falls back to
    the same pseudo-inverse the batch fit uses.
    """

    #: Windows whose normal matrix exceeds this condition number abandon
    #: the rank-one PRESS carry and recompute on the batch oracle's exact
    #: path: the Sherman-Morrison carry loses ~cond * eps digits per
    #: step, and the tracked statistic must match the batch fit to 1e-9.
    PRESS_MAX_CONDITION = 1e6

    def __init__(self, dimension: int, track_press: bool = False):
        if dimension < 1:
            raise EstimationError(f"dimension must be >= 1, got {dimension}")
        self.dimension = int(dimension)
        k = self.dimension + 1  # intercept column
        self._xtx = np.zeros((k, k))
        self._xty = np.zeros(k)
        self._sum_y = 0.0
        self._sum_y2 = 0.0
        self._count = 0
        #: Maintained (A^T A)^-1 (or pseudo-inverse); None means stale.
        self._inverse: np.ndarray | None = None
        self._singular = False
        #: PRESS tracking (opt-in): the window's design rows and targets
        #: in amortised growing buffers, plus per-row leverages/residuals
        #: carried in place by rank-one updates.  ``_press_valid`` False
        #: means the carry is stale — the next query recomputes exactly.
        self._track_press = bool(track_press)
        self._window_used = 0
        self._press_valid = False
        if track_press:
            self._design_buf: np.ndarray | None = np.empty((16, k))
            self._target_buf: np.ndarray | None = np.empty(16)
            self._lev_buf: np.ndarray | None = np.empty(16)
            self._resid_buf: np.ndarray | None = np.empty(16)
        else:
            self._design_buf = None
            self._target_buf = None
            self._lev_buf = None
            self._resid_buf = None

    # State ---------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    def copy(self) -> "RecursiveLeastSquares":
        clone = RecursiveLeastSquares(self.dimension, track_press=self._track_press)
        clone._xtx = self._xtx.copy()
        clone._xty = self._xty.copy()
        clone._sum_y = self._sum_y
        clone._sum_y2 = self._sum_y2
        clone._count = self._count
        clone._inverse = None if self._inverse is None else self._inverse.copy()
        clone._singular = self._singular
        clone._window_used = self._window_used
        clone._press_valid = self._press_valid
        if self._track_press:
            clone._design_buf = self._design_buf.copy()
            clone._target_buf = self._target_buf.copy()
            clone._lev_buf = self._lev_buf.copy()
            clone._resid_buf = self._resid_buf.copy()
        return clone

    def _row(self, features) -> np.ndarray:
        z = np.asarray(features, dtype=float).reshape(-1)
        if z.shape[0] != self.dimension:
            raise EstimationError(
                f"expected {self.dimension} features, got {z.shape[0]}"
            )
        return np.concatenate(([1.0], z))

    # Rank-one updates -----------------------------------------------------

    def update(self, features, target: float) -> None:
        """Fold one observation in: O(L^2) (plus O(m) PRESS carry)."""
        z = self._row(features)
        y = float(target)
        if self._track_press:
            self._window_reserve()
            self._press_fold_in(z, y)
            self._design_buf[self._window_used] = z
            self._target_buf[self._window_used] = y
            self._window_used += 1
        self._xtx += np.outer(z, z)
        self._xty += z * y
        self._sum_y += y
        self._sum_y2 += y * y
        self._count += 1
        if self._inverse is not None and not self._singular:
            pz = self._inverse @ z
            denominator = 1.0 + float(z @ pz)
            if denominator <= 1e-12:  # inverse no longer trustworthy
                self._inverse = None
            else:
                self._inverse -= np.outer(pz, pz) / denominator
                self._inverse = 0.5 * (self._inverse + self._inverse.T)
        else:
            self._inverse = None

    def downdate(self, features, target: float) -> None:
        """Fold one observation out (sliding the window): O(L^2)."""
        if self._count <= 0:
            raise EstimationError("cannot downdate an empty window")
        z = self._row(features)
        y = float(target)
        if self._track_press:
            self._press_fold_out(z, y)
        self._xtx -= np.outer(z, z)
        self._xty -= z * y
        self._sum_y -= y
        self._sum_y2 -= y * y
        self._count -= 1
        if self._inverse is not None and not self._singular:
            pz = self._inverse @ z
            denominator = 1.0 - float(z @ pz)
            if denominator <= 1e-12:  # removal makes the matrix singular
                self._inverse = None
            else:
                self._inverse += np.outer(pz, pz) / denominator
                self._inverse = 0.5 * (self._inverse + self._inverse.T)
        else:
            self._inverse = None

    # Incremental PRESS ----------------------------------------------------

    def _window_reserve(self) -> None:
        """Grow the window buffers (amortised doubling) for one more row."""
        capacity = self._design_buf.shape[0]
        if self._window_used < capacity:
            return
        grown = 2 * capacity
        for name in ("_design_buf", "_target_buf", "_lev_buf", "_resid_buf"):
            old = getattr(self, name)
            new = np.empty((grown,) + old.shape[1:])
            new[:capacity] = old
            setattr(self, name, new)

    def _press_fold_in(self, z: np.ndarray, y: float) -> None:
        """Carry leverages/residuals through the rank-one growth.

        With ``P = (A^T A)^-1`` *before* the new row ``z`` and
        ``s = z P z``, Sherman-Morrison gives for every existing row i::

            h_i' = h_i - (z_i P z)^2 / (1 + s)
            e_i' = e_i - (z_i P z) * (y - z beta) / (1 + s)

        and the new row's own ``h = s - s^2/(1+s)``, ``e = innov/(1+s)``
        (its LOO residual is exactly the prediction innovation).  One
        O(m L) matvec replaces the O(m L^2) hat-matrix pass.  Writes the
        new row's slot ``_window_used`` directly; the caller appends the
        row itself right after.
        """
        if not self._press_valid:
            return  # stale; the next query recomputes
        if not self._press_carry_trustworthy():
            # Never carry through an ill-conditioned step: the error it
            # would bake in (~cond * eps) survives even if conditioning
            # later recovers, and the query-time guard only inspects the
            # *current* window.  Recompute exactly on the next query.
            self._press_valid = False
            return
        pz = self._inverse @ z
        s = float(z @ pz)
        denominator = 1.0 + s
        if denominator <= 1e-12:
            self._press_valid = False
            return
        beta = self._inverse @ self._xty
        innovation = y - float(z @ beta)
        m = self._window_used
        if m:
            g = self._design_buf[:m] @ pz
            self._lev_buf[:m] -= g * g / denominator
            self._resid_buf[:m] -= g * (innovation / denominator)
        self._lev_buf[m] = s - s * s / denominator
        self._resid_buf[m] = innovation / denominator

    def _press_fold_out(self, z: np.ndarray, y: float) -> None:
        """Drop the tracked row matching (z, y); the carry goes stale.

        Sliding windows are not on DREAM's widening hot path, so the
        downdate simply invalidates the carried vectors — the next PRESS
        query recomputes them exactly.
        """
        m = self._window_used
        for i in range(m):
            if self._target_buf[i] == y and np.array_equal(self._design_buf[i], z):
                self._design_buf[i : m - 1] = self._design_buf[i + 1 : m]
                self._target_buf[i : m - 1] = self._target_buf[i + 1 : m]
                self._window_used = m - 1
                self._press_valid = False
                return
        raise EstimationError(
            "downdate observation was never folded into the tracked window"
        )

    def _press_recompute(self) -> None:
        """Exact leverages/residuals on the batch oracle's code path.

        Mirrors :meth:`MultipleLinearRegression._fit` operation for
        operation (same normal matrix built from the same rows, same
        solve-then-pinv fallback, same pinv leverages) so the tracked
        statistic matches the batch fit bitwise whenever the rank-one
        carry is unavailable — including rank-deficient windows.
        """
        m = self._window_used
        design = self._design_buf[:m]
        targets = self._target_buf[:m]
        normal = design.T @ design
        try:
            beta = np.linalg.solve(normal, design.T @ targets)
        except np.linalg.LinAlgError:
            beta = np.linalg.pinv(design) @ targets
        self._resid_buf[:m] = targets - design @ beta
        self._lev_buf[:m] = np.einsum(
            "ij,jk,ik->i", design, np.linalg.pinv(normal), design
        )
        self._press_valid = True

    def _press_carry_trustworthy(self) -> bool:
        """Cheap conditioning guard for the carried vectors.

        Uses the Frobenius estimate ``||A||_F * ||A^-1||_F``, an upper
        bound on the 2-norm condition number, so a pass guarantees the
        window really is well-conditioned; the estimate costs O(L^2)
        instead of the O(L^3) SVD of ``numpy.linalg.cond``.
        """
        self._refresh_inverse()
        if self._singular:
            return False
        estimate = np.linalg.norm(self._xtx) * np.linalg.norm(self._inverse)
        return bool(np.isfinite(estimate) and estimate <= self.PRESS_MAX_CONDITION)

    def press_r_squared_tracked(self) -> float:
        """Leave-one-out R^2 of the tracked window (incremental).

        Requires ``track_press=True``.  Uses the carried leverages and
        residuals when the window is well-conditioned enough for them to
        hold 1e-9 agreement with the batch fit; otherwise recomputes them
        on the oracle's exact path (and the carry resumes from there).
        """
        if not self._track_press:
            raise EstimationError("construct with track_press=True to track PRESS")
        if self._count == 0:
            raise EstimationError("no observations folded in yet")
        if not self._press_valid or not self._press_carry_trustworthy():
            self._press_recompute()
        m = self._window_used
        return press_r_squared_from(
            self._resid_buf[:m], self._lev_buf[:m], self._target_buf[:m]
        )

    # Derived quantities ---------------------------------------------------

    def well_conditioned(self, max_condition: float = 1e8) -> bool:
        """Whether the normal matrix supports the fast inverse path.

        Rank-deficient windows (duplicated rows, constant features) lose
        ~cond^2 significant digits through the normal equations, so the
        incremental solution can diverge from the batch oracle there —
        callers should refit that window with the batch path instead.  A
        False result also marks the maintained inverse stale, forcing a
        fresh factorisation once the window is well-conditioned again.
        """
        if self._count == 0:
            return False
        condition = np.linalg.cond(self._xtx)
        if not np.isfinite(condition) or condition > max_condition:
            self._inverse = None
            return False
        return True

    def _refresh_inverse(self) -> np.ndarray:
        if self._inverse is None or self._singular:
            try:
                self._inverse = np.linalg.inv(self._xtx)
                self._singular = False
            except np.linalg.LinAlgError:
                self._inverse = np.linalg.pinv(self._xtx)
                self._singular = True
            self._inverse = 0.5 * (self._inverse + self._inverse.T)
        return self._inverse

    @property
    def coefficients(self) -> np.ndarray:
        """OLS coefficients (intercept first), Eq. 12 on the window."""
        if self._count == 0:
            raise EstimationError("no observations folded in yet")
        return self._refresh_inverse() @ self._xty

    @property
    def r_squared(self) -> float:
        """Training R^2 (Eq. 14) from the maintained scalars alone."""
        beta = self.coefficients
        sse = self._sum_y2 - 2.0 * float(beta @ self._xty) + float(
            beta @ self._xtx @ beta
        )
        sse = max(sse, 0.0)
        sst = max(self._sum_y2 - self._sum_y**2 / self._count, 0.0)
        if sst <= 1e-12 * max(1.0, self._sum_y2):
            return 1.0 if sse <= 1e-12 * max(1.0, self._sum_y2) else 0.0
        return 1.0 - sse / sst

    def leverages(self, features: np.ndarray) -> np.ndarray:
        """Hat-matrix diagonal of the given window rows under this fit."""
        design = np.hstack(
            [np.ones((features.shape[0], 1)), np.asarray(features, dtype=float)]
        )
        inverse = self._refresh_inverse()
        return np.einsum("ij,jk,ik->i", design, inverse, design)

    def press_r_squared(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Leave-one-out R^2 over the window rows (one vectorised pass).

        Same closed form as the batch fit (``e_loo = e / (1 - h_ii)``)
        but using the maintained inverse, so no new factorisation.
        """
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        design = np.hstack([np.ones((features.shape[0], 1)), features])
        fitted = design @ self.coefficients
        residuals = targets - fitted
        inverse = self._refresh_inverse()
        leverages = np.einsum("ij,jk,ik->i", design, inverse, design)
        return press_r_squared_from(residuals, leverages, targets)

    def as_model(self, press_r_squared: float | None = None) -> MultipleLinearRegression:
        """Snapshot the current window fit as a fitted batch model."""
        model = MultipleLinearRegression()
        model.coefficients_ = self.coefficients.copy()
        model.r_squared_ = self.r_squared
        model.press_r_squared_ = press_r_squared
        model._dimension = self.dimension
        model._fitted = True
        return model
