"""Multiple Linear Regression, the foundation of DREAM (paper §2.5).

Solves ``B = (A^T A)^-1 A^T C`` (paper Eq. 12) for the design matrix with
an intercept column (Eq. 8).  A pseudo-inverse is used when the normal
matrix is singular (e.g. constant features inside a small window), which
returns the minimum-norm solution instead of failing.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import EstimationError
from repro.ml.base import Regressor
from repro.ml.metrics import r_squared


def minimum_observations(dimension: int) -> int:
    """The smallest usable training set: M = L + 2 (paper §3, [27]).

    One more than the L+1 unknown coefficients, so at least one residual
    degree of freedom exists.
    """
    return dimension + 2


class MultipleLinearRegression(Regressor):
    """Ordinary least squares with intercept.

    Besides the training-set ``r_squared_`` (paper Eq. 14), the fit also
    computes ``press_r_squared_``: the *predictive* coefficient of
    determination from leave-one-out residuals, obtained in closed form
    via the hat matrix (``e_loo,i = e_i / (1 - h_ii)``).  Near the
    minimum window ``m = L + 2`` OLS nearly interpolates and the training
    R^2 saturates at 1 regardless of data quality; the PRESS form stays
    honest there, which is what DREAM's stopping rule needs.
    """

    name = "least-squares"

    def __init__(self):
        super().__init__()
        self.coefficients_: np.ndarray | None = None  # (L+1,) incl. intercept
        self.r_squared_: float | None = None
        self.press_r_squared_: float | None = None

    def _design(self, features: np.ndarray) -> np.ndarray:
        return np.hstack([np.ones((features.shape[0], 1)), features])

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        design = self._design(features)
        normal = design.T @ design
        try:
            self.coefficients_ = np.linalg.solve(normal, design.T @ targets)
        except np.linalg.LinAlgError:
            self.coefficients_ = np.linalg.pinv(design) @ targets
        fitted = design @ self.coefficients_
        self.r_squared_ = r_squared(targets, fitted)
        self.press_r_squared_ = self._press_r_squared(design, targets, fitted)

    @staticmethod
    def _press_r_squared(
        design: np.ndarray, targets: np.ndarray, fitted: np.ndarray
    ) -> float:
        """Leave-one-out R^2 = 1 - PRESS/SST (clipped below at -1)."""
        residuals = targets - fitted
        pinv_normal = np.linalg.pinv(design.T @ design)
        leverages = np.einsum("ij,jk,ik->i", design, pinv_normal, design)
        # Leverage ~1 means the point is interpolated: its LOO residual
        # diverges, which correctly reads as "no predictive evidence".
        denominator = np.clip(1.0 - leverages, 1e-6, None)
        press = float(np.sum((residuals / denominator) ** 2))
        sst = float(np.sum((targets - targets.mean()) ** 2))
        if sst == 0.0:
            return 1.0 if press == 0.0 else -1.0
        return max(-1.0, 1.0 - press / sst)

    def _predict(self, features: np.ndarray) -> np.ndarray:
        return self._design(features) @ self.coefficients_

    @property
    def intercept_(self) -> float:
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        return float(self.coefficients_[0])

    @property
    def slopes_(self) -> np.ndarray:
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        return self.coefficients_[1:]

    def summary(self, feature_names: tuple[str, ...] | None = None) -> str:
        """Human-readable fitted equation (paper Eq. 6 shape)."""
        if self.coefficients_ is None:
            raise EstimationError("model not fitted")
        terms = [f"{self.intercept_:.4g}"]
        for i, slope in enumerate(self.slopes_):
            name = feature_names[i] if feature_names else f"x{i + 1}"
            terms.append(f"{slope:+.4g}*{name}")
        return "c_hat = " + " ".join(terms) + f"   (R^2 = {self.r_squared_:.4f})"
