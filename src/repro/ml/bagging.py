"""Bagging predictor (Breiman 1996) — one of IReS's model pool.

Bootstrap-aggregates a base regressor: each member trains on an M-sample
drawn with replacement; predictions are the member average.  The default
base learner is a CART tree, the classic pairing.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.rng import RngStream
from repro.ml.base import Regressor
from repro.ml.tree import RegressionTree


class BaggingRegressor(Regressor):
    """Bootstrap aggregation over a base-learner factory."""

    name = "bagging"

    def __init__(
        self,
        base_factory: Callable[[], Regressor] | None = None,
        n_estimators: int = 15,
        seed: int = 13,
    ):
        super().__init__()
        self._base_factory = base_factory or (lambda: RegressionTree(max_depth=5))
        self.n_estimators = max(1, n_estimators)
        self._seed = seed
        self.members_: list[Regressor] = []

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        rng = RngStream(self._seed, "bagging")
        count = features.shape[0]
        self.members_ = []
        for index in range(self.n_estimators):
            sample = rng.integers(0, count, size=count)
            member = self._base_factory()
            member.fit(features[sample], targets[sample])
            self.members_.append(member)

    def _predict(self, features: np.ndarray) -> np.ndarray:
        stacked = np.stack([member.predict(features) for member in self.members_])
        return stacked.mean(axis=0)
