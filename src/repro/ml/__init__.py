"""Machine-learning substrate, implemented from scratch on numpy.

Re-creates the model pool the paper attributes to IReS's *Modelling*
module (§2.4): least-squares regression, bagging predictors and a
multilayer perceptron (the WEKA trio), plus CART trees (bagging's base
learner), k-NN, evaluation metrics, and the **Best-ML selection protocol**
(train everything, keep the model with the smallest training error).
"""

from repro.ml.dataset import Dataset
from repro.ml.metrics import (
    mean_absolute_error,
    mean_relative_error,
    r_squared,
    root_mean_squared_error,
    sum_squared_errors,
    total_sum_of_squares,
)
from repro.ml.base import Regressor
from repro.ml.linear import (
    MultipleLinearRegression,
    RecursiveLeastSquares,
    minimum_observations,
)
from repro.ml.tree import RegressionTree
from repro.ml.bagging import BaggingRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.selection import (
    BestModelSelector,
    ObservationWindow,
    default_model_pool,
)

__all__ = [
    "Dataset",
    "mean_absolute_error",
    "mean_relative_error",
    "r_squared",
    "root_mean_squared_error",
    "sum_squared_errors",
    "total_sum_of_squares",
    "Regressor",
    "MultipleLinearRegression",
    "RecursiveLeastSquares",
    "minimum_observations",
    "RegressionTree",
    "BaggingRegressor",
    "MLPRegressor",
    "KNNRegressor",
    "BestModelSelector",
    "ObservationWindow",
    "default_model_pool",
]
