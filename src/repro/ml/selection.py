"""The IReS "Best ML model" selection protocol (the paper's BML baseline).

From §2.4/§4.3 of the paper: the Modelling module "tests many algorithms
and the best model with the smallest error is selected".  The baseline
variants BML_N / BML_2N / BML_3N / BML restrict training to an observation
window of the most recent N, 2N, 3N or all observations, where
``N = L + 2`` is the minimum window DREAM requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import EstimationError
from repro.ml.bagging import BaggingRegressor
from repro.ml.base import Regressor
from repro.ml.dataset import Dataset
from repro.ml.linear import MultipleLinearRegression, minimum_observations
from repro.ml.mlp import MLPRegressor


def default_model_pool() -> list[Callable[[], Regressor]]:
    """Factories for the paper's model pool (WEKA trio, from scratch).

    The MLP uses WEKA MultilayerPerceptron's training protocol (plain
    SGD, learning rate 0.3, momentum 0.2, 500 epochs) — the stock-IReS
    Modelling module the paper benchmarks against ran WEKA defaults.
    """
    return [
        MultipleLinearRegression,
        lambda: BaggingRegressor(n_estimators=10),
        lambda: MLPRegressor(
            hidden=(8,), epochs=500, learning_rate=0.3, optimizer="sgd"
        ),
    ]


@dataclass(frozen=True)
class ObservationWindow:
    """A training-window policy: keep the last ``multiplier * N`` rows.

    ``multiplier=None`` means *unlimited* — the stock-IReS behaviour of
    training on the full history (the paper's plain "BML" column).
    """

    multiplier: int | None

    def label(self) -> str:
        if self.multiplier is None:
            return "BML"
        if self.multiplier == 1:
            return "BML_N"
        return f"BML_{self.multiplier}N"

    def size(self, dimension: int) -> int | None:
        if self.multiplier is None:
            return None
        return self.multiplier * minimum_observations(dimension)

    def apply(self, data: Dataset) -> Dataset:
        size = self.size(data.dimension)
        if size is None:
            return data
        return data.last_window(size)


#: The four baseline windows of Tables 3 and 4.
PAPER_WINDOWS: tuple[ObservationWindow, ...] = (
    ObservationWindow(1),
    ObservationWindow(2),
    ObservationWindow(3),
    ObservationWindow(None),
)


class BestModelSelector:
    """Train every pool model on a window; keep the smallest-error one."""

    def __init__(self, pool: Sequence[Callable[[], Regressor]] | None = None):
        self._pool = list(pool) if pool is not None else default_model_pool()
        if not self._pool:
            raise EstimationError("BestModelSelector needs a non-empty model pool")
        self.best_: Regressor | None = None
        self.training_errors_: dict[str, float] = {}

    def fit(self, data: Dataset) -> Regressor:
        """Fit the pool on ``data`` and return (and store) the winner."""
        if data.size == 0:
            raise EstimationError("cannot select a model on an empty dataset")
        best: Regressor | None = None
        best_error = float("inf")
        self.training_errors_ = {}
        for factory in self._pool:
            model = factory()
            model.fit(data.features, data.targets)
            error = model.training_error(data.features, data.targets)
            self.training_errors_[model.name] = error
            if error < best_error:
                best_error = error
                best = model
        self.best_ = best
        return best

    def fit_window(self, data: Dataset, window: ObservationWindow) -> Regressor:
        """Fit on ``window.apply(data)`` — the BML_* baseline entry point."""
        return self.fit(window.apply(data))

    @property
    def best_name(self) -> str:
        if self.best_ is None:
            raise EstimationError("selector not fitted")
        return self.best_.name
