"""k-nearest-neighbour regressor (distance-weighted).

Not named by the paper but a natural extra member for the BML pool:
IReS "tests many algorithms", so the baseline should not be limited to
exactly three.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


class KNNRegressor(Regressor):
    """Inverse-distance-weighted k-NN on standardized features."""

    name = "knn"

    def __init__(self, k: int = 3):
        super().__init__()
        self.k = max(1, k)
        self._features: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        scale = features.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._features = features / scale
        self._targets = targets

    def _predict(self, features: np.ndarray) -> np.ndarray:
        scaled = features / self._scale
        k = min(self.k, self._features.shape[0])
        out = np.empty(scaled.shape[0])
        for i, row in enumerate(scaled):
            distances = np.sqrt(((self._features - row) ** 2).sum(axis=1))
            nearest = np.argsort(distances, kind="stable")[:k]
            near_d = distances[nearest]
            if near_d[0] == 0:
                out[i] = self._targets[nearest[near_d == 0]].mean()
                continue
            weights = 1.0 / near_d
            out[i] = float(np.average(self._targets[nearest], weights=weights))
        return out
