"""Datasets: feature matrices with time order and windowing.

Observations are kept in *time order* (oldest first).  Window extraction
— the heart of both DREAM and the BML_N baselines — always takes the most
recent ``m`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import EstimationError


@dataclass(frozen=True)
class Dataset:
    """An immutable (X, y) pair with named features, oldest row first."""

    features: np.ndarray  # shape (M, L)
    targets: np.ndarray  # shape (M,)
    feature_names: tuple[str, ...]

    def __post_init__(self):
        features = np.asarray(self.features, dtype=float)
        targets = np.asarray(self.targets, dtype=float)
        if features.ndim != 2:
            raise EstimationError(f"features must be 2-D, got shape {features.shape}")
        if targets.ndim != 1:
            raise EstimationError(f"targets must be 1-D, got shape {targets.shape}")
        if features.shape[0] != targets.shape[0]:
            raise EstimationError(
                f"{features.shape[0]} feature rows vs {targets.shape[0]} targets"
            )
        if features.shape[1] != len(self.feature_names):
            raise EstimationError(
                f"{features.shape[1]} feature columns vs "
                f"{len(self.feature_names)} names"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "targets", targets)

    @property
    def size(self) -> int:
        return self.features.shape[0]

    @property
    def dimension(self) -> int:
        return self.features.shape[1]

    def last_window(self, m: int) -> "Dataset":
        """The most recent ``m`` observations (all, if fewer exist)."""
        if m <= 0:
            raise EstimationError(f"window size must be >= 1, got {m}")
        return Dataset(self.features[-m:], self.targets[-m:], self.feature_names)

    def head(self, m: int) -> "Dataset":
        return Dataset(self.features[:m], self.targets[:m], self.feature_names)

    def split_at(self, index: int) -> tuple["Dataset", "Dataset"]:
        """Time-ordered split: (past, future)."""
        return self.head(index), Dataset(
            self.features[index:], self.targets[index:], self.feature_names
        )

    def append(self, x: np.ndarray, y: float) -> "Dataset":
        x = np.asarray(x, dtype=float).reshape(1, -1)
        return Dataset(
            np.vstack([self.features, x]),
            np.append(self.targets, y),
            self.feature_names,
        )

    @classmethod
    def from_rows(cls, rows: list[tuple], feature_names: tuple[str, ...]) -> "Dataset":
        """Build from (x_vector, y) pairs."""
        if not rows:
            return cls(np.zeros((0, len(feature_names))), np.zeros(0), feature_names)
        features = np.array([list(x) for x, _ in rows], dtype=float)
        targets = np.array([y for _, y in rows], dtype=float)
        return cls(features, targets, feature_names)
