"""Expression AST and row-at-a-time evaluator with SQL NULL semantics.

Expressions are built by the SQL parser (unbound ``ColumnRef`` nodes) and
resolved by the plan binder into ``BoundColumn`` nodes carrying a row index.
Evaluation follows SQL three-valued logic: any comparison or arithmetic on
NULL yields NULL; ``AND``/``OR``/``NOT`` use Kleene logic; a filter keeps a
row only when its predicate is exactly ``True``.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import PlanError, SchemaError
from repro.relational.types import DataType, Interval


class Expr:
    """Base class for expression nodes."""

    def children(self) -> list["Expr"]:
        return []

    def __repr__(self) -> str:
        return self.sql()

    def sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    """An unresolved column reference ``qualifier.name``."""

    name: str
    qualifier: str | None = None

    def sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BoundColumn(Expr):
    """A column resolved to position ``index`` of the operator's input row."""

    index: int
    dtype: DataType
    name: str = ""

    def sql(self) -> str:
        return self.name or f"${self.index}"


@dataclass(frozen=True)
class OuterColumn(Expr):
    """A correlated reference to column ``index`` of the *outer* query's row.

    Appears only inside subquery plans.  The executor substitutes it with a
    :class:`Literal` holding the outer row's value before running the
    subquery.
    """

    index: int
    dtype: DataType
    name: str = ""

    def sql(self) -> str:
        return f"outer.{self.name or self.index}"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (int, float, str, bool, date, Interval or None)."""

    value: Any

    def sql(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        if isinstance(self.value, datetime.date):
            return f"DATE '{self.value.isoformat()}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


ARITHMETIC_OPS = {"+", "-", "*", "/"}
COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
BOOLEAN_OPS = {"AND", "OR"}


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison or boolean binary operator."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``NOT expr`` or ``-expr``."""

    op: str  # "NOT" | "-"
    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]

    def sql(self) -> str:
        return f"({self.op} {self.operand.sql()})"


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Expr | None = None

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for cond, value in self.whens:
            out.extend([cond, value])
        if self.else_ is not None:
            out.append(self.else_)
        return out

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.sql()} THEN {value.sql()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE 'pattern'`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {keyword} '{self.pattern}')"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal values."""

    operand: Expr
    values: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, *self.values]

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(v.sql() for v in self.values)
        return f"({self.operand.sql()} {keyword} ({inner}))"


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high`` (inclusive both ends)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]

    def sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {keyword} {self.low.sql()} AND {self.high.sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {keyword})"


AGGREGATE_FUNCTIONS = {"sum", "avg", "count", "min", "max"}


@dataclass(frozen=True)
class AggregateCall(Expr):
    """``func(arg)`` or ``count(*)`` (``arg is None``).

    Aggregate calls are recognised by the planner and never reach the row
    evaluator directly — the aggregate operator computes them and the
    binder replaces them with ``BoundColumn`` slots.
    """

    func: str
    arg: Expr | None
    distinct: bool = False

    def children(self) -> list[Expr]:
        return [] if self.arg is None else [self.arg]

    def sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A subquery used as a scalar value.

    ``plan`` is filled by the planner with a bound logical plan;
    ``correlations`` lists (outer row index, parameter name) pairs the
    executor must supply when evaluating per outer row.
    """

    plan: Any = None
    correlations: tuple[tuple[int, str], ...] = ()

    def sql(self) -> str:
        return "(<scalar subquery>)"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — planner rewrites to a semi-join."""

    operand: Expr
    plan: Any = None
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} (<subquery>))"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    plan: Any = None
    negated: bool = False

    def sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} (<subquery>)"


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(expr: Expr):
    """Yield ``expr`` and all descendants, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggregateCall) for node in walk(expr))


def collect_aggregates(expr: Expr) -> list[AggregateCall]:
    return [node for node in walk(expr) if isinstance(node, AggregateCall)]


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Rebuild ``expr`` bottom-up; ``fn`` may replace any node.

    ``fn`` receives each (already rebuilt) node and returns a replacement or
    ``None`` to keep the node.
    """
    rebuilt = _rebuild(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, transform(expr.left, fn), transform(expr.right, fn))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, transform(expr.operand, fn))
    if isinstance(expr, CaseWhen):
        whens = tuple(
            (transform(cond, fn), transform(value, fn)) for cond, value in expr.whens
        )
        else_ = transform(expr.else_, fn) if expr.else_ is not None else None
        return CaseWhen(whens, else_)
    if isinstance(expr, Like):
        return Like(transform(expr.operand, fn), expr.pattern, expr.negated)
    if isinstance(expr, InList):
        return InList(
            transform(expr.operand, fn),
            tuple(transform(v, fn) for v in expr.values),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            transform(expr.operand, fn),
            transform(expr.low, fn),
            transform(expr.high, fn),
            expr.negated,
        )
    if isinstance(expr, IsNull):
        return IsNull(transform(expr.operand, fn), expr.negated)
    if isinstance(expr, AggregateCall):
        arg = transform(expr.arg, fn) if expr.arg is not None else None
        return AggregateCall(expr.func, arg, expr.distinct)
    if isinstance(expr, InSubquery):
        return InSubquery(transform(expr.operand, fn), expr.plan, expr.negated)
    return expr


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------


def infer_dtype(expr: Expr) -> DataType:
    """Result type of a bound expression (used to build output schemas)."""
    if isinstance(expr, BoundColumn):
        return expr.dtype
    if isinstance(expr, OuterColumn):
        return expr.dtype
    if isinstance(expr, Literal):
        if expr.value is None:
            return DataType.STRING  # NULL literal: arbitrary but stable
        if isinstance(expr.value, Interval):
            raise SchemaError("a bare INTERVAL literal has no column type")
        return DataType.of(expr.value)
    if isinstance(expr, BinaryOp):
        if expr.op in COMPARISON_OPS or expr.op in BOOLEAN_OPS:
            return DataType.BOOLEAN
        left = infer_dtype(expr.left)
        right = _dtype_or_none(expr.right)
        if left is DataType.DATE:
            return DataType.DATE
        if expr.op == "/":
            return DataType.FLOAT
        if DataType.FLOAT in (left, right):
            return DataType.FLOAT
        return left
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return DataType.BOOLEAN
        return infer_dtype(expr.operand)
    if isinstance(expr, (Like, InList, Between, IsNull, InSubquery, Exists)):
        return DataType.BOOLEAN
    if isinstance(expr, CaseWhen):
        branch_types = {infer_dtype(value) for _, value in expr.whens}
        if expr.else_ is not None:
            branch_types.add(infer_dtype(expr.else_))
        if branch_types == {DataType.INTEGER, DataType.FLOAT}:
            return DataType.FLOAT
        if len(branch_types) == 1:
            return branch_types.pop()
        raise SchemaError(f"CASE branches disagree on type: {branch_types}")
    if isinstance(expr, AggregateCall):
        if expr.func == "count":
            return DataType.INTEGER
        if expr.func == "avg":
            return DataType.FLOAT
        if expr.arg is None:
            raise SchemaError(f"{expr.func}(*) is not valid")
        if expr.func in ("sum", "min", "max"):
            return infer_dtype(expr.arg)
        raise SchemaError(f"unknown aggregate {expr.func!r}")
    if isinstance(expr, ScalarSubquery):
        if expr.plan is None:
            raise SchemaError("scalar subquery not yet planned")
        fields = expr.plan.output_fields()
        if len(fields) != 1:
            raise SchemaError("scalar subquery must produce exactly one column")
        return fields[0].dtype
    raise SchemaError(f"cannot infer type of {expr!r}")


def _dtype_or_none(expr: Expr) -> DataType | None:
    try:
        return infer_dtype(expr)
    except SchemaError:
        return None


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_LIKE_CACHE: dict[str, re.Pattern] = {}


def like_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern into an anchored regex (cached)."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


class EvalContext:
    """Services the evaluator may need: subquery execution.

    The local executor installs a callback able to run a bound logical plan
    for correlated subqueries; plain expression evaluation needs none.
    """

    def __init__(self, subquery_runner: Callable[[Expr, tuple], Any] | None = None):
        self._subquery_runner = subquery_runner

    def run_subquery(self, node: Expr, row: tuple) -> Any:
        if self._subquery_runner is None:
            raise PlanError(f"no subquery runner available for {node!r}")
        return self._subquery_runner(node, row)


_EMPTY_CONTEXT = EvalContext()


def evaluate(expr: Expr, row: tuple, context: EvalContext | None = None) -> Any:
    """Evaluate a bound expression against one input row.

    Returns a Python value or ``None`` for SQL NULL.  Boolean expressions
    return ``True``/``False``/``None`` (three-valued logic).
    """
    ctx = context or _EMPTY_CONTEXT
    if isinstance(expr, BoundColumn):
        return row[expr.index]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp):
        return _evaluate_binary(expr, row, ctx)
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, row, ctx)
        if expr.op == "NOT":
            return None if value is None else (not value)
        if expr.op == "-":
            if value is None:
                return None
            if isinstance(value, Interval):
                return -value
            return -value
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, CaseWhen):
        for cond, value in expr.whens:
            if evaluate(cond, row, ctx) is True:
                return evaluate(value, row, ctx)
        return evaluate(expr.else_, row, ctx) if expr.else_ is not None else None
    if isinstance(expr, Like):
        value = evaluate(expr.operand, row, ctx)
        if value is None:
            return None
        matched = like_regex(expr.pattern).match(value) is not None
        return (not matched) if expr.negated else matched
    if isinstance(expr, InList):
        return _evaluate_in_list(expr, row, ctx)
    if isinstance(expr, Between):
        value = evaluate(expr.operand, row, ctx)
        low = evaluate(expr.low, row, ctx)
        high = evaluate(expr.high, row, ctx)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expr.negated else result
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, row, ctx)
        result = value is None
        return (not result) if expr.negated else result
    if isinstance(expr, (ScalarSubquery, InSubquery, Exists)):
        return ctx.run_subquery(expr, row)
    if isinstance(expr, AggregateCall):
        raise PlanError(
            f"aggregate {expr.sql()} reached the row evaluator; "
            "aggregates must be computed by an aggregate operator"
        )
    if isinstance(expr, ColumnRef):
        raise PlanError(f"unbound column reference {expr.sql()}; run the binder first")
    if isinstance(expr, OuterColumn):
        raise PlanError(
            f"correlated reference {expr.sql()} was not substituted before evaluation"
        )
    raise PlanError(f"cannot evaluate expression {expr!r}")


def _evaluate_binary(expr: BinaryOp, row: tuple, ctx: EvalContext) -> Any:
    op = expr.op
    if op in BOOLEAN_OPS:
        left = evaluate(expr.left, row, ctx)
        # Kleene short-circuit: AND is False if either side is False,
        # OR is True if either side is True, regardless of NULLs.
        if op == "AND":
            if left is False:
                return False
            right = evaluate(expr.right, row, ctx)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if left is True:
            return True
        right = evaluate(expr.right, row, ctx)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(expr.left, row, ctx)
    right = evaluate(expr.right, row, ctx)
    if left is None or right is None:
        return None
    if op in COMPARISON_OPS:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    if op in ARITHMETIC_OPS:
        return _arith(op, left, right)
    raise PlanError(f"unknown binary operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if isinstance(left, datetime.date) or isinstance(right, datetime.date):
        return _date_arith(op, left, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL engines raise; NULL keeps experiments total
        return left / right
    raise PlanError(f"unknown arithmetic operator {op!r}")


def _date_arith(op: str, left: Any, right: Any) -> Any:
    if isinstance(left, datetime.date) and isinstance(right, Interval):
        if op == "+":
            return right.add_to(left)
        if op == "-":
            return right.subtract_from(left)
    if isinstance(left, Interval) and isinstance(right, datetime.date) and op == "+":
        return left.add_to(right)
    if isinstance(left, datetime.date) and isinstance(right, datetime.date) and op == "-":
        return (left - right).days
    raise PlanError(f"unsupported date arithmetic: {left!r} {op} {right!r}")


def _evaluate_in_list(expr: InList, row: tuple, ctx: EvalContext) -> Any:
    value = evaluate(expr.operand, row, ctx)
    if value is None:
        return None
    saw_null = False
    for candidate in expr.values:
        candidate_value = evaluate(candidate, row, ctx)
        if candidate_value is None:
            saw_null = True
        elif candidate_value == value:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated
