"""In-memory relational substrate.

Provides typed schemas, tables, and an expression language.  The SQL front
end (:mod:`repro.sql`) parses into these structures and the plan layer
(:mod:`repro.plans`) executes over them.  The engine simulators in
:mod:`repro.engines` reuse the same plans but *cost* them instead of
running them.
"""

from repro.relational.types import DataType, Interval
from repro.relational.schema import Column, Schema, Field
from repro.relational.table import Table
from repro.relational import expressions

__all__ = [
    "DataType",
    "Interval",
    "Column",
    "Schema",
    "Field",
    "Table",
    "expressions",
]
