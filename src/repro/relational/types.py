"""Data types for the relational substrate.

The type system is deliberately small: the five scalar types TPC-H and the
medical schema need, plus an ``Interval`` value type for date arithmetic.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.common.errors import SchemaError


class DataType(enum.Enum):
    """Scalar column types."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def coerce(self, value):
        """Coerce ``value`` to this type, or raise :class:`SchemaError`.

        ``None`` passes through (SQL NULL is typeless).
        """
        if value is None:
            return None
        if self is DataType.INTEGER:
            if isinstance(value, bool):
                raise SchemaError(f"cannot store boolean {value!r} in INTEGER column")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
        elif self is DataType.FLOAT:
            if isinstance(value, bool):
                raise SchemaError(f"cannot store boolean {value!r} in FLOAT column")
            if isinstance(value, (int, float)):
                return float(value)
        elif self is DataType.STRING:
            if isinstance(value, str):
                return value
        elif self is DataType.DATE:
            if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
                return value
            if isinstance(value, str):
                return parse_date(value)
        elif self is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
        raise SchemaError(f"cannot coerce {value!r} to {self.value}")

    @classmethod
    def of(cls, value) -> "DataType":
        """Infer the type of a Python value (used for literals)."""
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STRING
        if isinstance(value, datetime.date):
            return cls.DATE
        raise SchemaError(f"no DataType for python value {value!r}")


_PYTHON_TYPES = {
    DataType.INTEGER: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.DATE: datetime.date,
    DataType.BOOLEAN: bool,
}

#: Average encoded width in bytes per type, used for logical size accounting.
TYPE_WIDTH_BYTES = {
    DataType.INTEGER: 8,
    DataType.FLOAT: 8,
    DataType.STRING: 24,
    DataType.DATE: 8,
    DataType.BOOLEAN: 1,
}


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` date string."""
    try:
        return datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise SchemaError(f"invalid date literal {text!r}") from exc


@dataclass(frozen=True)
class Interval:
    """A SQL interval: ``INTERVAL '3' MONTH`` etc.

    Stored in mixed units because month arithmetic is not a fixed number of
    days.  Supports addition to and subtraction from :class:`datetime.date`.
    """

    years: int = 0
    months: int = 0
    days: int = 0

    def add_to(self, date: datetime.date) -> datetime.date:
        total_months = date.year * 12 + (date.month - 1) + self.years * 12 + self.months
        year, month = divmod(total_months, 12)
        month += 1
        day = min(date.day, _days_in_month(year, month))
        return datetime.date(year, month, day) + datetime.timedelta(days=self.days)

    def subtract_from(self, date: datetime.date) -> datetime.date:
        negated = Interval(-self.years, -self.months, -self.days)
        return negated.add_to(date)

    def __neg__(self) -> "Interval":
        return Interval(-self.years, -self.months, -self.days)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    first_next = datetime.date(year + (month == 12), month % 12 + 1, 1)
    return (first_next - datetime.timedelta(days=1)).day
