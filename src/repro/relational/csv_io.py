"""CSV import/export for tables.

Used by examples to persist generated datasets and by tests to round-trip
tables.  The format is plain ``csv`` with an ISO date encoding and empty
fields for NULL.
"""

from __future__ import annotations

import csv
import datetime
from pathlib import Path

from repro.common.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType


def _encode(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _decode(text: str, dtype: DataType):
    if text == "":
        return None
    if dtype is DataType.INTEGER:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(text)
    if dtype is DataType.BOOLEAN:
        if text in ("true", "false"):
            return text == "true"
        raise SchemaError(f"invalid boolean field {text!r}")
    return text


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for row in table.rows():
            writer.writerow([_encode(v) for v in row])


def read_csv(path: str | Path, schema: Schema, name: str | None = None) -> Table:
    """Read a table written by :func:`write_csv` back under ``schema``."""
    path = Path(path)
    dtypes = [c.dtype for c in schema]
    rows = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise SchemaError(f"{path}: empty file")
        if [h.lower() for h in header] != [n.lower() for n in schema.names]:
            raise SchemaError(
                f"{path}: header {header!r} does not match schema {schema.names!r}"
            )
        for record in reader:
            if len(record) != len(dtypes):
                raise SchemaError(f"{path}: row width {len(record)} != {len(dtypes)}")
            rows.append([_decode(field, dtype) for field, dtype in zip(record, dtypes)])
    return Table.from_rows(name or path.stem, schema, rows, coerce=False)
