"""Schemas: named, typed, optionally qualified columns.

Two closely related classes live here:

* :class:`Column` — the *definition* of a column in a base table.
* :class:`Field` — one slot in the output of a plan operator; carries an
  optional qualifier (table alias) used by the binder to resolve
  ``alias.column`` references.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SchemaError
from repro.relational.types import DataType, TYPE_WIDTH_BYTES


@dataclass(frozen=True)
class Column:
    """A column definition in a base table."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass(frozen=True)
class Field:
    """One output slot of a plan operator.

    ``qualifier`` is the table alias the field is visible under (``None``
    for computed expressions), ``name`` the column name.
    """

    name: str
    dtype: DataType
    qualifier: str | None = None
    nullable: bool = True

    def matches(self, qualifier: str | None, name: str) -> bool:
        """Whether a reference ``qualifier.name`` resolves to this field."""
        if name.lower() != self.name.lower():
            return False
        if qualifier is None:
            return True
        return self.qualifier is not None and qualifier.lower() == self.qualifier.lower()

    def with_qualifier(self, qualifier: str | None) -> "Field":
        return Field(self.name, self.dtype, qualifier, self.nullable)


class Schema:
    """An ordered collection of :class:`Column` with by-name lookup."""

    def __init__(self, columns: list[Column] | tuple[Column, ...]):
        names_seen: set[str] = set()
        for column in columns:
            lowered = column.name.lower()
            if lowered in names_seen:
                raise SchemaError(f"duplicate column name {column.name!r}")
            names_seen.add(lowered)
        self._columns = tuple(columns)
        self._index = {c.name.lower(): i for i, c in enumerate(self._columns)}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({inner})"

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Position of column ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {', '.join(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def fields(self, qualifier: str | None = None) -> list[Field]:
        """The schema as binder fields, all under one qualifier."""
        return [Field(c.name, c.dtype, qualifier, c.nullable) for c in self._columns]

    def row_width_bytes(self) -> int:
        """Average encoded row width, for logical size accounting."""
        return sum(TYPE_WIDTH_BYTES[c.dtype] for c in self._columns)
