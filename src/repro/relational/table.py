"""Columnar in-memory tables.

A :class:`Table` stores one Python list per column.  This keeps projection
cheap, makes size accounting honest, and is plenty fast for the physically
scaled-down datasets used in tests and experiments (the *simulated* sizes
are tracked separately — see :mod:`repro.tpch.dataset`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType


class Table:
    """An immutable-by-convention columnar table."""

    def __init__(self, name: str, schema: Schema, columns: list[list[Any]] | None = None):
        self.name = name
        self.schema = schema
        if columns is None:
            columns = [[] for _ in range(len(schema))]
        if len(columns) != len(schema):
            raise SchemaError(
                f"table {name!r}: {len(columns)} column arrays for "
                f"{len(schema)} schema columns"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"table {name!r}: ragged columns with lengths {lengths}")
        self._columns = columns

    # Construction ------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        coerce: bool = True,
    ) -> "Table":
        """Build a table from row tuples, coercing values to column types."""
        columns: list[list[Any]] = [[] for _ in range(len(schema))]
        dtypes = [c.dtype for c in schema]
        for row in rows:
            if len(row) != len(schema):
                raise SchemaError(
                    f"table {name!r}: row of {len(row)} values for "
                    f"{len(schema)} columns: {row!r}"
                )
            for i, value in enumerate(row):
                columns[i].append(dtypes[i].coerce(value) if coerce else value)
        return cls(name, schema, columns)

    @classmethod
    def empty_like(cls, other: "Table", name: str | None = None) -> "Table":
        return cls(name or other.name, other.schema)

    # Introspection -----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.schema)

    def column(self, name: str) -> list[Any]:
        """The raw values of column ``name``."""
        return self._columns[self.schema.index_of(name)]

    def column_at(self, index: int) -> list[Any]:
        return self._columns[index]

    def row(self, index: int) -> tuple[Any, ...]:
        return tuple(col[index] for col in self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows as tuples (materialises nothing)."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_rows(self) -> list[tuple[Any, ...]]:
        return list(self.rows())

    def size_bytes(self) -> int:
        """Logical encoded size: rows x average row width."""
        return self.num_rows * self.schema.row_width_bytes()

    # Transformation ----------------------------------------------------

    def select_columns(self, names: Sequence[str], new_name: str | None = None) -> "Table":
        """A new table containing only ``names``, in the given order."""
        indices = [self.schema.index_of(n) for n in names]
        schema = Schema([self.schema.columns[i] for i in indices])
        columns = [self._columns[i] for i in indices]
        return Table(new_name or self.name, schema, [list(c) for c in columns])

    def take(self, row_indices: Sequence[int], new_name: str | None = None) -> "Table":
        """A new table with only the rows at ``row_indices`` (in order)."""
        columns = [[col[i] for i in row_indices] for col in self._columns]
        return Table(new_name or self.name, self.schema, columns)

    def head(self, n: int) -> "Table":
        return self.take(range(min(n, self.num_rows)))

    def renamed(self, name: str) -> "Table":
        return Table(name, self.schema, self._columns)

    # Comparison helpers for tests --------------------------------------

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """All rows sorted with NULLs last — stable comparison for tests."""

        def key(row: tuple[Any, ...]):
            return tuple((value is None, value) for value in row)

        return sorted(self.rows(), key=key)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.schema.names})"


def table_from_dicts(name: str, schema: Schema, records: Iterable[dict]) -> Table:
    """Build a table from dict records keyed by column name."""
    names = schema.names
    rows = []
    for record in records:
        missing = [n for n in names if n not in record]
        if missing:
            raise SchemaError(f"record missing columns {missing}: {record!r}")
        rows.append([record[n] for n in names])
    return Table.from_rows(name, schema, rows)


def infer_schema(name: str, records: list[dict]) -> Schema:
    """Infer a schema from dict records (first non-null value wins)."""
    if not records:
        raise SchemaError(f"cannot infer schema for {name!r} from zero records")
    names = list(records[0].keys())
    columns = []
    for column_name in names:
        dtype: DataType | None = None
        for record in records:
            value = record.get(column_name)
            if value is not None:
                dtype = DataType.of(value)
                break
        if dtype is None:
            raise SchemaError(f"column {column_name!r} is entirely NULL; cannot infer type")
        columns.append(Column(column_name, dtype))
    return Schema(columns)
