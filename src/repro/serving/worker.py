"""Shard worker process: the remote half of the sharded serving RPC.

A :class:`~repro.serving.sharded.ShardedEstimationService` owns a pool
of these workers, one process per shard.  Each worker is *shared-
nothing*: it builds its own :class:`~repro.ires.modelling.Modelling`
registry (and therefore its own estimation strategy, incremental DREAM
engines and :class:`~repro.core.cache.ModelCache`) from a picklable
zero-argument ``strategy_factory``, and owns a private replica of every
history assigned to its shard.  The parent process keeps the
authoritative histories and streams row deltas to the worker lazily,
right before each fit, so the replica is bitwise-identical to the
parent's history at every fit point — which is what makes replay after
a crash deterministic.

RPC protocol
------------

Messages travel over one duplex :func:`multiprocessing.Pipe` per worker
and are plain picklable values: requests are dicts of primitives (plus
observation rows), replies wrap either a value or a typed error.

Every request carries ``"v": PROTOCOL_VERSION``.  A worker that receives
a different version answers with an ``internal``-kind error instead of
guessing at the message's semantics — a mixed-protocol deployment (old
parent, new worker or vice versa) fails loudly on the first RPC rather
than corrupting replicas silently.  ``crash`` and ``shutdown`` are
exempt so a mismatched pool can still be torn down.

Request shapes (``rows`` is ``[(tick, {feature: value}, {metric: value}),
...]`` in history append order)::

    {"op": "register", "key": str,
     "feature_names": tuple[str, ...], "metrics": tuple[str, ...]}
    {"op": "extend",   "key": str, "rows": list}         -> new size
    {"op": "fit",      "key": str, "rows": list,
     "expected_size": int}                               -> FittedCostModel
    {"op": "fit_many", "items": [{"key", "rows", "expected_size"}, ...]}
                          -> [{"key", "ok", ...}, ...] (see below)
    {"op": "forget",   "key": str, "route_v": int}       -> None
    {"op": "stats"}       -> {"pid", "templates", "fits", "engine_cache"}
    {"op": "ping"}        -> "pong"
    {"op": "shutdown"}    -> None (worker exits after replying)
    {"op": "crash"}       -> no reply; the worker hard-exits (test hook
                             for the crash-detection/respawn path)
    {"op": "hang"}        -> no reply; the worker wedges forever (test
                             hook for the rpc_timeout hung-worker guard)

``forget`` is the migration half-close: the parent flipped the key's
route to another shard, so this worker drops its replica *and records
the route version it was dropped at*.  Any straggler RPC that still
names the key (an in-flight fit addressed under the old route) is then
refused with a ``stale_route``-kind error naming that version — loudly,
never as a soft "cannot fit yet" — because a fit landing on a forgotten
replica would mean the atomic route flip was not atomic after all.  A
later ``register`` (the key migrating back) clears the tombstone.

``fit_many`` is the batch-first sibling of ``fit``: one round-trip
carries every stale template of the shard plus its coalesced row delta,
and the reply isolates failures per item — each element is either
``{"key", "ok": True, "value": FittedCostModel, "appended": int}`` or
``{"key", "ok": False, "kind", "error", "appended": int}``.  A failing
tenant never voids its shard-mates' fits, and ``appended`` lets the
parent advance each sync cursor by what actually landed.

Reply shapes::

    {"ok": True,  "value": <op-specific value>}
    {"ok": False, "kind": "validation" | "estimation" | "stale_route"
                          | "internal",
     "error": str, ...}

A failed ``fit`` reply additionally carries ``"appended": int`` — how
many of the request's rows the replica appended before the failure.  A
too-short history fails *after* the delta landed, and the parent must
advance its sync cursor by exactly that amount or the next fit would
re-send the rows and corrupt the replica's tick order.

``kind`` preserves the parent-side exception taxonomy across the
process boundary: ``validation`` re-raises as
:class:`~repro.common.errors.ValidationError`, ``estimation`` as
:class:`~repro.common.errors.EstimationError` (so "history still too
short to fit" keeps its type through the gateway), ``stale_route`` as
a :class:`~repro.serving.sharded.StaleRouteError`, and ``internal`` as
a :class:`~repro.serving.sharded.ShardedServingError`.

The ``fit`` request carries ``expected_size`` — the parent's history
size after the delta — as a desync tripwire: a replica that disagrees
refuses to fit instead of silently training on a torn window.
"""

from __future__ import annotations

import os
import time
from typing import Iterable

from repro.common.errors import EstimationError, ValidationError
from repro.core.history import ExecutionHistory

#: Observation rows on the wire: append-ordered (tick, features, costs).
Row = tuple[int, dict[str, float], dict[str, float]]

#: Wire-protocol version stamped on every request.  Bumped whenever a
#: message shape changes incompatibly (v2 added ``fit_many`` and the
#: version field itself; v3 added ``forget``/``hang`` and the
#: ``stale_route`` error kind); parent and workers must match exactly.
PROTOCOL_VERSION = 3


def strategy_from_config(config):
    """Build the estimation strategy a ``FederationConfig`` names.

    Module-level so ``functools.partial(strategy_from_config, config)``
    is picklable and can travel to a spawned worker; the registry lookup
    happens inside the worker process (backend *names* cross the process
    boundary, strategy *instances* never do).
    """
    from repro.federation.registry import create_strategy

    return create_strategy(config)


def dream_strategy(
    r2_required: float = 0.8,
    max_window: int | None = None,
    cache_capacity: int = 256,
    cache_ttl_seconds: float | None = None,
):
    """Picklable factory for a worker-local incremental DREAM strategy.

    The benches and tests shard without a full ``FederationConfig``;
    ``functools.partial(dream_strategy, r2_required=..., ...)`` gives
    them a wire-safe factory equivalent to the ``dream-incremental``
    registry backend.
    """
    from repro.core.cache import ModelCache
    from repro.ires.modelling import DreamStrategy

    return DreamStrategy(
        r2_required=r2_required,
        max_window=max_window,
        incremental=True,
        engine_cache=ModelCache(
            capacity=cache_capacity, ttl_seconds=cache_ttl_seconds
        ),
    )


def _extend(history: ExecutionHistory, rows: Iterable[Row]) -> int:
    for tick, features, costs in rows:
        history.append(tick, features, costs)
    return history.size


class _OpError(Exception):
    """Wraps a handler failure with op-specific reply extras."""

    def __init__(self, error: BaseException, extras: dict):
        super().__init__(str(error))
        self.error = error
        self.extras = extras


class _StaleRouteReference(Exception):
    """An RPC named a key that was migrated off this shard (serialised
    back as the ``stale_route`` kind)."""


class _WorkerState:
    """One shard's private universe: modelling registry + counters."""

    def __init__(self, strategy_factory):
        from repro.ires.modelling import Modelling

        self.modelling = Modelling(strategy_factory())
        self.histories: dict[str, ExecutionHistory] = {}
        #: Migration tombstones: key -> route version it left at.
        self.forgotten: dict[str, int] = {}
        self.fits = 0

    def handle(self, message: dict):
        op = message["op"]
        if op == "ping":
            return "pong"
        if op == "register":
            key = message["key"]
            feature_names = tuple(message["feature_names"])
            metrics = tuple(message["metrics"])
            existing = self.histories.get(key)
            if existing is not None:
                # Idempotent: a respawn replay may have registered this
                # key just before the original register RPC is retried.
                # Duplicate detection is the parent's job; only a schema
                # mismatch is a genuine error here.
                if (
                    existing.feature_names == feature_names
                    and existing.metric_names == metrics
                ):
                    return None
                raise ValidationError(
                    f"template {key!r} already on this shard with a "
                    "different feature/metric schema"
                )
            history = ExecutionHistory(feature_names, metrics)
            self.histories[key] = history
            self.modelling.register(key, history)
            self.forgotten.pop(key, None)  # the key migrated back
            return None
        if op == "forget":
            key = message["key"]
            self.histories.pop(key, None)
            self.modelling.deregister(key)
            self.forgotten[key] = int(message.get("route_v", 0))
            return None
        if op == "extend":
            return _extend(self._history(message["key"]), message["rows"])
        if op == "fit":
            return self._fit_one(
                message["key"], message["rows"], message["expected_size"]
            )
        if op == "fit_many":
            # Per-item isolation: each item either fits or carries its
            # own typed failure; a broken tenant never voids the batch.
            results = []
            for item in message["items"]:
                key = item["key"]
                try:
                    fitted = self._fit_one(
                        key, item["rows"], item["expected_size"]
                    )
                except _OpError as wrapped:
                    results.append(
                        {
                            "key": key,
                            "ok": False,
                            "kind": _error_kind(wrapped.error),
                            "error": str(wrapped.error),
                            **wrapped.extras,
                        }
                    )
                else:
                    results.append(
                        {
                            "key": key,
                            "ok": True,
                            "value": fitted,
                            "appended": len(item["rows"]),
                        }
                    )
            return results
        if op == "stats":
            engine_cache = getattr(self.modelling.strategy, "engine_cache", None)
            return {
                "pid": os.getpid(),
                "templates": len(self.histories),
                "fits": self.fits,
                "engine_cache": None if engine_cache is None else engine_cache.stats,
            }
        raise RuntimeError(f"unknown worker op {op!r}")

    def _fit_one(self, key: str, rows: Iterable[Row], expected: int):
        """Append one template's delta and refit it (``fit`` semantics;
        ``fit_many`` calls this once per item)."""
        appended = 0
        try:
            history = self._history(key)
            for tick, features, costs in rows:
                history.append(tick, features, costs)
                appended += 1
            if history.size != expected:
                raise RuntimeError(
                    f"shard replica desync for {key!r}: replica has "
                    f"{history.size} rows, parent expected {expected}"
                )
            fitted = self.modelling.fit(key)
        except BaseException as error:  # noqa: BLE001 - reply carries it
            # The parent's sync cursor must advance by what actually
            # landed, even though the fit failed (see module docs).
            raise _OpError(error, {"appended": appended}) from error
        self.fits += 1
        return fitted

    def _history(self, key: str) -> ExecutionHistory:
        try:
            return self.histories[key]
        except KeyError:
            if key in self.forgotten:
                # Not "cannot fit yet" (the estimation kind, which batch
                # callers soak up): a straggler RPC outran a route flip,
                # and that must surface as a loud infrastructure error.
                raise _StaleRouteReference(
                    f"stale route: replica for {key!r} was migrated off "
                    f"this shard at route version {self.forgotten[key]}; "
                    "refusing the RPC"
                ) from None
            known = ", ".join(sorted(self.histories)) or "<none>"
            raise EstimationError(
                f"shard has no replica for {key!r}; have: {known}"
            ) from None


def _serve_boot_error(conn, reply: dict) -> None:
    """Answer every request with the saved boot failure until shutdown."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message.get("op")
        if op == "crash":
            os._exit(17)
        if op == "hang":
            while True:
                time.sleep(3600)
        try:
            conn.send({"ok": True, "value": None} if op == "shutdown" else reply)
        except (BrokenPipeError, OSError):
            return
        if op == "shutdown":
            return


def _version_mismatch(message: dict) -> dict | None:
    """An ``internal``-kind error reply when the request's protocol
    version does not match ours, else ``None``.  ``crash``/``shutdown``
    are exempt so a mismatched pool can still be torn down cleanly."""
    if message.get("op") in ("crash", "shutdown"):
        return None
    version = message.get("v")
    if version == PROTOCOL_VERSION:
        return None
    return {
        "ok": False,
        "kind": "internal",
        "error": (
            f"shard RPC protocol mismatch: worker speaks v{PROTOCOL_VERSION}, "
            f"request carried {'no version' if version is None else f'v{version}'}"
            " — parent and workers must run the same build"
        ),
    }


def _error_kind(error: BaseException) -> str:
    # ValidationError first: the federation taxonomy dual-inherits, and
    # a config-flavoured failure should stay a validation failure.
    if isinstance(error, ValidationError):
        return "validation"
    if isinstance(error, EstimationError):
        return "estimation"
    if isinstance(error, _StaleRouteReference):
        return "stale_route"
    return "internal"


def worker_main(conn, strategy_factory) -> None:
    """The worker process entry point: serve RPCs until shutdown.

    Every request gets exactly one reply (except ``crash``, which
    hard-exits, and ``shutdown``, which replies then returns).  Errors
    never kill the loop — they are serialised back with their taxonomy
    kind so the parent re-raises the right exception type.  That
    includes *boot* failures (``strategy_factory()`` raising, e.g. a
    strategy name registered only in the parent process under a spawn
    context): instead of dying with an opaque exit code, the worker
    stays up and answers every request with the boot error, so the
    parent's first RPC surfaces the root cause instead of a futile
    crash-respawn loop.
    """
    try:
        state = _WorkerState(strategy_factory)
    except BaseException as error:  # noqa: BLE001 - serialise the boot failure
        _serve_boot_error(
            conn,
            {
                "ok": False,
                "kind": _error_kind(error),
                "error": f"shard worker failed to start: {error}",
            },
        )
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing left to serve
        op = message.get("op")
        if op == "crash":
            os._exit(17)  # simulate a hard worker death, no reply
        if op == "hang":
            # Simulated wedge, no reply: the process stays alive but
            # stops serving, which is exactly what the parent's
            # rpc_timeout guard must detect and terminate.
            while True:
                time.sleep(3600)
        if op == "shutdown":
            try:
                conn.send({"ok": True, "value": None})
            except (BrokenPipeError, OSError):
                pass
            return
        mismatch = _version_mismatch(message)
        if mismatch is not None:
            try:
                conn.send(mismatch)
            except (BrokenPipeError, OSError):
                return
            continue
        try:
            reply = {"ok": True, "value": state.handle(message)}
        except _OpError as wrapped:
            reply = {
                "ok": False,
                "kind": _error_kind(wrapped.error),
                "error": str(wrapped.error),
                **wrapped.extras,
            }
        except BaseException as error:  # noqa: BLE001 - serialise everything
            reply = {"ok": False, "kind": _error_kind(error), "error": str(error)}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
