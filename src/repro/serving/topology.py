"""Elastic shard topology: load accounting types and the rebalance policy.

Static CRC32 placement (PR 5) spreads templates uniformly over the
worker pool, but federation tenants are *skewed* — one hot hospital
template can saturate its shard while siblings idle (ROADMAP open
item 2; Liu et al., arXiv 2112.07980, frame the multi-tenant placement
problem).  Deterministic replay already makes *moving* a template safe:
a fresh replica re-fed the authoritative parent-side history walks the
identical window schedule, so migration is replay plus a route flip.
This module supplies the control-loop side of that story:

* :class:`ShardLoad` / :class:`TemplateLoad` — read-only load accounting
  snapshots published by
  :meth:`~repro.serving.sharded.ShardedEstimationService.shard_loads`
  and ``template_loads`` (fit wall-time EWMA, RPC queue depth,
  pending-row backlog);
* :class:`RebalanceConfig` — the policy knobs (hysteresis factors, move
  budget, pool bounds), validated eagerly;
* :class:`RebalancePolicy` — a *stateful* greedy controller: per cycle
  it turns fit-count deltas x fit-cost EWMAs into template heat, then
  plans hottest-template-to-coldest-shard moves under hysteresis, pool
  growth under backlog pressure, and pool shrink when trailing shards
  go idle;
* :class:`Migration` / :class:`RebalancePlan` / :class:`RebalanceOutcome`
  — the typed decisions and their applied result.

The policy only *plans*; the sharded service applies plans through its
own ``migrate``/``resize`` primitives, which hold the per-template and
shard locks that make a mid-burst move bitwise invisible.  Placement is
a pure performance degree of freedom — ``tests/chaos.py`` proves that
any interleaving of moves, crashes, and resizes leaves every prediction
identical to the single-process oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Smoothing factor for the *intra-service* fit wall-time EWMAs (per
#: shard and per template): ``ewma = ALPHA * sample + (1-ALPHA) * ewma``.
LOAD_EWMA_ALPHA = 0.25

#: Heat assigned to a template that has fitted this cycle but has no
#: wall-time sample yet (seconds) — keeps "fitted at least once" strictly
#: hotter than "idle" even before timing data lands.
_MIN_FIT_COST = 1e-6


@dataclass(frozen=True)
class TemplateLoad:
    """One template's load accounting snapshot (parent-side, no RPC)."""

    key: str
    shard: int
    #: Lifetime successful fits for this template.
    fits: int
    #: EWMA of one fit's wall time (seconds); ``None`` until the first fit.
    fit_seconds_ewma: float | None
    #: Rows appended but not yet shipped to the shard worker.
    backlog: int


@dataclass(frozen=True)
class ShardLoad:
    """One shard's load accounting snapshot (parent-side, no RPC)."""

    index: int
    #: Templates currently routed to this shard (sorted).
    routed: tuple[str, ...]
    #: Pending rows summed over the routed templates.
    backlog: int
    #: Threads currently waiting for (or holding) this shard's lock on a
    #: fit path — the RPC queue depth.
    queue_depth: int
    #: EWMA of one fit RPC's parent-observed wall time per template
    #: (seconds); ``None`` until the first fit lands on this shard.
    fit_seconds_ewma: float | None


@dataclass(frozen=True)
class Migration:
    """One planned (or applied) template move."""

    key: str
    src: int
    dst: int

    def describe(self) -> str:
        return f"{self.key}: shard {self.src} -> {self.dst}"


@dataclass(frozen=True)
class RebalancePlan:
    """What one policy cycle decided (not yet applied)."""

    moves: tuple[Migration, ...] = ()
    grow_to: int | None = None
    shrink_to: int | None = None
    reason: str = "balanced"

    @property
    def is_noop(self) -> bool:
        return not self.moves and self.grow_to is None and self.shrink_to is None


@dataclass(frozen=True)
class RebalanceOutcome:
    """One applied control cycle, as reported by
    :meth:`~repro.serving.sharded.ShardedEstimationService.rebalance`."""

    moves: tuple[Migration, ...]
    grew_to: int | None
    shrank_to: int | None
    route_version: int
    reason: str
    #: The ``max_migrations_per_cycle`` throttle in force when the cycle
    #: ran (``None`` = unthrottled); planned moves beyond the cap were
    #: deferred to later cycles, not dropped from the policy's heat state.
    migration_cap: int | None = None

    def describe(self) -> str:
        parts = []
        if self.grew_to is not None:
            parts.append(f"grew pool to {self.grew_to}")
        for move in self.moves:
            parts.append(move.describe())
        if self.shrank_to is not None:
            parts.append(f"shrank pool to {self.shrank_to}")
        if not parts:
            parts.append("no-op")
        text = f"[route v{self.route_version}] " + "; ".join(parts)
        if self.migration_cap is not None:
            text += f" [cap {self.migration_cap}]"
        return text + f" ({self.reason})"


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs for :class:`RebalancePolicy`, validated eagerly.

    Parameters
    ----------
    hot_factor / cold_factor:
        Hysteresis thresholds around the mean shard heat: a shard is a
        move *source* only above ``hot_factor * mean`` and a move
        *destination* only below ``cold_factor * mean``.  The gap keeps
        a near-balanced pool from oscillating templates back and forth.
    max_moves:
        Migration budget per control cycle (each move replays a full
        history over the pipe RPC — bounded churn per cycle).
    min_workers / max_workers:
        Pool-size bounds for autoscaling.  ``max_workers=None`` disables
        growth; shrink never goes below ``min_workers``.
    grow_backlog:
        Pool-growth trigger: grow by one worker when any shard's
        pending-row backlog exceeds this (``None`` disables growth even
        if ``max_workers`` allows it).  Backlog is the one absolute
        pressure signal — heat hysteresis is relative and cannot say
        "every shard is overloaded".
    backlog_weight:
        Seconds of synthetic heat per pending row, folded into template
        heat so persistent backlog attracts moves even between fit
        rounds.  ``0.0`` (default) ranks purely by measured fit cost.
    smoothing:
        Cross-cycle EWMA factor on template heat (``1.0`` = trust only
        the current cycle).
    cadence_flushes:
        For the gateway's automatic control loop: run one policy cycle
        every N front-door flushes.
    cadence_seconds:
        For the gateway's *background* control loop: a daemon ticker
        runs one policy cycle every this many seconds, so an idle
        gateway (no front-door traffic) still rebalances.  ``None``
        (default) disables the ticker; flush-driven cycles still run.
    max_migrations_per_cycle:
        Hard cap on migrations *applied* per control cycle, enforced at
        apply time on top of the planner's ``max_moves`` budget (``0``
        plans but applies nothing; ``None`` = unthrottled).  The cap in
        force is recorded on ``RebalanceOutcome.migration_cap``.
    """

    hot_factor: float = 1.25
    cold_factor: float = 0.75
    max_moves: int = 1
    min_workers: int = 1
    max_workers: int | None = None
    grow_backlog: int | None = None
    backlog_weight: float = 0.0
    smoothing: float = 0.5
    cadence_flushes: int = 1
    cadence_seconds: float | None = None
    max_migrations_per_cycle: int | None = None

    def __post_init__(self):
        if not self.hot_factor >= 1.0:
            raise ValidationError(
                f"hot_factor must be >= 1.0, got {self.hot_factor}"
            )
        if not 0.0 <= self.cold_factor <= 1.0:
            raise ValidationError(
                f"cold_factor must be in [0, 1], got {self.cold_factor}"
            )
        if self.max_moves < 0:
            raise ValidationError(f"max_moves must be >= 0, got {self.max_moves}")
        if self.min_workers < 1:
            raise ValidationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers is not None and self.max_workers < self.min_workers:
            raise ValidationError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.grow_backlog is not None and self.grow_backlog < 1:
            raise ValidationError(
                f"grow_backlog must be >= 1 (or None), got {self.grow_backlog}"
            )
        if self.backlog_weight < 0.0:
            raise ValidationError(
                f"backlog_weight must be >= 0, got {self.backlog_weight}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise ValidationError(
                f"smoothing must be in (0, 1], got {self.smoothing}"
            )
        if self.cadence_flushes < 1:
            raise ValidationError(
                f"cadence_flushes must be >= 1, got {self.cadence_flushes}"
            )
        if self.cadence_seconds is not None and not self.cadence_seconds > 0:
            raise ValidationError(
                f"cadence_seconds must be > 0 (or None), got {self.cadence_seconds}"
            )
        if (
            self.max_migrations_per_cycle is not None
            and self.max_migrations_per_cycle < 0
        ):
            raise ValidationError(
                "max_migrations_per_cycle must be >= 0 (or None), got "
                f"{self.max_migrations_per_cycle}"
            )


class RebalancePolicy:
    """Greedy hottest-template-to-coldest-shard controller.

    Stateful across cycles: template heat is the cross-cycle EWMA of
    *this cycle's* fit work (fit-count delta times the template's fit
    wall-time EWMA, plus optional backlog weight), so a template that
    was hot last week but idle now cools off instead of pinning the
    topology.  ``plan`` is pure (no service access, no clock) — it maps
    load snapshots to a :class:`RebalancePlan`, which makes every policy
    decision unit-testable without processes.
    """

    def __init__(self, config: RebalanceConfig | None = None):
        self.config = config if config is not None else RebalanceConfig()
        self.cycles = 0
        self._last_fits: dict[str, int] = {}
        self._heat: dict[str, float] = {}

    def _observe(self, templates: list[TemplateLoad]) -> dict[str, float]:
        """Fold this cycle's load snapshot into the heat EWMAs."""
        config = self.config
        seen = set()
        for load in templates:
            seen.add(load.key)
            delta = max(0, load.fits - self._last_fits.get(load.key, 0))
            self._last_fits[load.key] = load.fits
            per_fit = load.fit_seconds_ewma
            if per_fit is None or per_fit <= 0.0:
                per_fit = _MIN_FIT_COST
            cycle_heat = delta * per_fit + config.backlog_weight * load.backlog
            previous = self._heat.get(load.key)
            if previous is None:
                self._heat[load.key] = cycle_heat
            else:
                self._heat[load.key] = (
                    config.smoothing * cycle_heat
                    + (1.0 - config.smoothing) * previous
                )
        for key in list(self._heat):
            if key not in seen:
                del self._heat[key]
                self._last_fits.pop(key, None)
        return dict(self._heat)

    def plan(
        self,
        shards: list[ShardLoad],
        templates: list[TemplateLoad],
    ) -> RebalancePlan:
        """Map one load snapshot to a plan (pure; mutates only heat state)."""
        config = self.config
        self.cycles += 1
        heat = self._observe(templates)
        workers = len(shards)
        if workers == 0:
            return RebalancePlan(reason="no shards")

        routed = {shard.index: sorted(shard.routed) for shard in shards}
        load = {
            shard.index: sum(heat.get(key, 0.0) for key in shard.routed)
            for shard in shards
        }
        backlog = {shard.index: shard.backlog for shard in shards}

        grow_to: int | None = None
        if (
            config.grow_backlog is not None
            and config.max_workers is not None
            and workers < config.max_workers
            and max(backlog.values()) > config.grow_backlog
        ):
            grow_to = workers + 1
            # The new shard joins the candidate set cold and empty, so
            # the greedy pass below can immediately move work onto it.
            routed[workers] = []
            load[workers] = 0.0
            workers = grow_to

        moves: list[Migration] = []
        reasons: list[str] = []
        for _ in range(config.max_moves):
            total = sum(load.values())
            mean = total / workers
            if total <= 0.0:
                break
            # Hottest eligible source: above the hot watermark and not
            # down to its last template (moving a lone template to an
            # idle shard just relocates the hotspot).
            sources = [
                index
                for index in load
                if load[index] > config.hot_factor * mean and len(routed[index]) >= 2
            ]
            if not sources:
                break
            src = max(sources, key=lambda index: (load[index], -index))
            # Coldest eligible destination under the cold watermark.
            sinks = [
                index
                for index in load
                if index != src and load[index] < config.cold_factor * mean
            ]
            if not sinks:
                break
            dst = min(sinks, key=lambda index: (load[index], index))
            candidates = [key for key in routed[src] if heat.get(key, 0.0) > 0.0]
            if not candidates:
                break
            key = max(candidates, key=lambda key: (heat[key], key))
            if load[dst] + heat[key] >= load[src]:
                break  # the move would not actually improve the imbalance
            moves.append(Migration(key=key, src=src, dst=dst))
            routed[src].remove(key)
            routed[dst].append(key)
            load[src] -= heat[key]
            load[dst] += heat[key]
            reasons.append(f"heat {heat[key]:.2e}s {key}: {src}->{dst}")

        shrink_to: int | None = None
        if grow_to is None and not moves and workers > config.min_workers:
            # Drop trailing shards that host nothing — the cautious
            # shrink: no migration traffic, just fewer idle processes.
            keep = workers
            while keep > config.min_workers and not routed[keep - 1]:
                keep -= 1
            if keep < workers:
                shrink_to = keep

        if grow_to is not None:
            reasons.insert(0, f"backlog {max(backlog.values())} > {config.grow_backlog}")
        if shrink_to is not None:
            reasons.append(f"trailing shards {shrink_to}..{workers - 1} idle")
        reason = "; ".join(reasons) if reasons else "balanced"
        return RebalancePlan(
            moves=tuple(moves), grow_to=grow_to, shrink_to=shrink_to, reason=reason
        )


__all__ = [
    "LOAD_EWMA_ALPHA",
    "Migration",
    "RebalanceConfig",
    "RebalanceOutcome",
    "RebalancePlan",
    "RebalancePolicy",
    "ShardLoad",
    "TemplateLoad",
]
